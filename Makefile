# Developer entry points.  `make ci` is what the CI job runs: simlint, the
# tier-1 test suite (once plain, once under the runtime determinism
# sanitizer, once on the batched scheduler backend), a scenario-spec
# schema check + dry-build, the observability self-check (spans/metrics/
# exporters cross-verified), plus a quick-mode perf smoke that fails on
# regressions beyond the tolerance against the committed BENCH_PERF.json
# baseline.
#
# `make lint` runs incrementally by default: simlint keeps a per-file
# content-hash cache at build/simlint-cache.json, so a warm run on an
# unchanged tree re-analyzes nothing.  The cache self-invalidates when
# any linter source, the rule-set version, or the trace/span/metric
# schemas change, and per entry when a file's content or policy profile
# changes — there is no rebaseline step, just delete the file (or set
# LINT_NO_CACHE=1 for one run) if you suspect it anyway.  Cross-module
# analysis (SL011-SL015) is recomputed on every run from the cached
# per-file indexes, so warm findings are always identical to cold ones.
# `make lint-stats` adds the suppression-debt report (waiver counts by
# rule and by file, stale directives, layering exemptions).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-stats test test-sanitize test-backend test-fleet test-control scenarios obs-check bench perf-check perf-write profile ci

# Whole-program determinism & architecture analysis (rules SL001-SL015)
# over src/ (strict profile) and tests/ + benchmarks/ (relaxed profile:
# bare asserts and wall clock allowed; layering and frozen-spec rules
# still enforced).  Incremental by default; LINT_NO_CACHE=1 escapes.
LINT_PATHS := src/ tests/ benchmarks/
LINT_FLAGS := $(if $(LINT_NO_CACHE),,--changed)
lint:
	$(PYTHON) -m repro.devtools.simlint $(LINT_FLAGS) $(LINT_PATHS)

# Same run plus the suppression-debt report on stdout.
lint-stats:
	$(PYTHON) -m repro.devtools.simlint $(LINT_FLAGS) --stats $(LINT_PATHS)

test:
	$(PYTHON) -m pytest -x -q

# The same tier-1 suite with the runtime determinism sanitizer observing
# every Simulator; results must be identical (the sanitizer never perturbs).
test-sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

# The same tier-1 suite on the optimized batched scheduler backend;
# results must be identical (backend choice never changes simulation).
test-backend:
	REPRO_KERNEL_BACKEND=batched $(PYTHON) -m pytest -x -q

# The fleet tier lane: sharded-vs-serial determinism, fluid-vs-exact
# cross-validation within the documented tolerances, epoch protocol.
test-fleet:
	$(PYTHON) -m pytest -x -q tests/fleet tests/workloads/test_fluid.py

# The control-plane lane: detector hysteresis/grid semantics, planner
# edge cases (partial plans, never exceptions), executor audit, and the
# closed loop's cross-backend determinism pin, plus the aging policies
# that delegate to the same detector core.
test-control:
	$(PYTHON) -m pytest -x -q tests/control tests/aging

# Schema-check every committed spec file, then dry-build each of them
# plus every registered scenario, so spec/schema drift fails CI fast.
# Fleet specs validate through their own CLI (dry-build at 1000 hosts
# is a real run, so validation stops at the schema + geometry checks).
scenarios:
	$(PYTHON) -m repro.scenario validate $(filter-out examples/fleet_%,$(wildcard examples/*.toml))
	$(PYTHON) -m repro.scenario build $(filter-out examples/fleet_%,$(wildcard examples/*.toml)) $$($(PYTHON) -m repro.scenario list | awk '{print $$1}')
	$(PYTHON) -m repro.fleet validate examples/fleet_*.toml

# End-to-end observability self-check, two layers.  Single-run: drive an
# instrumented rejuvenation run, then cross-verify the span tree against
# the measured downtime report, the Perfetto export against strict JSON,
# and the Prometheus text format against its parser.  Fleet-mode: run a
# two-shard fleet twice (serial vs sharded), assert the merged telemetry
# bundles are bit-identical, evaluate the attached SLO, and reconstruct
# every control-plane decision's causal chain (trigger -> cycle ->
# action -> mechanism -> outage) from the merged bundle alone.  Leaves
# all artifacts under build/obs/ (CI uploads them; open the traces at
# ui.perfetto.dev).
obs-check:
	$(PYTHON) -m repro.analysis --trace-out build/obs/trace.json --prom-out build/obs/metrics.prom
	$(PYTHON) -m repro.obs check --out build/obs

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Kernel micro-benchmarks + fleet matrix + sub-second experiments,
# guarded against the committed baseline.  Seconds, not a full sweep.
# Kernel throughputs are recorded per scheduler backend and fleet wall
# clocks per hosts x mode cell (BENCH_PERF.json schema 5); most gates
# compare against the committed
# baseline and are therefore hardware-relative: on a machine slower
# than the baseline's, widen the gate for one run with
# `REPRO_PERF_TOLERANCE=1.6 make perf-check` (or --tolerance); if the
# drift is real and permanent, rebaseline instead — run `make perf-write`
# on quiet hardware and commit the rewritten BENCH_PERF.json.  The
# batched-vs-reference events/sec speedup gate and the disabled-telemetry
# overhead gate are the exceptions: both compare cells measured seconds
# apart in the same run on the same machine, so no tolerance applies and
# rebaselining cannot paper over a batched-backend slowdown or a
# telemetry tax creeping into the metrics-off path.
perf-check:
	$(PYTHON) benchmarks/perf_report.py --check --mode quick

# Full re-measurement (serial + parallel + cached sweep); rewrites the
# committed baseline.  Run on quiet hardware and commit the result.
perf-write:
	$(PYTHON) benchmarks/perf_report.py --write --jobs 4

# cProfile over the heaviest experiment (FIG9), cumulative-time sorted.
# Hot-path work should start from this, not from guesses.
profile:
	$(PYTHON) -c "import cProfile, pstats; \
	from repro.experiments import run_experiment; \
	pr = cProfile.Profile(); pr.enable(); run_experiment('FIG9'); \
	pr.disable(); pstats.Stats(pr).sort_stats('cumulative').print_stats(40)"

ci: lint test test-sanitize test-backend test-fleet test-control scenarios obs-check perf-check
