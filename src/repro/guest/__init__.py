"""Guest operating-system substrate.

Kernel boot/shutdown/suspend/resume, the page cache, a filesystem view,
the paper's three services (sshd, Apache, JBoss) and client TCP sessions.
"""

from repro.guest.filesystem import Filesystem
from repro.guest.kernel import GuestKernel, GuestState
from repro.guest.page_cache import PageCache
from repro.guest.services import (
    ApacheServer,
    JBossServer,
    Service,
    ServiceState,
    SshServer,
    make_service,
)
from repro.guest.tcp import SessionState, TcpSession

__all__ = [
    "ApacheServer",
    "Filesystem",
    "GuestKernel",
    "GuestState",
    "JBossServer",
    "PageCache",
    "Service",
    "ServiceState",
    "SessionState",
    "SshServer",
    "TcpSession",
    "make_service",
]
