"""The guest operating-system image.

A :class:`GuestKernel` is everything that lives *inside a VM's memory*:
kernel state, the page cache, running services, and the content sentinels
used to verify image integrity.  Its identity tracks the memory image:

* **warm-VM reboot / saved-VM reboot** keep the same ``GuestKernel``
  object (the image survives, on RAM or on disk) and merely ``rebind`` it
  to the successor hypervisor's new domain record;
* a **cold boot** constructs a fresh ``GuestKernel`` — empty page cache,
  services stopped — because the old image is simply gone.

Boot and shutdown charge the calibrated disk/CPU costs through the shared
hardware models, so running many guests in parallel contends naturally
(Figure 5's slopes are emergent, not scripted).
"""

from __future__ import annotations

import enum
import itertools
import typing

from repro.config import TimingProfile
from repro.errors import GuestError
from repro.guest.filesystem import Filesystem
from repro.guest.page_cache import PageCache
from repro.guest.services import Service
from repro.units import MiB

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.machine import PhysicalMachine
    from repro.simkernel import Simulator
    from repro.vmm.domain import Domain
    from repro.vmm.hypervisor import Hypervisor

_KERNEL_RESERVED_BYTES = 128 * MiB
"""Guest memory not usable as page cache (kernel text/data, slabs)."""

_SENTINEL_PFNS = (0, 1, 2)
"""PFNs fingerprinted to verify image preservation across reboots."""

_boot_epochs = itertools.count(1)


class GuestState(enum.Enum):
    OFF = "off"
    BOOTING = "booting"
    RUNNING = "running"
    SHUTTING_DOWN = "shutting-down"
    SUSPENDED = "suspended"
    DEAD = "dead"


class GuestKernel:
    """One guest OS image (a Xen-modified Linux, in the paper)."""

    def __init__(
        self,
        name: str,
        memory_bytes: int,
        profile: TimingProfile,
        filesystem: Filesystem | None = None,
        services: typing.Iterable[Service] = (),
    ) -> None:
        if memory_bytes <= _KERNEL_RESERVED_BYTES:
            raise GuestError(
                f"guest {name!r} needs more than "
                f"{_KERNEL_RESERVED_BYTES} bytes of memory"
            )
        self.name = name
        self.memory_bytes = memory_bytes
        self.profile = profile
        self.filesystem = filesystem if filesystem is not None else Filesystem()
        self.page_cache = PageCache(memory_bytes - _KERNEL_RESERVED_BYTES)
        self.services: list[Service] = list(services)
        self.state = GuestState.OFF
        self.vmm: "Hypervisor | None" = None
        self.domain: "Domain | None" = None
        self.boot_epoch = 0
        self._sentinel_token: typing.Any = None
        self._grant_refs: list[int] = []

    # -- bindings ---------------------------------------------------------------

    def rebind(self, vmm: "Hypervisor", domain: "Domain") -> None:
        """Attach this image to a (possibly new) hypervisor's domain."""
        self.vmm = vmm
        self.domain = domain
        domain.guest = self

    def _require_bound(self) -> tuple["Hypervisor", "Domain"]:
        if self.vmm is None or self.domain is None:
            raise GuestError(f"guest {self.name!r} is not bound to a domain")
        return self.vmm, self.domain

    @property
    def machine(self) -> "PhysicalMachine":
        vmm = self.vmm
        if vmm is None or self.domain is None:
            raise GuestError(f"guest {self.name!r} is not bound to a domain")
        return vmm.machine

    @property
    def sim(self) -> "Simulator":
        return self.machine.sim

    @property
    def is_network_reachable(self) -> bool:
        """Guest answers network traffic right now."""
        if self.state is not GuestState.RUNNING:
            return False
        vmm = self.vmm
        return vmm is not None and vmm.machine.nic._up

    def duration(self, stream: str, base: float) -> float:
        """A modelled duration with this guest's jitter stream applied."""
        return self.machine.duration(f"{self.name}.{stream}", base)

    def cpu_execute(self, core_seconds: float):
        """Run guest CPU work under the VMM's credit scheduler, so this
        domain's configured weight/cap governs its progress."""
        vmm = self.vmm
        domain = self.domain
        if vmm is None or domain is None:
            raise GuestError(f"guest {self.name!r} is not bound to a domain")
        return vmm.scheduler.execute(domain.name, core_seconds)

    # -- grant tables (split-driver I/O rings) ---------------------------------------

    def establish_grants(self) -> None:
        """Grant one I/O-ring page per device to dom0's backends and let
        them map it — the split-driver plumbing that must exist while
        devices are attached and must be gone before suspend."""
        vmm, domain = self._require_bound()
        from repro.vmm.hypervisor import DOM0_NAME

        if self.name == DOM0_NAME:  # pragma: no cover - dom0 has no frontends
            return
        for index, device in enumerate(domain.devices.all()):
            entry = vmm.grant_table.grant(
                self.name, DOM0_NAME, pfn=16 + index, writable=True
            )
            vmm.grant_table.map_grant(entry.reference, DOM0_NAME)
            self._grant_refs.append(entry.reference)

    def revoke_grants(self) -> None:
        """Tear the ring grants down (device detach / orderly stop)."""
        vmm, _ = self._require_bound()
        for reference in self._grant_refs:
            vmm.grant_table.unmap_grant(reference)
            vmm.grant_table.revoke(reference)
        self._grant_refs.clear()

    # -- memory-image sentinels ----------------------------------------------------

    def write_sentinels(self) -> None:
        """Fingerprint a few pages of the image (boot and suspend paths)."""
        _, domain = self._require_bound()
        self._sentinel_token = (self.name, self.boot_epoch, self.sim.now)
        for pfn in _SENTINEL_PFNS:
            mfn = domain.p2m.mfn_of(pfn)
            self.machine.memory.write_token(mfn, self._sentinel_token)

    def verify_memory_image(self) -> None:
        """Raise :class:`GuestError` if the image was scrubbed or lost —
        the corruption quick reload exists to prevent (§3.1)."""
        _, domain = self._require_bound()
        if self._sentinel_token is None:
            raise GuestError(f"guest {self.name!r} has no sentinels to verify")
        for pfn in _SENTINEL_PFNS:
            mfn = domain.p2m.mfn_of(pfn)
            token = self.machine.memory.read_token(mfn)
            if token != self._sentinel_token:
                raise GuestError(
                    f"guest {self.name!r}: memory image corrupted at PFN "
                    f"{pfn} (expected {self._sentinel_token!r}, found {token!r})"
                )

    # -- boot / shutdown -------------------------------------------------------------

    def boot(self) -> typing.Generator:
        """Cold boot: kernel load from disk + init, then start services."""
        if self.state is not GuestState.OFF:
            raise GuestError(
                f"guest {self.name!r} cannot boot from {self.state.value}"
            )
        machine = self.machine
        guest_spec = self.profile.guest
        sim = self.sim
        self.state = GuestState.BOOTING
        self.boot_epoch = next(_boot_epochs)
        # guests boot concurrently: own actor track, causal parent is the
        # host's enclosing reboot/maintenance span when one is open
        with sim.spans.span(
            "guest.boot",
            actor=self.name,
            parent=sim.spans.current(machine.name),
        ):
            sim.trace.record("guest.boot.start", domain=self.name)
            yield sim.timeout(self.duration("boot.fixed", guest_spec.boot_fixed_s))
            disk_phase = machine.disk.read(
                f"boot:{self.name}", guest_spec.boot_read_bytes
            )
            cpu_phase = self.cpu_execute(
                self.duration("boot.cpu", guest_spec.boot_cpu_s)
            )
            yield sim.all_of([disk_phase, cpu_phase])
            self.write_sentinels()
            self.establish_grants()
            for service in self.services:
                yield from service.start(self)
            self.state = GuestState.RUNNING
            sim.trace.record("guest.boot.done", domain=self.name)
        return self

    def shutdown(self) -> typing.Generator:
        """Orderly shutdown: stop services, sync dirty data, halt."""
        if self.state is not GuestState.RUNNING:
            raise GuestError(
                f"guest {self.name!r} cannot shut down from {self.state.value}"
            )
        machine = self.machine
        guest_spec = self.profile.guest
        sim = self.sim
        self.state = GuestState.SHUTTING_DOWN
        with sim.spans.span(
            "guest.shutdown",
            actor=self.name,
            parent=sim.spans.current(machine.name),
        ):
            sim.trace.record("guest.shutdown.start", domain=self.name)
            yield sim.timeout(
                self.duration("shutdown.stop", guest_spec.shutdown_service_stop_s)
            )
            for service in self.services:
                service.mark_stopped(reason="shutdown")
            self.revoke_grants()
            # Unmount path: sync dirty data, then the remaining fixed
            # teardown.  Sequential on purpose — concurrent shutdowns then
            # contend on the disk, giving the paper's ~0.4 s/VM slope.
            yield machine.disk.write(
                f"sync:{self.name}", guest_spec.shutdown_sync_bytes
            )
            remainder = max(
                0.0,
                guest_spec.shutdown_fixed_s - guest_spec.shutdown_service_stop_s,
            )
            yield sim.timeout(self.duration("shutdown.fixed", remainder))
            self.state = GuestState.OFF
            sim.trace.record("guest.shutdown.done", domain=self.name)

    # -- suspend / resume handlers (§4.2) ----------------------------------------------

    def run_suspend_handler(self) -> typing.Generator:
        """The kernel's suspend handler: detach devices, quiesce, freeze.

        Runs just before the suspend hypercall (on-memory path) or the
        toolstack save (disk path).  Services become unreachable here —
        this is where the paper's downtime clock starts for warm reboots.
        """
        if self.state is not GuestState.RUNNING:
            raise GuestError(
                f"guest {self.name!r} cannot suspend from {self.state.value}"
            )
        _, domain = self._require_bound()
        yield self.sim.timeout(
            self.duration("suspend.handler", self.profile.guest.suspend_handler_s)
        )
        self.revoke_grants()
        domain.devices.detach_all()
        for service in self.services:
            if service.is_up:
                self.sim.trace.record(
                    "service.down",
                    service=service.name,
                    service_kind=service.kind,
                    domain=self.name,
                    reason="suspend",
                )
        self.write_sentinels()
        self.state = GuestState.SUSPENDED

    def run_resume_handler(self) -> typing.Generator:
        """The kernel's resume handler: re-establish channels, re-attach
        devices, and verify the memory image actually survived."""
        if self.state is not GuestState.SUSPENDED:
            raise GuestError(
                f"guest {self.name!r} cannot resume from {self.state.value}"
            )
        _, domain = self._require_bound()
        yield self.sim.timeout(
            self.duration("resume.handler", self.profile.guest.resume_handler_s)
        )
        domain.devices.attach_all()
        self.establish_grants()
        self.verify_memory_image()
        self.state = GuestState.RUNNING
        for service in self.services:
            if service.is_up:
                self.sim.trace.record(
                    "service.up",
                    service=service.name,
                    service_kind=service.kind,
                    domain=self.name,
                    reason="resume",
                )

    def mark_dead(self) -> None:
        """The image is gone (cold reboot tore the domain down)."""
        for service in self.services:
            service.mark_stopped(reason="killed")
        self.state = GuestState.DEAD

    # -- file I/O through the page cache ------------------------------------------------

    def read_file(
        self, path: str, nbytes: int | None = None
    ) -> typing.Generator:
        """Read (part of) a file; hits go over the memory bus, misses to
        disk and into the cache.  Returns bytes read."""
        if self.state is not GuestState.RUNNING:
            raise GuestError(f"guest {self.name!r} is not running")
        size = self.filesystem.size_of(path)
        nbytes = size if nbytes is None else min(nbytes, size)
        cached, uncached = self.page_cache.split_read(path, nbytes)
        machine = self.machine
        metrics = self.sim.metrics
        if cached:
            yield machine.membus.execute(float(cached))
            self.page_cache.touch(path)
            metrics.counter(
                "guest.page_cache_hit_bytes", domain=self.name
            ).inc(cached)
        if uncached:
            yield machine.disk.read(f"{self.name}:{path}", uncached)
            self.page_cache.insert(path, uncached)
            metrics.counter(
                "guest.page_cache_miss_bytes", domain=self.name
            ).inc(uncached)
        return nbytes

    def warm_file_cache(self, paths: typing.Iterable[str]) -> typing.Generator:
        """Read files once so they are resident (experiment setup)."""
        for path in paths:
            yield from self.read_file(path)

    def service(self, name: str) -> Service:
        """Look a service up by name; raises :class:`GuestError`."""
        for candidate in self.services:
            if candidate.name == name:
                return candidate
        raise GuestError(f"guest {self.name!r} has no service {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GuestKernel {self.name} {self.state.value}>"
