"""Client TCP sessions with retransmission and timeouts.

§5.3: after a warm or saved reboot "we could continue the session of ssh
thanks to TCP retransmission … however, if a timeout was set to 60
seconds in the ssh client, the session was timed out during the saved-VM
reboot", and a cold reboot always resets the session because the server
process died.

:class:`TcpSession` reproduces that logic as a live monitor: a client-side
keepalive probes the service; unreachability shorter than the client
timeout is ridden out by retransmission, longer kills the session, and a
restart of the server process (new service incarnation / killed process)
resets it immediately on the next probe.
"""

from __future__ import annotations

import enum
import typing

from repro.errors import GuestError
from repro.guest.services import Service
from repro.simkernel import Simulator


class SessionState(enum.Enum):
    CONNECTED = "connected"
    TIMED_OUT = "timed-out"
    RESET = "reset"


class TcpSession:
    """One long-lived client connection to a guest service."""

    def __init__(
        self,
        sim: Simulator,
        service: Service,
        client_timeout_s: float = 60.0,
        probe_interval_s: float = 0.5,
        name: str = "session",
    ) -> None:
        if client_timeout_s <= 0:
            raise GuestError("client timeout must be positive")
        if probe_interval_s <= 0:
            raise GuestError("probe interval must be positive")
        if not service.reachable:
            raise GuestError(
                f"cannot open a session to unreachable {service.name!r}"
            )
        self.sim = sim
        self.service = service
        self.client_timeout_s = client_timeout_s
        self.probe_interval_s = probe_interval_s
        self.name = name
        self.state = SessionState.CONNECTED
        self._epoch = service.start_count
        self._unreachable_since: float | None = None
        self.outage_total_s = 0.0
        self._monitor = sim.spawn(self._run(), name=f"tcp:{name}")

    @property
    def alive(self) -> bool:
        return self.state is SessionState.CONNECTED

    def close(self) -> None:
        """Client-side orderly close; stops the monitor."""
        if self._monitor.is_alive:
            self._monitor.kill()

    def _run(self) -> typing.Generator:
        while self.state is SessionState.CONNECTED:
            yield self.sim.timeout(self.probe_interval_s)
            if self.service.start_count != self._epoch:
                # Server process restarted: our connection state is gone.
                self._fail(SessionState.RESET)
                return
            if self.service.reachable:
                if self._unreachable_since is not None:
                    self.outage_total_s += self.sim.now - self._unreachable_since
                    self._unreachable_since = None
                continue
            if (
                self.service.guest is not None
                and self.service.guest.state.value == "dead"
            ):
                self._fail(SessionState.RESET)
                return
            if not self.service.is_up:
                # Process stopped (shutdown): RST on next packet.
                self._fail(SessionState.RESET)
                return
            # Every probe into an outage window is a client retransmission
            # riding out the reboot (§5.3).
            self.sim.metrics.counter(
                "guest.tcp_retransmits", session=self.name
            ).inc()
            if self._unreachable_since is None:
                self._unreachable_since = self.sim.now
            elif self.sim.now - self._unreachable_since >= self.client_timeout_s:
                self._fail(SessionState.TIMED_OUT)
                return

    def _fail(self, state: SessionState) -> None:
        if self._unreachable_since is not None:
            self.outage_total_s += self.sim.now - self._unreachable_since
            self._unreachable_since = None
        self.state = state
        self.sim.trace.record(
            "tcp.session.closed",
            session=self.name,
            outcome=state.value,
            service=self.service.name,
        )
