"""The guest's view of its virtual disk: a flat file catalogue.

Each VM gets one physical disk partition in the paper's setup; we model
the filesystem as named files with sizes.  Actual I/O timing goes through
the machine's disk model (for misses) or memory bus (for cache hits) —
the filesystem only answers "does this file exist and how big is it".
"""

from __future__ import annotations

from repro.errors import FilesystemError


class Filesystem:
    """Name → size catalogue for one guest's virtual disk."""

    def __init__(self) -> None:
        self._files: dict[str, int] = {}

    def create(self, path: str, nbytes: int) -> None:
        """Add (or resize) a file at ``path``."""
        if nbytes < 0:
            raise FilesystemError(f"negative file size for {path!r}")
        if not path or not path.startswith("/"):
            raise FilesystemError(f"bad path {path!r}")
        self._files[path] = nbytes

    def create_many(self, prefix: str, count: int, nbytes: int) -> list[str]:
        """Create ``count`` equal-size files (the 10 000×512 KB web corpus)."""
        paths = [f"{prefix}/{i:06d}" for i in range(count)]
        for path in paths:
            self.create(path, nbytes)
        return paths

    def size_of(self, path: str) -> int:
        """The file's size; raises :class:`FilesystemError` if absent."""
        try:
            return self._files[path]
        except KeyError:
            raise FilesystemError(f"no such file {path!r}") from None

    def exists(self, path: str) -> bool:
        """True if ``path`` names a file."""
        return path in self._files

    def remove(self, path: str) -> None:
        """Delete a file; raises if absent."""
        if path not in self._files:
            raise FilesystemError(f"no such file {path!r}")
        del self._files[path]

    def paths(self) -> list[str]:
        """All file paths, sorted."""
        return sorted(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(self._files.values())

    def __len__(self) -> int:
        return len(self._files)
