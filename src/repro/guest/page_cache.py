"""The guest file cache (page cache) — the performance state a cold
reboot destroys.

§2: "The primary cause [of post-reboot degradation] is to lose the file
cache."  The model is byte-granular per file with LRU eviction: enough to
reproduce first-access-vs-second-access behaviour (Figure 8) without
tracking three million page frames.

The cache object lives inside the guest kernel image, so its fate follows
the memory image's fate automatically: preserved by on-memory
suspend/resume, round-tripped by disk save/restore, and gone when a cold
boot constructs a fresh kernel.
"""

from __future__ import annotations

import collections

from repro.errors import GuestError


class PageCache:
    """Byte-accounted LRU cache over file contents."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise GuestError(f"cache capacity must be > 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._cached: collections.OrderedDict[str, int] = collections.OrderedDict()
        self.hits_bytes = 0
        self.misses_bytes = 0

    @property
    def used_bytes(self) -> int:
        return sum(self._cached.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def cached_bytes(self, path: str) -> int:
        """How many bytes of ``path`` are currently cached."""
        return self._cached.get(path, 0)

    def split_read(self, path: str, nbytes: int) -> tuple[int, int]:
        """Partition a read into (cached, uncached) bytes and count stats."""
        if nbytes < 0:
            raise GuestError(f"negative read size {nbytes}")
        cached = min(self.cached_bytes(path), nbytes)
        uncached = nbytes - cached
        self.hits_bytes += cached
        self.misses_bytes += uncached
        return cached, uncached

    def insert(self, path: str, nbytes: int) -> int:
        """Cache ``nbytes`` of ``path`` (cumulative), evicting LRU files as
        needed.  Returns the bytes actually resident afterwards."""
        if nbytes < 0:
            raise GuestError(f"negative insert size {nbytes}")
        target = min(
            self.cached_bytes(path) + nbytes, self.capacity_bytes
        )
        if target == 0:
            return 0
        self._cached[path] = target
        self._cached.move_to_end(path)
        self._evict_to_fit(keep=path)
        return self._cached.get(path, 0)

    def touch(self, path: str) -> None:
        """Mark a file recently used (cache hit path)."""
        if path in self._cached:
            self._cached.move_to_end(path)

    def invalidate(self, path: str) -> None:
        """Drop one file's cached bytes (no-op if not resident)."""
        self._cached.pop(path, None)

    def clear(self) -> None:
        """What losing the memory image does to the cache."""
        self._cached.clear()

    def _evict_to_fit(self, keep: str) -> None:
        while self.used_bytes > self.capacity_bytes:
            victim = next(iter(self._cached))
            if victim == keep:
                # The kept file alone exceeds capacity: trim it.
                self._cached[keep] = self.capacity_bytes
                break
            del self._cached[victim]

    def resident_files(self) -> list[str]:
        """Paths with any cached bytes, LRU-first."""
        return list(self._cached)
