"""Guest services: sshd, Apache, JBoss — the paper's workloads.

A service is reachable only while it is UP, its guest is RUNNING, and the
host NIC is up; downtime experiments measure exactly the gaps in that
predicate (via ``service.down``/``service.up`` trace records emitted here
and by the guest kernel on suspend/resume).

Start costs are two-phase (disk reads, then CPU), which is what makes
JBoss so much more expensive to restart than sshd — the Figure 6(b)
versus 6(a) difference — and what makes parallel restarts contend.
"""

from __future__ import annotations

import enum
import typing

from repro.config import ServiceCosts
from repro.errors import ServiceError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.guest.kernel import GuestKernel


class ServiceState(enum.Enum):
    STOPPED = "stopped"
    STARTING = "starting"
    UP = "up"
    STOPPING = "stopping"


class Service:
    """Base class: a long-running server process inside a guest."""

    kind = "generic"

    def __init__(self, name: str, read_bytes: int, cpu_s: float) -> None:
        self.name = name
        self.read_bytes = read_bytes
        self.cpu_s = cpu_s
        self.state = ServiceState.STOPPED
        self.guest: "GuestKernel | None" = None
        self.start_count = 0
        self.requests_served = 0
        self.restored_from_checkpoint = False

    # -- reachability -----------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.state is ServiceState.UP

    @property
    def reachable(self) -> bool:
        """Can a remote client get a response right now?"""
        guest = self.guest
        if guest is None or self.state is not ServiceState.UP:
            return False
        return guest.is_network_reachable

    # -- lifecycle ----------------------------------------------------------------

    def start(self, guest: "GuestKernel") -> typing.Generator:
        """Start inside ``guest``; charges disk then CPU phases."""
        if self.state is not ServiceState.STOPPED:
            raise ServiceError(f"{self.name} cannot start from {self.state.value}")
        self.guest = guest
        self.state = ServiceState.STARTING
        machine = guest.machine
        if self.read_bytes:
            yield machine.disk.read(f"{guest.name}:svc:{self.name}", self.read_bytes)
        if self.cpu_s:
            yield guest.cpu_execute(guest.duration(f"svc.{self.kind}", self.cpu_s))
        # A cold start is a brand-new process: in-memory application
        # state does not survive (that's what checkpoints are for).
        self.requests_served = 0
        self.restored_from_checkpoint = False
        self.state = ServiceState.UP
        self.start_count += 1
        guest.sim.trace.record(
            "service.up",
            service=self.name,
            service_kind=self.kind,
            domain=guest.name,
            reason="start",
        )
        return self

    def mark_stopped(self, reason: str) -> None:
        """Process killed (guest shutdown): immediate, connection-resetting."""
        if self.state in (ServiceState.UP, ServiceState.STARTING):
            self.state = ServiceState.STOPPED
            if self.guest is not None:
                self.guest.sim.trace.record(
                    "service.down",
                    service=self.name,
                    service_kind=self.kind,
                    domain=self.guest.name,
                    reason=reason,
                )

    # -- process checkpointing (§7, Randell-style) -----------------------------------

    def checkpoint(self) -> dict[str, typing.Any]:
        """Snapshot the process's application state (taken while UP)."""
        if not self.is_up:
            raise ServiceError(f"cannot checkpoint stopped {self.name}")
        return {
            "name": self.name,
            "kind": self.kind,
            "requests_served": self.requests_served,
        }

    def start_from_checkpoint(
        self, guest: "GuestKernel", state: dict[str, typing.Any]
    ) -> typing.Generator:
        """Rebuild the process from a checkpoint: reads the (much smaller)
        checkpoint image instead of cold-starting, and resumes application
        state.  Connections are still lost (the network stack's state is
        not checkpointed), so ``start_count`` advances."""
        if self.state is not ServiceState.STOPPED:
            raise ServiceError(
                f"{self.name} cannot restore from {self.state.value}"
            )
        if state.get("kind") != self.kind:
            raise ServiceError(
                f"checkpoint of kind {state.get('kind')!r} does not fit "
                f"{self.kind!r}"
            )
        self.guest = guest
        self.state = ServiceState.STARTING
        costs = guest.profile.services
        machine = guest.machine
        if costs.checkpoint_bytes:
            yield machine.disk.read(
                f"{guest.name}:ckpt:{self.name}", costs.checkpoint_bytes
            )
        if costs.checkpoint_restore_cpu_s:
            yield guest.cpu_execute(costs.checkpoint_restore_cpu_s)
        self.requests_served = int(state.get("requests_served", 0))
        self.restored_from_checkpoint = True
        self.state = ServiceState.UP
        self.start_count += 1
        guest.sim.trace.record(
            "service.up",
            service=self.name,
            service_kind=self.kind,
            domain=guest.name,
            reason="checkpoint-restore",
        )
        return self

    # -- requests -----------------------------------------------------------------

    def handle_request(self, **kwargs: typing.Any) -> typing.Generator:
        """Serve one client request (subclasses define the work)."""
        raise ServiceError(f"{self.kind} serves no requests")
        yield  # pragma: no cover


class SshServer(Service):
    """A lightweight always-on service (Figure 6(a))."""

    kind = "ssh"

    def __init__(self, costs: ServiceCosts, name: str = "sshd") -> None:
        super().__init__(name, costs.ssh_read_bytes, costs.ssh_cpu_s)

    def handle_request(self, payload_bytes: int = 256) -> typing.Generator:
        """An interactive keystroke echo: tiny CPU + NIC."""
        # Reachability inlined: this predicate runs once per request, and
        # the property chain is measurable in the serving experiments.
        guest = self.guest
        if (
            guest is None
            or self.state is not ServiceState.UP
            or not guest.is_network_reachable
        ):
            raise ServiceError(f"{self.name} unreachable")
        yield guest.cpu_execute(1e-5)
        yield guest.machine.nic.transmit(payload_bytes)
        self.requests_served += 1
        return payload_bytes


class ApacheServer(Service):
    """The web server of Figures 7 and 8(b): serves files through the
    guest page cache and the host NIC."""

    kind = "apache"

    def __init__(
        self, costs: ServiceCosts, name: str = "apache"
    ) -> None:
        super().__init__(name, costs.apache_read_bytes, costs.apache_cpu_s)
        self._request_cpu_s = costs.request_cpu_s

    def handle_request(self, path: str = "") -> typing.Generator:
        """GET ``path``: read (cache or disk), then transmit the body."""
        # Reachability inlined — the hottest request path in FIG7/8/9.
        guest = self.guest
        if (
            guest is None
            or self.state is not ServiceState.UP
            or not guest.is_network_reachable
        ):
            raise ServiceError(f"{self.name} unreachable")
        if self._request_cpu_s:
            yield guest.cpu_execute(self._request_cpu_s)
        nbytes = yield from guest.read_file(path)
        yield guest.machine.nic.transmit(nbytes)
        self.requests_served += 1
        return nbytes


class JBossServer(Service):
    """A heavyweight application server: slow to start (§5.3), which is
    what stretches the cold-VM reboot's downtime to 241 s at 11 VMs."""

    kind = "jboss"

    def __init__(self, costs: ServiceCosts, name: str = "jboss") -> None:
        super().__init__(name, costs.jboss_read_bytes, costs.jboss_cpu_s)

    def handle_request(self, work_cpu_s: float = 0.002) -> typing.Generator:
        """One application request: CPU-bound business logic + small reply."""
        guest = self.guest
        if (
            guest is None
            or self.state is not ServiceState.UP
            or not guest.is_network_reachable
        ):
            raise ServiceError(f"{self.name} unreachable")
        yield guest.cpu_execute(work_cpu_s)
        yield guest.machine.nic.transmit(2048)
        self.requests_served += 1
        return 2048


SERVICE_FACTORIES: dict[str, typing.Callable[[ServiceCosts], Service]] = {
    "ssh": SshServer,
    "apache": ApacheServer,
    "jboss": JBossServer,
}


def make_service(kind: str, costs: ServiceCosts) -> Service:
    """Instantiate a service by kind name (``ssh``/``apache``/``jboss``)."""
    try:
        factory = SERVICE_FACTORIES[kind]
    except KeyError:
        raise ServiceError(f"unknown service kind {kind!r}") from None
    return factory(costs)
