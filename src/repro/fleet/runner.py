"""Fan fleet shards across worker processes and merge their payloads.

:func:`run_fleet` turns a :class:`~repro.fleet.spec.FleetSpec` into one
parallel-sweep cell per shard (reusing the foundation-layer pooled,
content-addressed cell machinery via
:func:`repro.jobs.run_cells`), executes them, and folds
the shard payloads into a :class:`FleetReport`.  ``jobs=1`` (or
``serial=True``) runs the same cells in-process — the determinism tests
assert serial, sharded-parallel and cache-replayed reports are
bit-identical for fluid workloads.
"""

from __future__ import annotations

import dataclasses
import time
import typing

from repro.jobs import Cell, SweepStats, run_cells
from repro.fleet.spec import FleetSpec
from repro.obs.bundle import TelemetryBundle
from repro.obs.slo import (
    evaluate_slo,
    merge_latency_histogram,
    outage_intervals,
)

_FLEET = "FLEET"
"""Cell experiment-id namespace for fleet shards."""


@dataclasses.dataclass
class FleetReport:
    """Plain-data outcome of one fleet run (picklable, JSON-friendly)."""

    name: str
    hosts: int
    vms: int
    shards: int
    sessions: int
    requests: float
    failures: float
    downtime_s: float
    availability: float
    overruns: list[str]
    bringup_s: float
    rows: list[dict]
    wall_s: float = 0.0
    policy: dict = dataclasses.field(default_factory=dict)
    """Aggregated control-loop summary across shards (counts summed,
    audits concatenated in shard order); empty without a policy."""
    telemetry: dict = dataclasses.field(default_factory=dict)
    """The merged :class:`~repro.obs.bundle.TelemetryBundle` as plain
    data; empty unless the spec enabled telemetry collection."""
    slo: dict = dataclasses.field(default_factory=dict)
    """SLO report (see :func:`repro.obs.slo.evaluate_slo`) evaluated from
    the merged telemetry; empty without an ``[slo]`` table."""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        """A human-readable summary block."""
        lines = [
            f"fleet {self.name}: {self.hosts} host(s), {self.vms} VM(s), "
            f"{self.sessions} session(s) across {self.shards} shard(s)",
            f"  requests {self.requests:.0f}, failures {self.failures:.0f}, "
            f"downtime {self.downtime_s:.1f}s, "
            f"availability {self.availability:.4f}",
        ]
        if self.overruns:
            lines.append(
                f"  epoch overruns: {', '.join(self.overruns)}"
            )
        if self.policy:
            lines.append(
                "  policy {strategy}: {cycles} cycle(s), "
                "{migrations} migration(s), {rejuvenations} "
                "rejuvenation(s), {deferred} deferred".format(**self.policy)
            )
        if self.slo:
            objectives = ", ".join(
                "{kind} {verdict}".format(
                    kind=o["kind"], verdict="ok" if o["passed"] else "VIOLATED"
                )
                for o in self.slo["objectives"]
            )
            lines.append(
                f"  slo {'PASS' if self.slo['passed'] else 'FAIL'}: "
                f"{objectives}"
            )
        if self.wall_s:
            lines.append(f"  wall clock: {self.wall_s:.2f}s")
        return "\n".join(lines)


def fleet_cells(spec: FleetSpec) -> list[Cell]:
    """One content-addressed cell per shard plan."""
    return [
        Cell(
            _FLEET,
            (spec.name, plan["shard"]),
            "repro.fleet.shard:run_fleet_shard",
            {"shard": plan},
        )
        for plan in spec.shard_plans()
    ]


def merge_shards(spec: FleetSpec, payloads: typing.Sequence[dict]) -> FleetReport:
    """Fold ordered shard payloads into one fleet report.

    Shards partition the host list contiguously, so concatenating rows
    in shard order preserves global host order; per-fleet aggregates are
    plain sums (availability: row mean), summed in that same fixed order
    so the merged report is deterministic.
    """
    rows: list[dict] = []
    overruns: list[str] = []
    requests = failures = downtime = 0.0
    availability = 0.0
    hosts = vms = 0
    bringup = 0.0
    policy: dict = {}
    for payload in payloads:
        hosts += payload["hosts"]
        vms += payload["vms"]
        bringup = max(bringup, payload["bringup_s"])
        overruns.extend(payload["overruns"])
        for row in payload["rows"]:
            rows.append(dict(row))
            requests += row.get("requests", 0.0)
            failures += row.get("failures", 0.0)
            downtime += row.get("downtime_s", 0.0)
            availability += row.get("availability", 1.0)
        shard_policy = payload.get("policy") or {}
        if shard_policy:
            if not policy:
                policy = {
                    "strategy": shard_policy["strategy"],
                    "cycles": 0,
                    "migrations": 0,
                    "rejuvenations": 0,
                    "skipped": 0,
                    "failed": 0,
                    "deferred": 0,
                    "trigger_log": [],
                    "audit": [],
                }
            # Every shard ticks the same absolute grid, so cycle counts
            # agree; the action counters are genuine per-shard work.
            policy["cycles"] = max(policy["cycles"], shard_policy["cycles"])
            for key in (
                "migrations", "rejuvenations", "skipped", "failed", "deferred"
            ):
                policy[key] += shard_policy[key]
            policy["trigger_log"].extend(shard_policy.get("trigger_log", ()))
            policy["audit"].extend(shard_policy["audit"])
    telemetry: dict = {}
    slo: dict = {}
    blobs = [payload.get("telemetry") or {} for payload in payloads]
    if payloads and all(blobs):
        bundle = TelemetryBundle.merge(spec.name, blobs)
        telemetry = bundle.to_dict()
        if spec.slo is not None:
            # Price the SLO from the merged telemetry alone — the same
            # inputs `repro.obs` works from, so report and bundle can
            # never disagree.
            slo = evaluate_slo(
                spec.slo,
                start=spec.warmup_s,
                end=spec.horizon_s,
                rows=bundle.sli_rows(),
                outages=outage_intervals(
                    bundle.all_records(), spec.warmup_s, spec.horizon_s
                ),
                latency=merge_latency_histogram(
                    [
                        entry
                        for shard in bundle.shards
                        for entry in shard.metrics.get(
                            "httperf.request_latency", ()
                        )
                    ]
                ),
            )
    return FleetReport(
        name=spec.name,
        hosts=hosts,
        vms=vms,
        shards=len(payloads),
        sessions=spec.sessions,
        requests=requests,
        failures=failures,
        downtime_s=downtime,
        availability=availability / len(rows) if rows else 1.0,
        overruns=overruns,
        bringup_s=bringup,
        rows=rows,
        policy=policy,
        telemetry=telemetry,
        slo=slo,
    )


def run_fleet(
    spec: FleetSpec,
    jobs: int | None = None,
    use_cache: bool = False,
    stats: SweepStats | None = None,
) -> FleetReport:
    """Run every shard (pooled across processes) and merge the payloads.

    Caching is off by default — fleet runs are usually one-shot and their
    payloads large-ish; pass ``use_cache=True`` to content-address them
    like experiment cells (mode, backend and horizon are key material,
    so a cached fleet row can never alias a different configuration).
    """
    started = time.perf_counter()
    plan = fleet_cells(spec)
    payloads = run_cells(plan, jobs=jobs, use_cache=use_cache, stats=stats)
    ordered = [payloads[(_FLEET, cell.key)] for cell in plan]
    report = merge_shards(spec, ordered)
    report.wall_s = round(time.perf_counter() - started, 3)
    return report
