"""Worker-side execution of one fleet shard.

:func:`run_fleet_shard` is a parallel-sweep cell function: plain dict
plan in (see :meth:`~repro.fleet.spec.FleetSpec.shard_plans`), plain
dict payload out.  It materializes the shard's hosts through
:class:`~repro.scenario.builder.ScenarioBuilder` on the batched
scheduler backend, enforces the epoch barrier (bring-up must finish
inside ``warmup_s``; reboots start at absolute epoch times), and
measures every workload over the fleet-wide observation window
``[warmup_s, warmup_s + observe_s]`` — the same wall-aligned window in
every shard, which is what makes merged shard payloads identical to a
serial single-simulation run for fluid workloads.
"""

from __future__ import annotations

import typing
from bisect import bisect_left, bisect_right

from repro.control.loop import ControlLoop
from repro.core.strategies import RebootStrategy
from repro.errors import FleetError
from repro.obs.bundle import capture_shard
from repro.scenario.builder import AttachedWorkload, BuiltScenario, ScenarioBuilder
from repro.scenario.spec import ScenarioSpec
from repro.workloads.httperf import FluidHttperf, Httperf
from repro.workloads.prober import PingProber


def _measure_window(
    attached: AttachedWorkload, since: float, until: float
) -> dict[str, float]:
    """One client's cross-validation row over the observation window.

    Fluid clients integrate their tick log; exact clients window their
    columnar completion log, and estimate downtime from the retry ledger
    (each failure is one worker sleeping ``retry_interval_s``, so
    ``failures * retry / concurrency`` is wall-clock unreachable time —
    quantized exactly like the fluid model's tick sampling).
    """
    client = attached.client
    if isinstance(client, FluidHttperf):
        return client.window_summary(since, until)
    if isinstance(client, Httperf):
        span = until - since
        times = client.completion_times
        lo, hi = bisect_left(times, since), bisect_right(times, until)
        downtime = (
            client.failures * client.retry_interval_s / client.concurrency
        )
        return {
            "requests": float(hi - lo),
            "failures": float(client.failures),
            "mean_rate": client.mean_rate(since, until),
            "downtime_s": downtime,
            "availability": 1.0 - min(downtime, span) / span if span > 0
            else 1.0,
        }
    if isinstance(client, PingProber):
        return {
            "outages": float(len(client.outages)),
            "downtime_s": client.total_downtime(),
            "longest_outage_s": client.longest_outage(),
        }
    raise FleetError(
        f"workload kind {attached.spec.kind!r} has no fleet measurement"
    )


def _rejuvenate(
    built: BuiltScenario,
    host: typing.Any,
    strategy: RebootStrategy,
    start: float,
    deadline: float,
    durations: dict[str, float],
    overruns: list[str],
) -> typing.Generator:
    """One host's epoch-scheduled VMM reboot (a process)."""
    sim = built.sim
    yield sim.timeout(start - sim.now)
    with sim.spans.span("fleet.host", actor=host.name, detail=strategy.value):
        yield from host.reboot(strategy)
    durations[host.name] = sim.now - start
    if sim.now > deadline:
        overruns.append(host.name)


def run_fleet_shard(shard: dict) -> dict:
    """Execute one shard plan to completion; returns a plain payload."""
    spec = ScenarioSpec.from_dict(shard["spec_data"])
    schedule: dict[str, float] = shard["schedule"]
    strategy = RebootStrategy(shard["strategy"])
    epoch_s = float(shard["epoch_s"])
    warmup = float(shard["warmup_s"])
    horizon = warmup + float(shard["observe_s"])
    telemetry = bool(shard.get("telemetry"))

    built = ScenarioBuilder(
        spec,
        backend=shard.get("backend", "batched"),
        # Telemetry collection needs the metric series even without a
        # policy; None keeps the spec-driven default.
        metrics=True if telemetry else None,
    ).build()
    sim = built.sim
    bringup_s = sim.now
    if bringup_s >= warmup:
        raise FleetError(
            f"shard {shard.get('shard')}: bring-up took {bringup_s:.1f}s but "
            f"warmup_s is {warmup}; the epoch barrier needs "
            "warmup_s to exceed every shard's bring-up — raise warmup_s"
        )

    durations: dict[str, float] = {}
    overruns: list[str] = []
    for host in built.hosts:
        start = schedule.get(host.name)
        if start is None:
            raise FleetError(
                f"shard {shard.get('shard')}: host {host.name!r} has no "
                "epoch schedule entry"
            )
        sim.spawn(
            _rejuvenate(
                built, host, strategy, float(start), float(start) + epoch_s,
                durations, overruns,
            ),
            name=f"fleet.rejuvenate:{host.name}",
        )
    control_loop = None
    if spec.policy is not None:
        # A policy-enabled shard runs its own control loop over its
        # hosts.  Decisions are a pure function of shard-local state on
        # the absolute grid, so sharding never changes them; migrations
        # stay shard-local (the loop only sees this shard's hosts).
        control_loop = ControlLoop(
            sim, built.hosts, config=spec.policy.to_control_config()
        )
        sim.spawn(control_loop.run(horizon), name="fleet.control")
    sim.run(until=horizon)
    built.stop_workloads()

    rows = [
        {
            "host": attached.host.name,
            "vm": attached.vm_name,
            "kind": attached.spec.kind,
            "mode": attached.spec.mode,
            "sessions": attached.spec.sessions
            if attached.spec.mode == "fluid" else attached.spec.concurrency,
            **_measure_window(attached, warmup, horizon),
        }
        for attached in built.workloads
    ]
    policy_summary = control_loop.summary() if control_loop is not None else {}
    shard_index = int(shard.get("shard", 0))
    blob: dict = {}
    if telemetry:
        # Publish each measured row's SLIs as gauges so the merged bundle
        # carries exactly the values the fleet report reports — the
        # zero-deviation agreement the obs-check gate asserts.
        for row in rows:
            labels = {
                "host": row["host"], "vm": row["vm"], "kind": row["kind"],
            }
            if "downtime_s" in row:
                sim.metrics.gauge("fleet.downtime_seconds", **labels).set(
                    row["downtime_s"]
                )
            if "availability" in row:
                sim.metrics.gauge("fleet.availability", **labels).set(
                    row["availability"]
                )
        blob = capture_shard(
            sim,
            shard_index,
            [host.name for host in built.hosts],
            audit=policy_summary.get("audit", ()),
            triggers=policy_summary.get("trigger_log", ()),
        ).to_dict()
    return {
        "fleet": shard.get("fleet", spec.name),
        "shard": shard_index,
        "hosts": len(built.hosts),
        "vms": sum(len(host.vm_specs) for host in built.hosts),
        "bringup_s": bringup_s,
        "reboot_s": dict(sorted(durations.items())),
        "overruns": sorted(overruns),
        "rows": rows,
        "policy": policy_summary,
        "telemetry": blob,
    }
