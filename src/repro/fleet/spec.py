"""Declarative fleet specifications: many hosts, few processes.

A :class:`FleetSpec` describes a datacenter-scale rolling-rejuvenation
run: a host fleet (reusing the scenario layer's :class:`HostSpec`), the
workloads attached to every VM, a rejuvenation **epoch schedule**, and a
shard count.  :meth:`FleetSpec.shard_plans` partitions the expanded
hosts into contiguous shards and emits, per shard, a plain-dict plan —
a :class:`~repro.scenario.spec.ScenarioSpec` (``force_cluster`` so even
a one-host shard builds with cluster naming and RNG streams) plus the
absolute-time reboot schedule for its hosts — which
:func:`repro.fleet.shard.run_fleet_shard` executes in a worker process.

The epoch protocol is the shards' only coordination, and it needs no
messages: every reboot start is a function of the *global* host index
(``warmup_s + (index // hosts_per_epoch) * epoch_s``), every RNG stream
derives from the host's *name*, and fluid workload ticks land on the
absolute grid — so a host behaves identically whichever shard (or a
serial single simulation) hosts it, and shard payloads merge into one
deterministic fleet report.
"""

from __future__ import annotations

import dataclasses
import math
import tomllib
import typing

from repro.errors import ScenarioError
from repro.obs.slo import SLOSpec
from repro.scenario.spec import (
    STRATEGIES,
    FaultSpec,
    HostSpec,
    PolicySpec,
    ScenarioSpec,
    WorkloadSpec,
    _as_dict,
    _check_keys,
    _construct,
    _number,
    _require,
    _sub_tables,
)

HOST_TEMPLATE = "host{i}"
"""Default host name template; ``{i}`` is the global host index, so a
host keeps its name (and therefore its RNG streams) in every sharding."""


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """A sharded rolling-rejuvenation fleet run."""

    name: str
    description: str = ""
    hosts: tuple[HostSpec, ...] = ()
    shards: int = 4
    profile: str = "paper"
    seed: int = 0
    workloads: tuple[WorkloadSpec, ...] = ()
    faults: FaultSpec | None = None
    policy: PolicySpec | None = None
    strategy: str = "warm"
    hosts_per_epoch: int = 1
    epoch_s: float = 60.0
    warmup_s: float = 60.0
    observe_s: float = 600.0
    telemetry: bool = False
    """Collect per-shard telemetry blobs (spans, metric series, control
    audit) and merge them into the report's
    :class:`~repro.obs.bundle.TelemetryBundle`; implied by ``slo``."""
    slo: SLOSpec | None = None
    """Service-level objectives (the ``[slo]`` TOML table), evaluated
    over the observation window from the merged telemetry."""

    def __post_init__(self) -> None:
        _require(bool(self.name), "name", "must be a non-empty string")
        _require(
            isinstance(self.telemetry, bool),
            "telemetry",
            f"must be a boolean, got {type(self.telemetry).__name__}",
        )
        _require(len(self.hosts) >= 1, "hosts", "need at least one host entry")
        _require(self.shards >= 1, "shards", f"must be >= 1, got {self.shards}")
        _require(
            self.strategy in STRATEGIES,
            "strategy",
            f"must be one of {', '.join(STRATEGIES)}, got {self.strategy!r}",
        )
        _require(
            self.hosts_per_epoch >= 1,
            "hosts_per_epoch",
            f"must be >= 1, got {self.hosts_per_epoch}",
        )
        _require(
            self.epoch_s > 0, "epoch_s", f"must be positive, got {self.epoch_s}"
        )
        _require(
            self.warmup_s > 0,
            "warmup_s",
            f"must be positive (it must cover shard bring-up), "
            f"got {self.warmup_s}",
        )
        _require(
            self.observe_s > 0,
            "observe_s",
            f"must be positive, got {self.observe_s}",
        )
        span = self.epochs * self.epoch_s
        _require(
            self.observe_s >= span,
            "observe_s",
            f"must cover the epoch schedule ({self.epochs} epoch(s) x "
            f"{self.epoch_s}s = {span}s), got {self.observe_s}",
        )

    # -- derived geometry --------------------------------------------------------

    @property
    def host_count(self) -> int:
        return sum(host.count for host in self.hosts)

    @property
    def epochs(self) -> int:
        return math.ceil(self.host_count / self.hosts_per_epoch)

    @property
    def horizon_s(self) -> float:
        """Absolute end of the observation window."""
        return self.warmup_s + self.observe_s

    @property
    def telemetry_enabled(self) -> bool:
        """Whether shards collect telemetry blobs (``slo`` implies it)."""
        return self.telemetry or self.slo is not None

    @property
    def sessions(self) -> int:
        """Total concurrent fluid sessions across all workloads and VMs."""
        total = 0
        for workload in self.workloads:
            if workload.kind != "httperf" or workload.mode != "fluid":
                continue
            targets = sum(
                host.count * vm.count
                for host in self.hosts
                for vm in host.vms
                if workload.service in vm.services
            )
            total += workload.sessions * targets
        return total

    def expanded_hosts(self) -> list[HostSpec]:
        """Per-host singleton specs with explicit, shard-invariant names."""
        expanded: list[HostSpec] = []
        index = 0
        for host in self.hosts:
            template = host.name if host.name is not None else HOST_TEMPLATE
            if host.count > 1 and "{i" not in template:
                raise ScenarioError(
                    f"host name {template!r} has no '{{i}}' placeholder "
                    f"but count is {host.count}; the copies would collide"
                )
            for _ in range(host.count):
                expanded.append(
                    dataclasses.replace(
                        host, name=template.format(i=index), count=1
                    )
                )
                index += 1
        return expanded

    def schedule(self) -> dict[str, float]:
        """Absolute reboot start per host name (the epoch protocol)."""
        return {
            host.name: self.warmup_s
            + (index // self.hosts_per_epoch) * self.epoch_s
            for index, host in enumerate(self.expanded_hosts())
        }

    def shard_plans(self) -> list[dict]:
        """One plain-dict execution plan per shard (cell parameters).

        Hosts are partitioned contiguously and as evenly as possible;
        a host is never split across shards, so everything that couples
        clients — the shared machine pools under one host's VMs — stays
        shard-local.
        """
        expanded = self.expanded_hosts()
        schedule = self.schedule()
        shards = min(self.shards, len(expanded))
        base, extra = divmod(len(expanded), shards)
        plans: list[dict] = []
        cursor = 0
        for index in range(shards):
            size = base + (1 if index < extra else 0)
            chunk = expanded[cursor:cursor + size]
            cursor += size
            scenario = ScenarioSpec(
                name=f"{self.name}/shard{index}",
                hosts=tuple(chunk),
                force_cluster=True,
                profile=self.profile,
                seed=self.seed,
                workloads=self.workloads,
                faults=self.faults,
                policy=self.policy,
            )
            plans.append(
                {
                    "fleet": self.name,
                    "shard": index,
                    "spec_data": scenario.to_dict(),
                    "schedule": {
                        host.name: schedule[host.name] for host in chunk
                    },
                    "strategy": self.strategy,
                    "epoch_s": self.epoch_s,
                    "warmup_s": self.warmup_s,
                    "observe_s": self.observe_s,
                    "backend": "batched",
                    "telemetry": self.telemetry_enabled,
                }
            )
        return plans

    # -- (de)serialization -------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict, where: str = "fleet") -> "FleetSpec":
        _check_keys(data, _FLEET_FIELDS, where)
        for key in ("shards", "seed", "hosts_per_epoch", "epoch_s",
                    "warmup_s", "observe_s"):
            _number(data, key, where)
        kwargs = dict(data)
        if "hosts" in kwargs:
            kwargs["hosts"] = tuple(
                HostSpec.from_dict(host, f"{where}.hosts[{i}]")
                for i, host in enumerate(
                    _sub_tables(kwargs["hosts"], f"{where}.hosts")
                )
            )
        if "workloads" in kwargs:
            kwargs["workloads"] = tuple(
                WorkloadSpec.from_dict(w, f"{where}.workloads[{i}]")
                for i, w in enumerate(
                    _sub_tables(kwargs["workloads"], f"{where}.workloads")
                )
            )
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultSpec.from_dict(
                kwargs["faults"], f"{where}.faults"
            )
        if kwargs.get("policy") is not None:
            kwargs["policy"] = PolicySpec.from_dict(
                kwargs["policy"], f"{where}.policy"
            )
        if kwargs.get("slo") is not None:
            kwargs["slo"] = SLOSpec.from_dict(kwargs["slo"], f"{where}.slo")
        return _construct(cls, kwargs, where)

    def to_dict(self) -> dict:
        out = _as_dict(self)
        out["hosts"] = [host.to_dict() for host in self.hosts]
        out["workloads"] = [w.to_dict() for w in self.workloads]
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        if self.policy is not None:
            out["policy"] = self.policy.to_dict()
        if self.slo is not None:
            out["slo"] = self.slo.to_dict()
        return out


_FLEET_FIELDS = frozenset(f.name for f in dataclasses.fields(FleetSpec))


def load_fleet_toml(path: str) -> FleetSpec:
    """Load and validate a fleet spec from a TOML file."""
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except FileNotFoundError:
        raise ScenarioError(f"{path}: no such fleet spec file") from None
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError(f"{path}: invalid TOML: {exc}") from None
    return FleetSpec.from_dict(data, where=path)
