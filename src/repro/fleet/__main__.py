"""``python -m repro.fleet`` entry point."""

import sys

from repro.fleet.cli import main

sys.exit(main())
