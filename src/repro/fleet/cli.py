"""Command line for the fleet tier.

Exposed as ``python -m repro.fleet ...``::

    fleet validate SPEC...        # schema-check fleet TOML files
    fleet run SPEC [--jobs N]     # run every shard, print the report

``fleet run --trace-out PATH`` mirrors ``scenario run --trace-out``: it
runs the shards serially in-process with metrics collection on and
writes one Perfetto trace per shard (``PATH`` gains a ``.shardN``
suffix), so control-plane decisions (``control.cycle`` /
``control.action`` spans and the ``control.decision`` records) are
inspectable per shard.

``fleet run --obs-out PATH`` writes the *merged* telemetry bundle (all
shards, with host→shard provenance) as one JSON document — the input
``python -m repro.obs explain`` reconstructs decision timelines from.
It forces telemetry collection on even when the spec states no ``[slo]``
table and no ``telemetry = true``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import typing

from repro.errors import FleetError, ScenarioError
from repro.fleet.runner import run_fleet
from repro.fleet.spec import load_fleet_toml
from repro.scenario.spec import PolicySpec


def _cmd_validate(args: argparse.Namespace) -> int:
    for path in args.specs:
        spec = load_fleet_toml(path)
        print(
            f"{path}: ok ({spec.name}: {spec.host_count} host(s), "
            f"{spec.sessions} fluid session(s), {len(spec.shard_plans())} "
            f"shard(s), {spec.epochs} epoch(s))"
        )
    return 0


def _trace_suffixed(path: str, shard: int) -> str:
    """``fleet.json`` -> ``fleet.shard0.json`` (suffix before the ext)."""
    stem, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}.shard{shard}"
    return f"{stem}.shard{shard}.{ext}"


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_fleet_toml(args.spec)
    if args.policy:
        policy = (
            dataclasses.replace(spec.policy, strategy=args.policy)
            if spec.policy is not None
            else PolicySpec(strategy=args.policy)
        )
        spec = dataclasses.replace(spec, policy=policy)
    if args.obs_out and not spec.telemetry_enabled:
        spec = dataclasses.replace(spec, telemetry=True)
    if args.trace_out:
        import os

        from repro.analysis.obs import capture_simulators, write_perfetto

        previous = os.environ.get("REPRO_METRICS")
        os.environ["REPRO_METRICS"] = "1"  # shards own Simulator creation
        try:
            with capture_simulators() as sims:
                # Tracing needs the shard simulators in this process.
                report = run_fleet(spec, jobs=1, use_cache=False)
        finally:
            if previous is None:
                del os.environ["REPRO_METRICS"]
            else:
                os.environ["REPRO_METRICS"] = previous
        for shard, sim in enumerate(sims):
            out = _trace_suffixed(args.trace_out, shard)
            print(f"wrote {write_perfetto(out, sim.trace, sim.metrics)}")
    else:
        report = run_fleet(spec, jobs=args.jobs, use_cache=args.cache)
    if args.obs_out:
        from repro.obs.bundle import TelemetryBundle

        bundle = TelemetryBundle.from_dict(report.telemetry)
        print(f"wrote {bundle.write(args.obs_out)}")
    print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Sharded fleet runs: validate and run fleet specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="schema-check fleet TOML files")
    validate.add_argument("specs", nargs="+", metavar="SPEC.toml")
    validate.set_defaults(fn=_cmd_validate)

    run = sub.add_parser("run", help="run one fleet end-to-end")
    run.add_argument("spec", metavar="SPEC.toml")
    run.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the shard fan-out (default: cpu count); "
        "1 runs shards serially in-process",
    )
    run.add_argument(
        "--cache", action="store_true",
        help="content-address shard payloads in the experiments cache",
    )
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write one Perfetto trace per shard (PATH gains a .shardN "
        "suffix); implies metrics collection and --jobs 1",
    )
    run.add_argument(
        "--obs-out",
        metavar="PATH",
        default=None,
        help="write the merged fleet telemetry bundle as one JSON "
        "document (implies telemetry collection); explain it with "
        "`python -m repro.obs explain PATH`",
    )
    run.add_argument(
        "--policy",
        metavar="STRATEGY",
        default=None,
        help="enable (or override) the autonomic control loop with this "
        "placement strategy on every shard",
    )
    run.set_defaults(fn=_cmd_run)
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (FleetError, ScenarioError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
