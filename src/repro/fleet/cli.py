"""Command line for the fleet tier.

Exposed as ``python -m repro.fleet ...``::

    fleet validate SPEC...        # schema-check fleet TOML files
    fleet run SPEC [--jobs N]     # run every shard, print the report
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.errors import FleetError, ScenarioError
from repro.fleet.runner import run_fleet
from repro.fleet.spec import load_fleet_toml


def _cmd_validate(args: argparse.Namespace) -> int:
    for path in args.specs:
        spec = load_fleet_toml(path)
        print(
            f"{path}: ok ({spec.name}: {spec.host_count} host(s), "
            f"{spec.sessions} fluid session(s), {len(spec.shard_plans())} "
            f"shard(s), {spec.epochs} epoch(s))"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_fleet_toml(args.spec)
    report = run_fleet(spec, jobs=args.jobs, use_cache=args.cache)
    print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Sharded fleet runs: validate and run fleet specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="schema-check fleet TOML files")
    validate.add_argument("specs", nargs="+", metavar="SPEC.toml")
    validate.set_defaults(fn=_cmd_validate)

    run = sub.add_parser("run", help="run one fleet end-to-end")
    run.add_argument("spec", metavar="SPEC.toml")
    run.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the shard fan-out (default: cpu count); "
        "1 runs shards serially in-process",
    )
    run.add_argument(
        "--cache", action="store_true",
        help="content-address shard payloads in the experiments cache",
    )
    run.set_defaults(fn=_cmd_run)
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (FleetError, ScenarioError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
