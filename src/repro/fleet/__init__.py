"""The fleet tier: sharded multi-process rolling-rejuvenation runs.

Scales the cluster layer from "a cluster" to "a datacenter": a
:class:`~repro.fleet.spec.FleetSpec` partitions its hosts into shards,
each shard is one :class:`~repro.scenario.builder.ScenarioBuilder` stack
in its own worker process on the batched scheduler backend, and an
absolute-time epoch schedule keeps rolling rejuvenation deterministic
across shards with no cross-process messaging.  Pair with fluid
workloads (``WorkloadSpec.mode = "fluid"``) to carry millions of
concurrent sessions; see DESIGN.md "Fleet tier & fluid workloads".
"""

from repro.fleet.runner import FleetReport, fleet_cells, merge_shards, run_fleet
from repro.fleet.shard import run_fleet_shard
from repro.fleet.spec import FleetSpec, load_fleet_toml

__all__ = [
    "FleetReport",
    "FleetSpec",
    "fleet_cells",
    "load_fleet_toml",
    "merge_shards",
    "run_fleet",
    "run_fleet_shard",
]
