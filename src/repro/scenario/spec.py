"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, inert description of one simulated
setup: the host fleet (:class:`HostSpec` / :class:`VMSpec`), the attached
workloads (:class:`WorkloadSpec`), injected aging (:class:`FaultSpec`) and
the maintenance schedule (:class:`MaintenanceSpec`).  Specs are plain
frozen dataclasses, loadable from dicts (:meth:`ScenarioSpec.from_dict`)
and TOML files (:func:`load_toml`), and every stack in the repository —
the experiment testbeds, the cluster runs, the ``scenario run`` CLI — is
materialized from one by :class:`~repro.scenario.builder.ScenarioBuilder`.

Validation is strict and early: unknown keys, wrong types and out-of-range
values raise :class:`~repro.errors.ScenarioError` with a dotted path to
the offending field (``hosts[0].vms[1].memory_gib``), so a typo in a TOML
file fails at load time, not three simulated minutes into a run.
"""

from __future__ import annotations

import dataclasses
import tomllib
import typing

from repro.errors import ScenarioError
from repro.obs.slo import SLOSpec
from repro.units import GiB, KiB

STRATEGIES = ("warm", "cold", "saved", "dom0-only")
"""VMM reboot strategies a maintenance spec may name."""

MAINTENANCE_KINDS = ("reboot", "rolling", "migration", "periodic")
WORKLOAD_KINDS = ("httperf", "fileread", "prober")
WORKLOAD_MODES = ("exact", "fluid")
"""``exact`` simulates every request; ``fluid`` advances session counts
at aggregation ticks (see :class:`repro.workloads.httperf.FluidHttperf`)."""
PROFILES = ("paper", "small")
FAULT_PRESETS = ("healthy", "paper-bugs")
POLICY_STRATEGIES = (
    "fleet-order",
    "first-fit-decreasing",
    "consolidation",
    "aging-aware",
)
"""Placement strategies a policy spec may name (the built-in entries of
:data:`repro.control.planner.STRATEGY_REGISTRY`)."""
POLICY_REJUVENATE = ("warm", "cold")


def _type_name(value: typing.Any) -> str:
    return type(value).__name__


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ScenarioError(f"{where}: {message}")


def _check_keys(
    data: typing.Mapping[str, typing.Any],
    fields: typing.Collection[str],
    where: str,
) -> None:
    _require(
        isinstance(data, dict), where, f"expected a table, got {_type_name(data)}"
    )
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise ScenarioError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(sorted(fields))}"
        )


def _number(data: dict, key: str, where: str) -> None:
    value = data.get(key)
    if value is not None and (
        isinstance(value, bool) or not isinstance(value, (int, float))
    ):
        raise ScenarioError(
            f"{where}.{key}: expected a number, got {_type_name(value)}"
        )


def _string_tuple(value: typing.Any, where: str) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    _require(
        isinstance(value, (list, tuple)),
        where,
        f"expected a string or list of strings, got {_type_name(value)}",
    )
    for item in value:
        _require(
            isinstance(item, str), where, f"expected strings, got {_type_name(item)}"
        )
    return tuple(value)


def _sub_tables(value: typing.Any, where: str) -> list[dict]:
    _require(
        isinstance(value, (list, tuple)),
        where,
        f"expected an array of tables, got {_type_name(value)}",
    )
    return list(value)


def _construct(cls: type, kwargs: dict, where: str):
    """Instantiate ``cls`` rewriting validation errors with path context.

    ``__post_init__`` raises with a local field path ("vm.count: ...");
    re-anchor it under ``where`` so nested specs report the full dotted
    path into the loaded document.
    """
    try:
        return cls(**kwargs)
    except ScenarioError as exc:
        local = str(exc)
        field = local.split(":", 1)[0].rsplit(".", 1)[-1]
        rest = local.split(":", 1)[1] if ":" in local else local
        raise ScenarioError(f"{where}.{field}:{rest}") from None
    except TypeError as exc:
        raise ScenarioError(f"{where}: {exc}") from None


@dataclasses.dataclass(frozen=True)
class VMSpec:
    """One kind of VM in a host's fleet (``count`` identical instances).

    ``name`` is a template: ``{i}`` expands to the VM's index within its
    host (``{i:02d}`` etc. work).  ``None`` picks the topology default —
    ``vm{i:02d}`` on a standalone host, ``{host}-vm{i}`` in a cluster —
    which is exactly what the paper experiments name their VMs.
    """

    name: str | None = None
    count: int = 1
    memory_gib: float = 1.0
    services: tuple[str, ...] = ("ssh",)
    vcpus: int = 1
    driver_domain: bool = False
    cpu_weight: int = 256
    cpu_cap_cores: float | None = None

    def __post_init__(self) -> None:
        _require(self.count >= 1, "vm.count", f"must be >= 1, got {self.count}")
        _require(
            self.cpu_weight >= 1,
            "vm.cpu_weight",
            f"must be >= 1, got {self.cpu_weight}",
        )
        _require(
            self.memory_gib > 0,
            "vm.memory_gib",
            f"must be positive, got {self.memory_gib}",
        )
        _require(self.vcpus >= 1, "vm.vcpus", f"must be >= 1, got {self.vcpus}")

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gib * GiB)

    @classmethod
    def from_dict(cls, data: dict, where: str = "vm") -> "VMSpec":
        _check_keys(data, _FIELDS[cls], where)
        for key in ("count", "memory_gib", "vcpus", "cpu_weight", "cpu_cap_cores"):
            _number(data, key, where)
        kwargs = dict(data)
        if "services" in kwargs:
            kwargs["services"] = _string_tuple(
                kwargs["services"], f"{where}.services"
            )
        return _construct(cls, kwargs, where)

    def to_dict(self) -> dict:
        return _as_dict(self)


@dataclasses.dataclass(frozen=True)
class HostSpec:
    """``count`` identical hosts, each running the same VM fleet."""

    name: str | None = None
    count: int = 1
    vms: tuple[VMSpec, ...] = ()

    def __post_init__(self) -> None:
        _require(self.count >= 1, "host.count", f"must be >= 1, got {self.count}")

    @classmethod
    def from_dict(cls, data: dict, where: str = "host") -> "HostSpec":
        _check_keys(data, _FIELDS[cls], where)
        _number(data, "count", where)
        kwargs = dict(data)
        if "vms" in kwargs:
            kwargs["vms"] = tuple(
                VMSpec.from_dict(vm, f"{where}.vms[{i}]")
                for i, vm in enumerate(_sub_tables(kwargs["vms"], f"{where}.vms"))
            )
        return _construct(cls, kwargs, where)

    def to_dict(self) -> dict:
        out = _as_dict(self)
        out["vms"] = [vm.to_dict() for vm in self.vms]
        return out


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One client workload attached at build time.

    ``vm`` pins the workload to a named VM; ``None`` attaches one client
    per VM running ``service`` (how Figure 9 load-balances one httperf
    stream per host).  ``httperf`` serves a generated corpus of ``files``
    files of ``file_kib`` KiB under ``directory``; ``fileread`` creates a
    single ``file_kib`` file at ``path``; ``prober`` polls reachability
    every ``interval_s``.

    ``mode`` selects the client model for ``httperf``: ``exact`` (the
    default) simulates every request; ``fluid`` models ``sessions``
    closed-loop clients as rates advanced every ``tick_s`` seconds, which
    is how fleet-scale scenarios carry millions of concurrent sessions.
    """

    kind: str = "httperf"
    vm: str | None = None
    service: str = "apache"
    directory: str = "/www"
    files: int = 30
    file_kib: float = 2048.0
    concurrency: int = 2
    warm_cache: bool = True
    path: str = "/data/file"
    interval_s: float = 0.5
    mode: str = "exact"
    sessions: int = 10
    tick_s: float = 1.0

    def __post_init__(self) -> None:
        _require(
            self.kind in WORKLOAD_KINDS,
            "workload.kind",
            f"must be one of {', '.join(WORKLOAD_KINDS)}, got {self.kind!r}",
        )
        _require(
            self.mode in WORKLOAD_MODES,
            "workload.mode",
            f"must be one of {', '.join(WORKLOAD_MODES)}, got {self.mode!r}",
        )
        _require(
            self.mode == "exact" or self.kind == "httperf",
            "workload.mode",
            f"fluid mode only applies to httperf, got kind {self.kind!r}",
        )
        _require(
            self.sessions >= 1,
            "workload.sessions",
            f"must be >= 1, got {self.sessions}",
        )
        _require(
            self.tick_s > 0,
            "workload.tick_s",
            f"must be positive, got {self.tick_s}",
        )
        _require(self.files >= 1, "workload.files", f"must be >= 1, got {self.files}")
        _require(
            self.file_kib > 0,
            "workload.file_kib",
            f"must be positive, got {self.file_kib}",
        )
        _require(
            self.concurrency >= 1,
            "workload.concurrency",
            f"must be >= 1, got {self.concurrency}",
        )
        _require(
            self.interval_s > 0,
            "workload.interval_s",
            f"must be positive, got {self.interval_s}",
        )

    @property
    def file_bytes(self) -> int:
        return int(self.file_kib * KiB)

    @classmethod
    def from_dict(cls, data: dict, where: str = "workload") -> "WorkloadSpec":
        _check_keys(data, _FIELDS[cls], where)
        for key in ("files", "file_kib", "concurrency", "interval_s",
                    "sessions", "tick_s"):
            _number(data, key, where)
        return _construct(cls, dict(data), where)

    def to_dict(self) -> dict:
        return _as_dict(self)


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """Injected software aging: the §2 leak defects plus a heap-leak rate.

    ``preset`` selects a named :class:`~repro.aging.faults.AgingFaults`
    catalogue entry; the explicit ``*_kib`` knobs override individual
    magnitudes.  ``heap_leak_kib_per_hour`` additionally runs a
    :class:`~repro.aging.watchdog.HeapExhaustionCrasher` (plus a crash
    watchdog) during scenario runs, so aging scenarios can reach the crash
    that rejuvenation preempts.
    """

    preset: str | None = None
    domain_destroy_leak_kib: float = 0.0
    error_path_leak_kib: float = 0.0
    xenstore_leak_per_txn_kib: float = 0.0
    heap_leak_kib_per_hour: float = 0.0

    def __post_init__(self) -> None:
        _require(
            self.preset is None or self.preset in FAULT_PRESETS,
            "faults.preset",
            f"must be one of {', '.join(FAULT_PRESETS)}, got {self.preset!r}",
        )
        for field in (
            "domain_destroy_leak_kib",
            "error_path_leak_kib",
            "xenstore_leak_per_txn_kib",
            "heap_leak_kib_per_hour",
        ):
            value = getattr(self, field)
            _require(value >= 0, f"faults.{field}", f"must be >= 0, got {value}")

    def to_aging_faults(self):
        """The :class:`~repro.aging.faults.AgingFaults` this spec asks for."""
        from repro.aging.faults import AgingFaults

        base = (
            AgingFaults.paper_bugs()
            if self.preset == "paper-bugs"
            else AgingFaults.healthy()
        )
        overrides = {}
        if self.domain_destroy_leak_kib:
            overrides["leak_on_domain_destroy_bytes"] = int(
                self.domain_destroy_leak_kib * KiB
            )
        if self.error_path_leak_kib:
            overrides["leak_on_error_path_bytes"] = int(
                self.error_path_leak_kib * KiB
            )
        if self.xenstore_leak_per_txn_kib:
            overrides["xenstore_leak_per_txn_bytes"] = int(
                self.xenstore_leak_per_txn_kib * KiB
            )
        return dataclasses.replace(base, **overrides) if overrides else base

    @classmethod
    def from_dict(cls, data: dict, where: str = "faults") -> "FaultSpec":
        _check_keys(data, _FIELDS[cls], where)
        for key in _FIELDS[cls] - {"preset"}:
            _number(data, key, where)
        return _construct(cls, dict(data), where)

    def to_dict(self) -> dict:
        return _as_dict(self)


@dataclasses.dataclass(frozen=True)
class MaintenanceSpec:
    """What maintenance the scenario performs after warm-up.

    * ``reboot`` — one VMM reboot of the (single) host with ``strategy``;
    * ``rolling`` — :class:`~repro.cluster.rolling.RollingRejuvenator`
      across the cluster, ``settle_s`` between hosts;
    * ``migration`` — evacuate-to-spare rejuvenation (needs ``spare``);
    * ``periodic`` — a :class:`~repro.aging.policy.TimeBasedRejuvenator`
      on the single host, driven for the scenario's observation window.
    """

    kind: str = "reboot"
    strategy: str = "warm"
    settle_s: float = 5.0
    os_interval_s: float = 0.0
    vmm_interval_s: float = 0.0

    def __post_init__(self) -> None:
        _require(
            self.kind in MAINTENANCE_KINDS,
            "maintenance.kind",
            f"must be one of {', '.join(MAINTENANCE_KINDS)}, got {self.kind!r}",
        )
        _require(
            self.strategy in STRATEGIES,
            "maintenance.strategy",
            f"must be one of {', '.join(STRATEGIES)}, got {self.strategy!r}",
        )
        _require(
            self.settle_s >= 0,
            "maintenance.settle_s",
            f"must be >= 0, got {self.settle_s}",
        )
        if self.kind == "periodic":
            _require(
                self.os_interval_s > 0 and self.vmm_interval_s > 0,
                "maintenance",
                "periodic maintenance needs positive os_interval_s and "
                "vmm_interval_s",
            )

    @classmethod
    def from_dict(cls, data: dict, where: str = "maintenance") -> "MaintenanceSpec":
        _check_keys(data, _FIELDS[cls], where)
        for key in ("settle_s", "os_interval_s", "vmm_interval_s"):
            _number(data, key, where)
        return _construct(cls, dict(data), where)

    def to_dict(self) -> dict:
        return _as_dict(self)


@dataclasses.dataclass(frozen=True)
class PolicySpec:
    """An autonomic control loop attached to the scenario (TOML table).

    Mirrors :class:`repro.control.ControlConfig` field for field:
    detector thresholds (``overload``/``underload`` in mean runnable
    jobs per core over the trailing ``window_s``;
    ``aging_threshold``/``aging_rearm`` in VMM heap utilization), the
    placement ``strategy``, SLA budgets, and the control ``interval_s``.
    Attaching a policy implies metrics collection for the run — the
    detectors are the metric registry's first in-simulation consumer.
    """

    strategy: str = "fleet-order"
    interval_s: float = 60.0
    window_s: float = 60.0
    overload: float = 4.0
    underload: float = 0.05
    aging_threshold: float = 0.8
    aging_rearm: float = 0.4
    cooldown_s: float = 300.0
    migration_budget: int = 4
    min_hosts_up: int = 1
    rejuvenate: str = "warm"
    net_overload_bps: float = 0.0
    disk_overload: float = 0.0

    def __post_init__(self) -> None:
        _require(
            self.strategy in POLICY_STRATEGIES,
            "policy.strategy",
            f"must be one of {', '.join(POLICY_STRATEGIES)}, "
            f"got {self.strategy!r}",
        )
        _require(
            self.interval_s > 0,
            "policy.interval_s",
            f"must be positive, got {self.interval_s}",
        )
        _require(
            self.window_s > 0,
            "policy.window_s",
            f"must be positive, got {self.window_s}",
        )
        _require(
            0 <= self.underload < self.overload,
            "policy.underload",
            f"need 0 <= underload < overload, got underload="
            f"{self.underload} overload={self.overload}",
        )
        _require(
            0 < self.aging_threshold <= 1,
            "policy.aging_threshold",
            f"must be in (0, 1], got {self.aging_threshold}",
        )
        _require(
            0 <= self.aging_rearm <= self.aging_threshold,
            "policy.aging_rearm",
            f"must be in [0, aging_threshold], got {self.aging_rearm}",
        )
        _require(
            self.cooldown_s >= 0,
            "policy.cooldown_s",
            f"must be >= 0, got {self.cooldown_s}",
        )
        _require(
            self.migration_budget >= 0,
            "policy.migration_budget",
            f"must be >= 0, got {self.migration_budget}",
        )
        _require(
            self.min_hosts_up >= 0,
            "policy.min_hosts_up",
            f"must be >= 0, got {self.min_hosts_up}",
        )
        _require(
            self.rejuvenate in POLICY_REJUVENATE,
            "policy.rejuvenate",
            f"must be one of {', '.join(POLICY_REJUVENATE)}, "
            f"got {self.rejuvenate!r}",
        )
        _require(
            self.net_overload_bps >= 0,
            "policy.net_overload_bps",
            f"must be >= 0 (0 disables), got {self.net_overload_bps}",
        )
        _require(
            0 <= self.disk_overload <= 1,
            "policy.disk_overload",
            f"must be a busy fraction in [0, 1] (0 disables), "
            f"got {self.disk_overload}",
        )

    def to_control_config(self):
        """The :class:`repro.control.ControlConfig` this spec asks for."""
        from repro.control.loop import ControlConfig

        return ControlConfig(
            **{
                field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)
            }
        )

    @classmethod
    def from_dict(cls, data: dict, where: str = "policy") -> "PolicySpec":
        _check_keys(data, _FIELDS[cls], where)
        for key in _FIELDS[cls] - {"strategy", "rejuvenate"}:
            _number(data, key, where)
        return _construct(cls, dict(data), where)

    def to_dict(self) -> dict:
        return _as_dict(self)


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario."""

    name: str
    description: str = ""
    hosts: tuple[HostSpec, ...] = (HostSpec(vms=(VMSpec(),)),)
    spare: bool = False
    force_cluster: bool = False
    profile: str = "paper"
    seed: int = 0
    workloads: tuple[WorkloadSpec, ...] = ()
    faults: FaultSpec | None = None
    maintenance: MaintenanceSpec | None = None
    policy: PolicySpec | None = None
    slo: SLOSpec | None = None
    """Service-level objectives evaluated over the observation window
    (the ``[slo]`` TOML table); attaching one implies metrics collection
    for the run, exactly like ``[policy]``."""
    warmup_s: float = 0.0
    observe_s: float = 0.0

    def __post_init__(self) -> None:
        _require(bool(self.name), "name", "must be a non-empty string")
        _require(
            self.profile in PROFILES,
            "profile",
            f"must be one of {', '.join(PROFILES)}, got {self.profile!r}",
        )
        _require(len(self.hosts) >= 1, "hosts", "need at least one host entry")
        _require(self.warmup_s >= 0, "warmup_s", f"must be >= 0, got {self.warmup_s}")
        _require(
            self.observe_s >= 0, "observe_s", f"must be >= 0, got {self.observe_s}"
        )
        m = self.maintenance
        if m is not None:
            if m.kind in ("rolling", "migration"):
                _require(
                    self.is_cluster,
                    "maintenance.kind",
                    f"{m.kind!r} maintenance needs a cluster "
                    "(more than one host, or spare = true)",
                )
            else:
                _require(
                    not self.is_cluster,
                    "maintenance.kind",
                    f"{m.kind!r} maintenance acts on a single host; use "
                    "'rolling' or 'migration' for clusters",
                )
            if m.kind == "migration":
                _require(
                    self.spare,
                    "spare",
                    "migration maintenance needs a spare host (spare = true)",
                )

    @property
    def host_count(self) -> int:
        return sum(host.count for host in self.hosts)

    @property
    def is_cluster(self) -> bool:
        """Whether this spec materializes as a Cluster (vs one RootHammer).

        ``force_cluster`` makes even a single host build as a Cluster —
        fleet shards use it so a one-host shard keeps cluster VM naming
        and RNG streams, and shard partitioning never changes results.
        """
        return self.host_count > 1 or self.spare or self.force_cluster

    @classmethod
    def from_dict(cls, data: dict, where: str = "scenario") -> "ScenarioSpec":
        _check_keys(data, _FIELDS[cls], where)
        for key in ("seed", "warmup_s", "observe_s"):
            _number(data, key, where)
        kwargs = dict(data)
        if "hosts" in kwargs:
            kwargs["hosts"] = tuple(
                HostSpec.from_dict(host, f"{where}.hosts[{i}]")
                for i, host in enumerate(
                    _sub_tables(kwargs["hosts"], f"{where}.hosts")
                )
            )
        if "workloads" in kwargs:
            kwargs["workloads"] = tuple(
                WorkloadSpec.from_dict(w, f"{where}.workloads[{i}]")
                for i, w in enumerate(
                    _sub_tables(kwargs["workloads"], f"{where}.workloads")
                )
            )
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultSpec.from_dict(
                kwargs["faults"], f"{where}.faults"
            )
        if kwargs.get("maintenance") is not None:
            kwargs["maintenance"] = MaintenanceSpec.from_dict(
                kwargs["maintenance"], f"{where}.maintenance"
            )
        if kwargs.get("policy") is not None:
            kwargs["policy"] = PolicySpec.from_dict(
                kwargs["policy"], f"{where}.policy"
            )
        if kwargs.get("slo") is not None:
            kwargs["slo"] = SLOSpec.from_dict(kwargs["slo"], f"{where}.slo")
        return _construct(cls, kwargs, where)

    def to_dict(self) -> dict:
        """A plain-dict form that round-trips through :meth:`from_dict`.

        Field order is the dataclass declaration order, so ``repr`` of the
        result is deterministic — the parallel sweep uses it as
        content-address material for scenario cells.
        """
        out = _as_dict(self)
        out["hosts"] = [host.to_dict() for host in self.hosts]
        out["workloads"] = [w.to_dict() for w in self.workloads]
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        if self.maintenance is not None:
            out["maintenance"] = self.maintenance.to_dict()
        if self.policy is not None:
            out["policy"] = self.policy.to_dict()
        if self.slo is not None:
            out["slo"] = self.slo.to_dict()
        return out


def _as_dict(spec: typing.Any) -> dict:
    """Shallow dataclass -> dict with tuples as lists (TOML-shaped)."""
    out: dict[str, typing.Any] = {}
    for field in dataclasses.fields(spec):
        value = getattr(spec, field.name)
        if isinstance(value, tuple) and all(isinstance(v, str) for v in value):
            value = list(value)
        out[field.name] = value
    return out


_FIELDS: dict[type, frozenset[str]] = {
    cls: frozenset(f.name for f in dataclasses.fields(cls))
    for cls in (
        VMSpec,
        HostSpec,
        WorkloadSpec,
        FaultSpec,
        MaintenanceSpec,
        PolicySpec,
        ScenarioSpec,
    )
}


def load_toml(path: str) -> ScenarioSpec:
    """Load and validate a scenario spec from a TOML file."""
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except FileNotFoundError:
        raise ScenarioError(f"{path}: no such spec file") from None
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError(f"{path}: invalid TOML: {exc}") from None
    return ScenarioSpec.from_dict(data, where=path)
