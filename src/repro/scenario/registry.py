"""Named scenario registry.

Ships a small set of built-in specs (demonstrations that the declarative
layer expresses setups the experiment modules never coded) and lets
users register their own.  ``scenario run <name>`` resolves here first;
anything else is treated as a TOML file path.
"""

from __future__ import annotations

import os

from repro.errors import ScenarioError
from repro.scenario.spec import (
    FaultSpec,
    HostSpec,
    MaintenanceSpec,
    PolicySpec,
    ScenarioSpec,
    VMSpec,
    WorkloadSpec,
    load_toml,
)

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a spec to the registry under its own name."""
    if spec.name in _REGISTRY and not replace:
        raise ScenarioError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get(name: str) -> ScenarioSpec:
    """Look a registered scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"no scenario named {name!r}; known: {', '.join(names()) or '(none)'}"
        ) from None


def resolve(name_or_path: str) -> ScenarioSpec:
    """A registered name, or failing that a TOML spec file path."""
    if name_or_path in _REGISTRY:
        return _REGISTRY[name_or_path]
    if os.path.exists(name_or_path) or name_or_path.endswith(".toml"):
        return load_toml(name_or_path)
    return get(name_or_path)  # raises with the known-names message


# -- built-ins ---------------------------------------------------------------------
#
# Each of these is a setup the hand-written experiment modules never
# expressed: heterogeneous memory under rolling maintenance, a probed
# single host, an aging host racing a periodic schedule, and a cluster
# run by the autonomic control loop instead of a schedule.

register(
    ScenarioSpec(
        name="mixed-fleet-rolling",
        description=(
            "Three hosts each running one 1 GiB and one 4 GiB apache VM, "
            "warm rolling rejuvenation across the cluster"
        ),
        hosts=(
            HostSpec(
                count=3,
                vms=(
                    VMSpec(memory_gib=1.0, services=("apache",)),
                    VMSpec(memory_gib=4.0, services=("apache",)),
                ),
            ),
        ),
        workloads=(WorkloadSpec(kind="httperf", concurrency=2),),
        maintenance=MaintenanceSpec(kind="rolling", strategy="warm", settle_s=10.0),
        warmup_s=40.0,
        observe_s=120.0,
    )
)

register(
    ScenarioSpec(
        name="probed-warm-reboot",
        description=(
            "One host, three ssh VMs watched by ping probers through a "
            "warm VMM reboot"
        ),
        hosts=(HostSpec(vms=(VMSpec(count=3),)),),
        workloads=(WorkloadSpec(kind="prober", service="ssh"),),
        maintenance=MaintenanceSpec(kind="reboot", strategy="warm"),
        warmup_s=5.0,
        observe_s=60.0,
    )
)

register(
    ScenarioSpec(
        name="aging-vs-periodic",
        description=(
            "A leaking VMM raced against a periodic warm rejuvenation "
            "schedule over two simulated days"
        ),
        hosts=(HostSpec(vms=(VMSpec(count=2),)),),
        # 1 MiB/h against the 16 MiB Xen heap: exhaustion lands at ~16 h,
        # but the 12 h warm VMM rejuvenation keeps resetting the clock —
        # the proactive win the paper's §3.2 schedule is designed for.
        faults=FaultSpec(preset="paper-bugs", heap_leak_kib_per_hour=1024.0),
        maintenance=MaintenanceSpec(
            kind="periodic",
            strategy="warm",
            os_interval_s=6 * 3600.0,
            vmm_interval_s=12 * 3600.0,
        ),
        observe_s=2 * 86400.0,
    )
)

register(
    ScenarioSpec(
        name="autonomic-consolidation",
        description=(
            "Two loaded web hosts plus an idle host; the control loop "
            "consolidates the idle VMs away and rejuvenates only the "
            "emptied host"
        ),
        hosts=(
            HostSpec(
                name="web{i}",
                count=2,
                vms=(VMSpec(memory_gib=1.0, services=("apache",)),),
            ),
            HostSpec(name="idle0", vms=(VMSpec(count=2, memory_gib=1.0),)),
        ),
        workloads=(
            WorkloadSpec(kind="httperf", concurrency=4),
            WorkloadSpec(kind="prober", service="apache"),
        ),
        # No maintenance table: the policy decides what to rejuvenate.
        policy=PolicySpec(
            strategy="first-fit-decreasing",
            underload=0.001,
        ),
        warmup_s=40.0,
        observe_s=480.0,
    )
)
