"""Run a built scenario end-to-end and summarize what happened.

:func:`run_scenario` drives the generic timeline every spec describes —
warm-up, optional fault injection, the maintenance schedule, an
observation window — and folds the attached workloads' measurements into
a :class:`ScenarioReport` of plain data (picklable, JSON-friendly), so
the same function backs the ``scenario run`` CLI and the parallel sweep
engine's scenario cells.

Experiments that need bespoke measurement (Figure 9's bucketized
timelines, say) build through :class:`~repro.scenario.builder
.ScenarioBuilder` directly and keep their own analysis; this runner is
the zero-new-code path for scenarios defined purely in TOML.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.aging.policy import TimeBasedRejuvenator
from repro.aging.watchdog import CrashWatchdog, HeapExhaustionCrasher
from repro.control.loop import ControlLoop
from repro.errors import GuestError, VMMError
from repro.obs.slo import evaluate_slo, merge_latency_histogram, outage_intervals
from repro.scenario.builder import AttachedWorkload, BuiltScenario, build_scenario
from repro.scenario.spec import ScenarioSpec
from repro.units import KiB
from repro.workloads.fileread import first_and_second_read


@dataclasses.dataclass
class WorkloadReport:
    """Summary of one attached workload over the whole run."""

    kind: str
    vm: str
    metrics: dict[str, float]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "vm": self.vm, "metrics": dict(self.metrics)}


@dataclasses.dataclass
class ScenarioReport:
    """Plain-data outcome of one scenario run."""

    name: str
    hosts: int
    vms: int
    duration_s: float
    workloads: list[WorkloadReport]
    maintenance: dict[str, typing.Any]
    faults: dict[str, typing.Any]
    metrics: dict[str, list[dict[str, typing.Any]]] = dataclasses.field(
        default_factory=dict
    )
    """Registry snapshot (see :meth:`MetricsRegistry.snapshot`); empty
    unless the run's simulator had metrics enabled (``REPRO_METRICS=1``)."""

    policy: dict[str, typing.Any] = dataclasses.field(default_factory=dict)
    """Control-loop summary (see :meth:`ControlLoop.summary`) including
    the per-decision audit log; empty when no policy was attached."""

    slo: dict[str, typing.Any] = dataclasses.field(default_factory=dict)
    """SLO report (see :func:`repro.obs.slo.evaluate_slo`) over the
    observation window; empty when no ``[slo]`` table was attached."""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "hosts": self.hosts,
            "vms": self.vms,
            "duration_s": self.duration_s,
            "workloads": [w.to_dict() for w in self.workloads],
            "maintenance": dict(self.maintenance),
            "faults": dict(self.faults),
            "metrics": dict(self.metrics),
            "policy": dict(self.policy),
            "slo": dict(self.slo),
        }

    def render(self) -> str:
        """A human-readable summary block."""
        lines = [
            f"scenario {self.name}: {self.hosts} host(s), {self.vms} VM(s), "
            f"{self.duration_s:.1f}s simulated"
        ]
        if self.maintenance:
            pairs = ", ".join(
                f"{key}={value}" for key, value in sorted(self.maintenance.items())
            )
            lines.append(f"  maintenance: {pairs}")
        if self.faults:
            pairs = ", ".join(
                f"{key}={value}" for key, value in sorted(self.faults.items())
            )
            lines.append(f"  faults: {pairs}")
        for workload in self.workloads:
            pairs = ", ".join(
                f"{key}={value:.4g}"
                for key, value in sorted(workload.metrics.items())
            )
            lines.append(f"  {workload.kind} on {workload.vm}: {pairs}")
        if self.metrics:
            series = sum(len(entries) for entries in self.metrics.values())
            lines.append(
                f"  metrics: {len(self.metrics)} name(s), {series} series"
            )
        if self.policy:
            lines.append(
                "  policy {strategy}: {cycles} cycle(s), "
                "{migrations} migration(s), {rejuvenations} "
                "rejuvenation(s), {deferred} deferred".format(**self.policy)
            )
        if self.slo:
            objectives = ", ".join(
                "{kind} {verdict}".format(
                    kind=o["kind"], verdict="ok" if o["passed"] else "VIOLATED"
                )
                for o in self.slo["objectives"]
            )
            lines.append(
                f"  slo {'PASS' if self.slo['passed'] else 'FAIL'}: "
                f"{objectives}"
            )
        return "\n".join(lines)


def _periodic_schedule(
    built: BuiltScenario,
    host,
    horizon: float,
    rejuvenators: list[TimeBasedRejuvenator],
) -> typing.Generator:
    """Drive a host's periodic schedule to ``horizon``, surviving crashes.

    When an injected heap-exhaustion crash lands mid-schedule, a planned
    rejuvenation can find the VMM already dead — or the guests it killed
    not yet rebooted.  The crash watchdog owns recovery, so the schedule
    waits it out and restarts (each restart is a fresh
    :class:`TimeBasedRejuvenator`; ``rejuvenators`` accumulates them so
    the report can total their events) instead of tearing the whole
    scenario down.
    """
    maintenance = built.spec.maintenance
    sim = built.sim
    while sim.now < horizon:
        rejuvenator = TimeBasedRejuvenator(
            host,
            strategy=maintenance.strategy,
            os_interval_s=maintenance.os_interval_s,
            vmm_interval_s=maintenance.vmm_interval_s,
        )
        rejuvenators.append(rejuvenator)
        try:
            yield from rejuvenator.run(horizon)
            return
        except (VMMError, GuestError):
            yield sim.timeout(60.0)  # give the watchdog room to recover


def _measure(built: BuiltScenario, attached: AttachedWorkload) -> WorkloadReport:
    spec = attached.spec
    sim = built.sim
    if spec.kind == "httperf" and spec.mode == "fluid":
        client = attached.client
        metrics = {
            "requests": client.total_completed,
            "failures": client.failures,
            "mean_rate": client.mean_rate(),
            "downtime_s": client.downtime_s,
            "availability": client.availability(),
        }
    elif spec.kind == "httperf":
        client = attached.client
        metrics = {
            "requests": float(len(client.completion_times)),
            "failures": float(client.failures),
            "mean_rate": client.mean_rate(),
        }
    elif spec.kind == "prober":
        prober = attached.client
        metrics = {
            "outages": float(len(prober.outages)),
            "total_downtime_s": prober.total_downtime(),
            "longest_outage_s": prober.longest_outage(),
        }
    else:  # fileread: measure a first/second read pair at report time
        guest = built.guest(attached.vm_name)
        first, second = sim.run(
            sim.spawn(first_and_second_read(guest, attached.paths[0]))
        )
        metrics = {
            "first_read_bps": first.throughput,
            "second_read_bps": second.throughput,
        }
    return WorkloadReport(spec.kind, attached.vm_name, metrics)


def run_scenario(
    spec: ScenarioSpec, profile: typing.Any = None
) -> ScenarioReport:
    """Build ``spec``, drive its timeline, and summarize the run."""
    built = build_scenario(spec, profile=profile)
    sim = built.sim
    run_start = sim.now
    if spec.warmup_s > 0:
        sim.run(until=sim.now + spec.warmup_s)

    horizon = sim.now + spec.observe_s
    fault_report: dict[str, typing.Any] = {}
    crashers: list[HeapExhaustionCrasher] = []
    watchdogs: list[CrashWatchdog] = []
    if (
        spec.faults is not None
        and spec.faults.heap_leak_kib_per_hour > 0
        and spec.observe_s > 0
    ):
        for host in built.hosts:
            crasher = HeapExhaustionCrasher(
                host,
                leak_bytes_per_hour=int(spec.faults.heap_leak_kib_per_hour * KiB),
            )
            watchdog = CrashWatchdog(host)
            sim.spawn(crasher.run(horizon), name=f"crasher:{host.name}")
            sim.spawn(watchdog.run(horizon), name=f"watchdog:{host.name}")
            crashers.append(crasher)
            watchdogs.append(watchdog)

    control_loop: ControlLoop | None = None
    if spec.policy is not None and spec.observe_s > 0:
        migrate_fn = None
        if built.cluster is not None:
            # Dependency inversion: the control layer sits below cluster,
            # so the migration mechanism is injected as a callable.
            from repro.cluster.migration import MigrationSpec, live_migrate

            hosts_by_name = {host.name: host for host in built.hosts}
            migration = MigrationSpec()

            def migrate_fn(source: str, target: str, vm: str):
                yield from live_migrate(
                    hosts_by_name[source], hosts_by_name[target], vm, migration
                )

        control_loop = ControlLoop(
            sim,
            built.hosts,
            config=spec.policy.to_control_config(),
            migrate=migrate_fn,
        )
        sim.spawn(control_loop.run(horizon), name="control")

    maintenance_report: dict[str, typing.Any] = {}
    maintenance = spec.maintenance
    if maintenance is not None:
        maintenance_report["kind"] = maintenance.kind
        maintenance_report["strategy"] = maintenance.strategy
        if maintenance.kind == "reboot":
            report = built.controller.rejuvenate(maintenance.strategy)
            maintenance_report["reboot_total_s"] = report.total
            maintenance_report["vmm_reboot_s"] = report.vmm_reboot_duration()
        elif maintenance.kind == "periodic":
            rejuvenators: list[TimeBasedRejuvenator] = []
            for host in built.hosts:
                sim.spawn(
                    _periodic_schedule(built, host, horizon, rejuvenators),
                    name=f"rejuvenate:{host.name}",
                )
        else:  # rolling / migration (spec validation limits the kinds)
            rejuvenator = built.make_rejuvenator()
            started = sim.now
            sim.run(sim.spawn(rejuvenator.run()))
            maintenance_report["maintenance_s"] = sim.now - started
            maintenance_report["hosts_rejuvenated"] = len(
                getattr(rejuvenator, "completed", [])
            )

    if sim.now < horizon:
        sim.run(until=horizon)
    if maintenance is not None and maintenance.kind == "periodic":
        maintenance_report["os_rejuvenations"] = sum(
            r.count("os") for r in rejuvenators
        )
        maintenance_report["vmm_rejuvenations"] = sum(
            r.count("vmm") for r in rejuvenators
        )
    if crashers:
        fault_report["crashes"] = sum(len(c.crashes) for c in crashers)
        fault_report["recoveries"] = sum(len(w.recoveries) for w in watchdogs)

    built.stop_workloads()
    reports = [_measure(built, attached) for attached in built.workloads]
    slo_report: dict[str, typing.Any] = {}
    window_start = run_start + spec.warmup_s
    if spec.slo is not None and sim.now > window_start:
        snapshot = sim.metrics.snapshot() if sim.metrics.enabled else {}
        slo_report = evaluate_slo(
            spec.slo,
            start=window_start,
            end=sim.now,
            rows=[report.metrics for report in reports],
            outages=outage_intervals(
                [
                    {"time": r.time, "kind": r.kind, **r.fields}
                    for r in sim.trace.select("service.")
                ],
                window_start,
                sim.now,
            ),
            latency=merge_latency_histogram(
                snapshot.get("httperf.request_latency", ())
            ),
        )
    return ScenarioReport(
        name=spec.name,
        hosts=len(built.hosts),
        vms=sum(len(host.vm_specs) for host in built.hosts),
        duration_s=sim.now - run_start,
        workloads=reports,
        maintenance=maintenance_report,
        faults=fault_report,
        metrics=sim.metrics.snapshot() if sim.metrics.enabled else {},
        policy=control_loop.summary() if control_loop is not None else {},
        slo=slo_report,
    )


def run_scenario_cell(spec_data: dict) -> dict:
    """Parallel-sweep cell entry point: dict spec in, plain payload out.

    The sweep engine content-addresses cells by their parameters, so the
    spec travels as its canonical dict form (see
    :meth:`ScenarioSpec.to_dict`) rather than as an object.
    """
    spec = ScenarioSpec.from_dict(spec_data)
    return run_scenario(spec).to_dict()
