"""Command line for the scenario layer.

Exposed both as ``python -m repro.scenario ...`` and through the
experiments CLI as ``python -m repro.experiments.cli scenario ...``::

    scenario list                 # registered scenarios
    scenario validate SPEC...     # schema-check TOML files
    scenario build NAME|SPEC...   # dry-build: materialize the stack
    scenario run NAME|SPEC        # full run, prints the report
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import typing

from repro.errors import ScenarioError
from repro.scenario import registry
from repro.scenario.builder import build_scenario
from repro.scenario.runner import run_scenario
from repro.scenario.spec import PolicySpec, load_toml


def _cmd_list(args: argparse.Namespace) -> int:
    for name in registry.names():
        spec = registry.get(name)
        print(f"{name:24s} {spec.description}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    for path in args.specs:
        spec = load_toml(path)
        print(f"{path}: ok ({spec.name}: {spec.host_count} host(s))")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    for target in args.specs:
        spec = registry.resolve(target)
        built = build_scenario(spec)
        vms = sum(len(host.vm_specs) for host in built.hosts)
        print(
            f"{target}: built {spec.name!r} — {len(built.hosts)} host(s), "
            f"{vms} VM(s), {len(built.workloads)} workload(s), "
            f"up at t={built.sim.now:.1f}s"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = registry.resolve(args.spec)
    if args.policy:
        policy = (
            dataclasses.replace(spec.policy, strategy=args.policy)
            if spec.policy is not None
            else PolicySpec(strategy=args.policy)
        )
        spec = dataclasses.replace(spec, policy=policy)
    if args.trace_out:
        import os

        from repro.analysis.obs import capture_simulators, write_perfetto

        previous = os.environ.get("REPRO_METRICS")
        os.environ["REPRO_METRICS"] = "1"  # the builder owns Simulator creation
        try:
            with capture_simulators() as sims:
                report = run_scenario(spec)
        finally:
            if previous is None:
                del os.environ["REPRO_METRICS"]
            else:
                os.environ["REPRO_METRICS"] = previous
        for sim in sims:
            print(f"wrote {write_perfetto(args.trace_out, sim.trace, sim.metrics)}")
    else:
        report = run_scenario(spec)
    print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description="Declarative scenario specs: list, validate, build, run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered scenarios").set_defaults(
        fn=_cmd_list
    )

    validate = sub.add_parser("validate", help="schema-check TOML spec files")
    validate.add_argument("specs", nargs="+", metavar="SPEC.toml")
    validate.set_defaults(fn=_cmd_validate)

    build = sub.add_parser(
        "build", help="dry-build: materialize and start each stack"
    )
    build.add_argument("specs", nargs="+", metavar="NAME|SPEC.toml")
    build.set_defaults(fn=_cmd_build)

    run = sub.add_parser("run", help="run one scenario end-to-end")
    run.add_argument("spec", metavar="NAME|SPEC.toml")
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Perfetto trace (spans + metric counter tracks) of "
        "the run; implies metrics collection (REPRO_METRICS=1)",
    )
    run.add_argument(
        "--policy",
        metavar="STRATEGY",
        default=None,
        help="enable (or override) the autonomic control loop with this "
        "placement strategy",
    )
    run.set_defaults(fn=_cmd_run)
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
