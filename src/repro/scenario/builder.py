"""Materialize a :class:`~repro.scenario.spec.ScenarioSpec` into a stack.

:class:`ScenarioBuilder` is the one place in the repository that turns a
declarative spec into running simulation objects: a single-host
:class:`~repro.core.RootHammer` or a multi-host
:class:`~repro.cluster.Cluster`, with the fleet installed, the bring-up
run, workload clients attached and fault/maintenance machinery ready.
Experiment modules, the parallel sweep engine and the ``scenario run``
CLI all construct their testbeds through it, so serial, pooled and cached
runs of the same spec are bit-identical by construction.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster import Cluster, MigrationRejuvenator, RollingRejuvenator
from repro.config import TimingProfile, paper_testbed, small_testbed
from repro.core import RootHammer
from repro.core.host import Host
from repro.core.host import VMSpec as CoreVMSpec
from repro.errors import ReproError, ScenarioError
from repro.guest.kernel import GuestKernel
from repro.scenario.spec import HostSpec, ScenarioSpec, WorkloadSpec
from repro.simkernel import Simulator
from repro.workloads.httperf import FluidCoordinator, FluidHttperf, Httperf
from repro.workloads.prober import PingProber

STANDALONE_VM_TEMPLATE = "vm{i:02d}"
"""Default VM name on a standalone host — the experiments' ``vm00``.."""

CLUSTER_VM_TEMPLATE = "{host}-vm{i}"
"""Default VM name in a cluster — Figure 9's ``host0-vm0``.."""

HOST_TEMPLATE = "host{i}"


def resolve_profile(name: str) -> TimingProfile:
    """The calibrated :class:`TimingProfile` a spec names."""
    if name == "paper":
        return paper_testbed()
    if name == "small":
        return small_testbed()
    raise ScenarioError(f"unknown profile {name!r}")


@dataclasses.dataclass
class AttachedWorkload:
    """One client attached to one VM by the builder."""

    spec: WorkloadSpec
    host: Host
    vm_name: str
    paths: list[str]
    client: "Httperf | FluidHttperf | PingProber | None"
    """The started client process owner; ``None`` for ``fileread`` (the
    runner drives timed reads imperatively)."""

    def stop(self) -> None:
        if self.client is not None:
            self.client.stop()


@dataclasses.dataclass
class BuiltScenario:
    """A started stack plus handles to everything a runner needs."""

    spec: ScenarioSpec
    sim: Simulator
    controller: RootHammer | None
    cluster: Cluster | None
    workloads: list[AttachedWorkload]
    fluid: FluidCoordinator | None = None
    """The fluid-workload tick driver; created on first fluid attach."""

    @property
    def hosts(self) -> list[Host]:
        if self.cluster is not None:
            return list(self.cluster.hosts)
        assert_controller = self.controller
        if assert_controller is None:  # pragma: no cover - builder invariant
            raise ScenarioError("built scenario has neither controller nor cluster")
        return [assert_controller.host]

    def host_of(self, vm_name: str) -> Host:
        """The host a named VM is installed on."""
        for host in self.hosts:
            if vm_name in host.vm_specs:
                return host
        raise ScenarioError(f"no VM named {vm_name!r} in scenario {self.spec.name!r}")

    def guest(self, vm_name: str) -> GuestKernel:
        """The named VM's current guest image."""
        return self.host_of(vm_name).guest(vm_name)

    def make_rejuvenator(self) -> "RollingRejuvenator | MigrationRejuvenator":
        """The cluster maintenance driver the spec asks for."""
        maintenance = self.spec.maintenance
        if maintenance is None or maintenance.kind not in ("rolling", "migration"):
            raise ScenarioError(
                f"scenario {self.spec.name!r} has no cluster maintenance"
            )
        if self.cluster is None:  # pragma: no cover - spec validation bars this
            raise ScenarioError("cluster maintenance on a single-host scenario")
        if maintenance.kind == "migration":
            return MigrationRejuvenator(self.cluster, strategy=maintenance.strategy)
        return RollingRejuvenator(
            self.cluster,
            strategy=maintenance.strategy,
            settle_s=maintenance.settle_s,
        )

    def stop_workloads(self) -> None:
        """Stop every attached client (pending requests are abandoned)."""
        for workload in self.workloads:
            workload.stop()


class ScenarioBuilder:
    """Builds the stack a spec describes; see the module docstring.

    ``profile`` overrides the spec's named profile with an explicit
    :class:`TimingProfile` instance (the experiment helpers use this to
    forward caller-supplied profiles without widening the spec schema).
    ``backend`` selects the scheduler backend for the built simulator
    (name, class, or instance — see
    :func:`repro.simkernel.backends.resolve_backend`); ``None`` defers to
    ``REPRO_KERNEL_BACKEND``, so whole experiment sweeps switch backends
    via the environment without touching specs.
    ``metrics`` forces the built simulator's metrics registry on (or off)
    regardless of what the spec implies — fleet shards use it when
    telemetry collection is requested without a policy; ``None`` keeps
    the spec-driven default (on when a ``[policy]`` or ``[slo]`` table
    is attached, else the ``REPRO_METRICS`` environment default).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        profile: TimingProfile | None = None,
        backend: typing.Any = None,
        metrics: bool | None = None,
    ) -> None:
        self.spec = spec
        self.profile = profile if profile is not None else resolve_profile(
            spec.profile
        )
        self.backend = backend
        self.metrics = metrics

    def _metrics_mode(self) -> bool | None:
        """The registry mode for the built simulator (see class docs)."""
        if self.metrics is not None:
            return self.metrics
        if self.spec.policy is not None or self.spec.slo is not None:
            # A control policy needs the metric series its detectors
            # read; an SLO needs the latency histograms it prices.
            return True
        return None

    # -- fleet expansion ---------------------------------------------------------

    def _expand_fleet(
        self, host_spec: HostSpec, host_name: str, template: str
    ) -> list[CoreVMSpec]:
        """The concrete per-VM specs for one host, names resolved."""
        fleet: list[CoreVMSpec] = []
        index = 0
        for position, vm in enumerate(host_spec.vms):
            name_template = vm.name if vm.name is not None else template
            if vm.count > 1 and "{i" not in name_template:
                raise ScenarioError(
                    f"vms[{position}]: name {name_template!r} has no "
                    "'{i}' placeholder but count is "
                    f"{vm.count}; the copies would collide"
                )
            for _ in range(vm.count):
                fleet.append(
                    CoreVMSpec(
                        name_template.format(i=index, host=host_name),
                        memory_bytes=vm.memory_bytes,
                        services=vm.services,
                        vcpus=vm.vcpus,
                        driver_domain=vm.driver_domain,
                        cpu_weight=vm.cpu_weight,
                        cpu_cap_cores=vm.cpu_cap_cores,
                    )
                )
                index += 1
        return fleet

    def _host_names(self) -> list[str]:
        """Every host name the spec expands to, in build order."""
        names: list[str] = []
        index = 0
        standalone = not self.spec.is_cluster
        for host_spec in self.spec.hosts:
            template = host_spec.name
            if template is None:
                template = "server" if standalone else HOST_TEMPLATE
            if host_spec.count > 1 and "{i" not in template:
                raise ScenarioError(
                    f"host name {template!r} has no '{{i}}' placeholder "
                    f"but count is {host_spec.count}; the copies would collide"
                )
            for _ in range(host_spec.count):
                names.append(template.format(i=index))
                index += 1
        return names

    # -- materialization -------------------------------------------------------------

    def build(self) -> BuiltScenario:
        """Materialize and start the stack, then attach the workloads."""
        spec = self.spec
        faults = spec.faults.to_aging_faults() if spec.faults is not None else None
        if spec.is_cluster:
            built = self._build_cluster(faults)
        else:
            built = self._build_standalone(faults)
        for workload in spec.workloads:
            self._attach(built, workload)
        return built

    def _build_standalone(self, faults: typing.Any) -> BuiltScenario:
        (host_name,) = self._host_names()
        fleet = self._expand_fleet(
            self.spec.hosts[0], host_name, STANDALONE_VM_TEMPLATE
        )
        controller = RootHammer.started(
            vms=fleet,
            profile=self.profile,
            seed=self.spec.seed,
            faults=faults,
            host_name=host_name,
            backend=self.backend,
            metrics=self._metrics_mode(),
        )
        return BuiltScenario(
            spec=self.spec,
            sim=controller.sim,
            controller=controller,
            cluster=None,
            workloads=[],
        )

    def _build_cluster(self, faults: typing.Any) -> BuiltScenario:
        names = self._host_names()
        layouts: list[list[CoreVMSpec]] = []
        cursor = 0
        for host_spec in self.spec.hosts:
            for _ in range(host_spec.count):
                layouts.append(
                    self._expand_fleet(
                        host_spec, names[cursor], CLUSTER_VM_TEMPLATE
                    )
                )
                cursor += 1
        sim = Simulator(
            backend=self.backend,
            metrics=self._metrics_mode(),
        )
        cluster = Cluster(
            sim,
            size=len(layouts),
            vm_layout=layouts,
            host_names=names,
            profile=self.profile,
            spare=self.spec.spare,
            seed=self.spec.seed,
            faults=faults,
        )
        sim.run(sim.spawn(cluster.start()))
        return BuiltScenario(
            spec=self.spec,
            sim=sim,
            controller=None,
            cluster=cluster,
            workloads=[],
        )

    # -- workload attachment ----------------------------------------------------------

    def _targets(
        self, built: BuiltScenario, workload: WorkloadSpec
    ) -> list[tuple[Host, str]]:
        """The (host, vm) pairs a workload spec attaches to, in build order."""
        if workload.vm is not None:
            return [(built.host_of(workload.vm), workload.vm)]
        targets = [
            (host, vm_spec.name)
            for host in built.hosts
            for vm_spec in host.vm_specs.values()
            if workload.service in vm_spec.services
        ]
        if not targets:
            raise ScenarioError(
                f"workload {workload.kind!r} matches no VM: nothing runs "
                f"{workload.service!r} and no vm was named"
            )
        return targets

    def _service_name(
        self, built: BuiltScenario, vm_name: str, kind: str
    ) -> str:
        """The concrete service *name* for a spec's service *kind*.

        Specs name service kinds (``ssh``/``apache``/``jboss``, matching
        :data:`~repro.guest.services.SERVICE_FACTORIES`), but lookups and
        the cluster's replica scan match on instance names (``sshd``).
        Names are deterministic per kind, so resolving once at attach
        time stays valid across reboots.
        """
        for candidate in built.guest(vm_name).services:
            if candidate.kind == kind or candidate.name == kind:
                return candidate.name
        raise ScenarioError(f"VM {vm_name!r} runs no {kind!r} service")

    def _lookup(
        self, built: BuiltScenario, host: Host, vm_name: str, service: str
    ) -> typing.Callable[[], typing.Any]:
        """A per-request service resolver for one VM.

        Cluster resolution is memoized while the hit stays reachable —
        after a cold reboot the service object is new, after a migration
        it lives on another host (possibly the spare), and a full cluster
        scan per request would dominate the whole experiment.
        """
        cluster = built.cluster
        if cluster is None:

            def lookup() -> typing.Any:
                return host.guest(vm_name).service(service)

            return lookup

        cache: list[typing.Any] = [None]

        def cluster_lookup() -> typing.Any:
            cached = cache[0]
            if (
                cached is not None
                and cached.reachable
                and cached.guest.name == vm_name
            ):
                return cached
            for candidate in cluster.services(service):
                if candidate.guest is not None and candidate.guest.name == vm_name:
                    cache[0] = candidate
                    return candidate
            raise ReproError(f"{vm_name} has no live {service} replica")

        return cluster_lookup

    def _attach(self, built: BuiltScenario, workload: WorkloadSpec) -> None:
        sim = built.sim
        for host, vm_name in self._targets(built, workload):
            guest = built.guest(vm_name)
            directory = workload.directory.format(host=host.name, vm=vm_name)
            if workload.kind == "fileread":
                path = workload.path.format(host=host.name, vm=vm_name)
                guest.filesystem.create(path, workload.file_bytes)
                if workload.warm_cache:
                    sim.run(sim.spawn(guest.read_file(path)))
                built.workloads.append(
                    AttachedWorkload(workload, host, vm_name, [path], None)
                )
                continue
            service_name = self._service_name(built, vm_name, workload.service)
            lookup = self._lookup(built, host, vm_name, service_name)
            if workload.kind == "prober":
                prober = PingProber(
                    sim,
                    lookup,
                    interval_s=workload.interval_s,
                    name=f"probe-{vm_name}",
                ).start()
                built.workloads.append(
                    AttachedWorkload(workload, host, vm_name, [], prober)
                )
                continue
            paths = guest.filesystem.create_many(
                directory, workload.files, workload.file_bytes
            )
            if workload.warm_cache:
                sim.run(sim.spawn(guest.warm_file_cache(paths)))
            client_name = (
                f"lb-{host.name}" if built.cluster is not None
                else f"httperf-{vm_name}"
            )
            client: Httperf | FluidHttperf
            if workload.mode == "fluid":
                if built.fluid is None:
                    built.fluid = FluidCoordinator(sim, tick_s=workload.tick_s)
                elif built.fluid.tick_s != workload.tick_s:
                    raise ScenarioError(
                        "all fluid workloads in one scenario must share "
                        f"tick_s; got {built.fluid.tick_s} and "
                        f"{workload.tick_s}"
                    )
                client = FluidHttperf(
                    built.fluid,
                    lookup,
                    paths,
                    sessions=workload.sessions,
                    name=client_name,
                )
            else:
                client = Httperf(
                    sim,
                    lookup,
                    paths,
                    concurrency=workload.concurrency,
                    name=client_name,
                ).start()
            built.workloads.append(
                AttachedWorkload(workload, host, vm_name, paths, client)
            )


def build_scenario(
    spec: ScenarioSpec, profile: TimingProfile | None = None
) -> BuiltScenario:
    """Convenience wrapper: ``ScenarioBuilder(spec, profile).build()``."""
    return ScenarioBuilder(spec, profile=profile).build()
