"""``python -m repro.scenario`` entry point."""

import sys

from repro.scenario.cli import main

sys.exit(main())
