"""Declarative scenario layer: one stack-construction path.

``repro.scenario`` separates *what stack to build* from *how the
mechanisms run*: a :class:`ScenarioSpec` (hosts, VM fleets, workloads,
faults, maintenance) is plain data — buildable from dicts or TOML —
and :class:`ScenarioBuilder` is the single place that materializes it
into a started :class:`~repro.core.RootHammer` or
:class:`~repro.cluster.Cluster`.  Every experiment module constructs its
testbed through this layer, and arbitrary new scenarios run from a spec
file with zero new code (``python -m repro.scenario run <spec>``).
"""

from repro.scenario.builder import (
    AttachedWorkload,
    BuiltScenario,
    ScenarioBuilder,
    build_scenario,
)
from repro.scenario.registry import get, names, register, resolve
from repro.scenario.runner import ScenarioReport, WorkloadReport, run_scenario
from repro.scenario.spec import (
    FaultSpec,
    HostSpec,
    MaintenanceSpec,
    ScenarioSpec,
    VMSpec,
    WorkloadSpec,
    load_toml,
)

__all__ = [
    "AttachedWorkload",
    "BuiltScenario",
    "FaultSpec",
    "HostSpec",
    "MaintenanceSpec",
    "ScenarioBuilder",
    "ScenarioReport",
    "ScenarioSpec",
    "VMSpec",
    "WorkloadReport",
    "WorkloadSpec",
    "build_scenario",
    "get",
    "load_toml",
    "names",
    "register",
    "resolve",
    "run_scenario",
]
