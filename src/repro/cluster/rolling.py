"""Cluster-wide rejuvenation schemes (§6).

Three ways to rejuvenate every VMM in a cluster:

* :class:`RollingRejuvenator` with the **warm** strategy — each host drops
  out of rotation for ~42 s; no extra hardware.
* The same with the **cold** strategy — each host is out for minutes and
  serves degraded (cache-cold) for a while after returning.
* :class:`MigrationRejuvenator` — a dedicated spare host: evacuate a host
  by live migration, reboot it empty, migrate back, repeat.  Zero guest
  downtime, but one host's capacity is permanently reserved and each
  evacuation takes ~17 minutes of degraded source performance at 11 GB
  per host.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.cluster import Cluster
from repro.cluster.migration import MigrationSpec, live_migrate, migrate_all
from repro.control.planner import (
    FleetOrderStrategy,
    PlacementStrategy,
    view_of_hosts,
)
from repro.core.strategies import RebootStrategy
from repro.errors import ClusterError


@dataclasses.dataclass(frozen=True)
class HostRejuvenation:
    """One host's rejuvenation as performed by a scheme."""

    host: str
    started: float
    finished: float

    @property
    def duration(self) -> float:
        return self.finished - self.started


class RollingRejuvenator:
    """Reboot each host's VMM in turn with a given strategy."""

    def __init__(
        self,
        cluster: Cluster,
        strategy: "str | RebootStrategy" = RebootStrategy.WARM,
        settle_s: float = 5.0,
        placement: PlacementStrategy | None = None,
    ) -> None:
        if settle_s < 0:
            raise ClusterError("settle time must be >= 0")
        self.cluster = cluster
        self.strategy = (
            RebootStrategy(strategy) if isinstance(strategy, str) else strategy
        )
        self.settle_s = settle_s
        self.placement = (
            placement if placement is not None else FleetOrderStrategy()
        )
        self.completed: list[HostRejuvenation] = []

    def run(self) -> typing.Generator:
        """Rejuvenate every host sequentially (a process).

        Host order comes from the placement strategy; the default is the
        historical fleet order, bit-identical to the pre-strategy code.
        """
        sim = self.cluster.sim
        order = self.placement.rejuvenation_order(
            view_of_hosts(self.cluster.hosts)
        )
        with sim.spans.span(
            "cluster.rolling", actor="cluster", detail=self.strategy.value
        ):
            for name in order:
                host = self.cluster.host(name)
                started = sim.now
                # On the host's own actor track so the strategy's "reboot"
                # span nests under it implicitly.
                with sim.spans.span(
                    "cluster.host",
                    actor=host.name,
                    detail=self.strategy.value,
                    parent=sim.spans.current("cluster"),
                ):
                    yield from host.reboot(self.strategy)
                self.completed.append(
                    HostRejuvenation(host.name, started, sim.now)
                )
                if self.settle_s:
                    yield sim.timeout(self.settle_s)
        return self.completed


class MigrationRejuvenator:
    """Evacuate-to-spare rejuvenation using live migration."""

    def __init__(
        self,
        cluster: Cluster,
        strategy: "str | RebootStrategy" = RebootStrategy.COLD,
        migration: MigrationSpec | None = None,
    ) -> None:
        if cluster.spare is None:
            raise ClusterError(
                "migration-based rejuvenation needs a spare host "
                "(Cluster(spare=True))"
            )
        self.cluster = cluster
        self.strategy = (
            RebootStrategy(strategy) if isinstance(strategy, str) else strategy
        )
        self.migration = migration if migration is not None else MigrationSpec()
        self.completed: list[HostRejuvenation] = []

    def run(self) -> typing.Generator:
        """For each host: evacuate, reboot empty, repopulate (a process)."""
        sim = self.cluster.sim
        spare = self.cluster.spare
        if spare is None:  # guarded in __init__; re-checked for -O safety
            raise ClusterError("spare host disappeared before rejuvenation")
        with sim.spans.span(
            "cluster.migration", actor="cluster", detail=self.strategy.value
        ):
            for host in self.cluster.hosts:
                started = sim.now
                with sim.spans.span(
                    "cluster.host",
                    actor=host.name,
                    detail=self.strategy.value,
                    parent=sim.spans.current("cluster"),
                ):
                    names = yield from migrate_all(host, spare, self.migration)
                    yield from host.reboot(self.strategy)
                    for name in names:
                        yield from live_migrate(
                            spare, host, name, self.migration
                        )
                self.completed.append(
                    HostRejuvenation(host.name, started, sim.now)
                )
        return self.completed
