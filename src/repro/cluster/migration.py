"""Live migration of VMs between hosts (Clark et al., the paper's [8]).

Pre-copy migration: transfer the whole memory image while the VM runs,
then iteratively re-send pages dirtied during the previous round, and
finally stop the VM for a brief stop-and-copy of the residue.  §6 uses
two published observations to reason about migration as an alternative to
the warm-VM reboot:

* a single 800 MB VM took **72 s** to migrate — an effective ~11 MB/s,
  far below gigabit line rate (the migration daemon rate-limits to bound
  its interference), which is why migrating 11 GB takes ~17 minutes;
* Apache throughput degraded **12 %** on the source host during
  migration.

Both are first-class parameters of :class:`MigrationSpec`, defaulting to
those published values.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.host import Host
from repro.errors import MigrationError
from repro.units import MiB
from repro.vmm.domain import DomainState


@dataclasses.dataclass(frozen=True)
class MigrationSpec:
    """Tunables of the pre-copy algorithm."""

    rate_bytes_per_s: float = 11.4 * MiB
    """Effective transfer rate (800 MB / 72 s, per Clark et al.)."""

    dirty_ratio: float = 0.12
    """Fraction of transferred memory re-dirtied per pre-copy round."""

    max_rounds: int = 4
    """Pre-copy rounds before stop-and-copy."""

    source_degradation: float = 0.88
    """Source-host NIC factor during migration (the 12 % Apache hit)."""

    stop_copy_downtime_s: float = 0.165
    """Service downtime during the final stop-and-copy."""

    def __post_init__(self) -> None:
        if self.rate_bytes_per_s <= 0:
            raise MigrationError("migration rate must be positive")
        if not 0 <= self.dirty_ratio < 1:
            raise MigrationError("dirty ratio must be in [0, 1)")
        if self.max_rounds < 1:
            raise MigrationError("need at least one pre-copy round")
        if not 0 < self.source_degradation <= 1:
            raise MigrationError("source degradation must be in (0, 1]")
        if self.stop_copy_downtime_s < 0:
            raise MigrationError("stop-and-copy downtime must be >= 0")

    def total_transfer_bytes(self, memory_bytes: int) -> int:
        """Image + all pre-copy residues."""
        total = 0.0
        residue = float(memory_bytes)
        for _ in range(self.max_rounds):
            total += residue
            residue *= self.dirty_ratio
        return int(total + residue)

    def expected_duration(self, memory_bytes: int) -> float:
        """Analytic end-to-end migration time for one VM."""
        return (
            self.total_transfer_bytes(memory_bytes) / self.rate_bytes_per_s
            + self.stop_copy_downtime_s
        )


def live_migrate(
    source: Host,
    destination: Host,
    name: str,
    spec: MigrationSpec | None = None,
) -> typing.Generator:
    """Migrate VM ``name`` from ``source`` to ``destination`` (a process).

    The guest image object moves wholesale — memory, page cache, running
    services — with only the stop-and-copy gap visible to clients.
    Assumes shared storage for the virtual disk, as the paper's cluster
    discussion (and Xen live migration itself) does.
    """
    spec = spec if spec is not None else MigrationSpec()
    src_vmm = source.require_vmm()
    dst_vmm = destination.require_vmm()
    domain = src_vmm.domain(name)
    domain.require_state(DomainState.RUNNING)
    guest = domain.guest
    if guest is None:
        raise MigrationError(f"domain {name!r} has no guest image to migrate")
    vm_spec = source.vm_specs.get(name)
    if vm_spec is None:
        raise MigrationError(f"no VMSpec for {name!r} on {source.name}")
    sim = source.sim
    spans = sim.spans
    # Own actor track (the migrating domain); causal parent is whatever
    # cluster maintenance is driving the source host, when any.
    with spans.span(
        "migration.vm",
        actor=name,
        detail=f"{source.name}->{destination.name}",
        parent=spans.current(source.name),
    ):
        sim.trace.record(
            "migration.start", domain=name, source=source.name,
            destination=destination.name,
        )
        source.machine.nic.set_degradation(spec.source_degradation)
        try:
            # Pre-copy rounds: the VM keeps running and serving.
            residue = float(domain.memory_bytes)
            for _ in range(spec.max_rounds):
                yield sim.timeout(residue / spec.rate_bytes_per_s)
                residue *= spec.dirty_ratio
            # Stop-and-copy: the only client-visible downtime.
            for service in guest.services:
                if service.is_up:
                    sim.trace.record(
                        "service.down", service=service.name,
                        service_kind=service.kind, domain=name,
                        reason="migration",
                    )
            yield sim.timeout(
                residue / spec.rate_bytes_per_s + spec.stop_copy_downtime_s
            )
            # Rebuild on the destination and hand over the live image,
            # including the copied memory contents (sentinels travel too).
            tokens = src_vmm.collect_domain_tokens(domain)
            new_domain = yield from dst_vmm.create_domain(
                name, domain.memory_bytes, vcpus=domain.vcpus
            )
            new_domain.execution_context = dict(domain.execution_context)
            dst_vmm.write_domain_tokens(new_domain, tokens)
            # Source-side ring grants die with the source domain; fresh
            # ones are established against the destination's backends.
            guest._grant_refs.clear()
            guest.rebind(dst_vmm, new_domain)
            guest.establish_grants()
            destination.vm_specs[name] = vm_spec
            destination.machine.disk_store[f"fs:{name}"] = guest.filesystem
            del source.vm_specs[name]
            # Tear down the source copy.
            src_vmm.destroy_domain(name, scrub=True)
            for service in guest.services:
                if service.is_up:
                    sim.trace.record(
                        "service.up", service=service.name,
                        service_kind=service.kind, domain=name,
                        reason="migration",
                    )
        finally:
            source.machine.nic.clear_degradation()
        sim.trace.record(
            "migration.done", domain=name, source=source.name,
            destination=destination.name,
        )
    return guest


def migrate_all(
    source: Host, destination: Host, spec: MigrationSpec | None = None
) -> typing.Generator:
    """Sequentially migrate every domU off ``source`` (evacuation)."""
    names = [d.name for d in source.require_vmm().domus]
    for name in names:
        yield from live_migrate(source, destination, name, spec)
    return names
