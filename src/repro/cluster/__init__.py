"""Cluster environment: load balancing, live migration, rolling rejuvenation.

The §6 analysis: how the warm-VM reboot compares, at cluster level, to
cold reboots and to live-migration-based maintenance with a spare host.
"""

from repro.cluster.cluster import Cluster, LoadBalancer
from repro.cluster.planner import (
    CampaignResult,
    MaintenancePlan,
    MaintenancePlanner,
)
from repro.cluster.migration import (
    MigrationSpec,
    live_migrate,
    migrate_all,
)
from repro.cluster.rolling import (
    HostRejuvenation,
    MigrationRejuvenator,
    RollingRejuvenator,
)

__all__ = [
    "CampaignResult",
    "Cluster",
    "MaintenancePlan",
    "MaintenancePlanner",
    "HostRejuvenation",
    "LoadBalancer",
    "MigrationRejuvenator",
    "MigrationSpec",
    "RollingRejuvenator",
    "live_migrate",
    "migrate_all",
]
