"""Maintenance-window planning for cluster-wide rejuvenation (§6).

Given a cluster, an SLA (minimum live replicas), and a reboot strategy's
measured per-host cost, the planner answers the operator's questions
before anything reboots: how many hosts can be taken down concurrently,
how long the whole campaign takes, and what the capacity timeline looks
like.  It then executes the plan (waves of concurrent reboots) and
reports plan-vs-actual.

Host ordering is delegated to a pluggable
:class:`repro.control.PlacementStrategy`: the default
:class:`~repro.control.FleetOrderStrategy` reproduces the historical
fleet-order campaign bit-identically, while e.g. ``aging-aware`` walks
the most-aged hosts first.  Wave chunking itself is the shared
:func:`repro.control.sla_waves` helper.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.cluster import Cluster
from repro.control.planner import (
    FleetOrderStrategy,
    PlacementStrategy,
    sla_waves,
    view_of_hosts,
)
from repro.core.strategies import RebootStrategy
from repro.errors import ClusterError


@dataclasses.dataclass(frozen=True)
class MaintenancePlan:
    """A campaign schedule: waves of hosts rebooted concurrently."""

    strategy: RebootStrategy
    waves: tuple[tuple[str, ...], ...]
    expected_host_downtime_s: float
    settle_s: float

    @property
    def concurrency(self) -> int:
        return max((len(wave) for wave in self.waves), default=0)

    @property
    def expected_duration_s(self) -> float:
        """Campaign length if every host costs the expected downtime."""
        if not self.waves:
            return 0.0
        return len(self.waves) * self.expected_host_downtime_s + (
            len(self.waves) - 1
        ) * self.settle_s

    def min_live_hosts(self, cluster_size: int) -> int:
        """The worst-case number of serving hosts during the campaign."""
        return cluster_size - self.concurrency


@dataclasses.dataclass
class CampaignResult:
    """What actually happened when a plan was executed."""

    plan: MaintenancePlan
    started: float
    finished: float
    wave_spans: list[tuple[float, float]]

    @property
    def duration(self) -> float:
        return self.finished - self.started


class MaintenancePlanner:
    """Plans and executes cluster-wide rejuvenation under an SLA."""

    #: Expected per-host downtime by strategy, used for planning only
    #: (actuals come from execution).  From the paper's 11-VM testbed.
    DEFAULT_EXPECTED_S: dict[RebootStrategy, float] = {
        RebootStrategy.WARM: 55.0,
        RebootStrategy.COLD: 160.0,
        RebootStrategy.SAVED: 460.0,
        RebootStrategy.DOM0_ONLY: 50.0,
    }

    def __init__(
        self,
        cluster: Cluster,
        min_live_replicas: int = 1,
        placement: PlacementStrategy | None = None,
    ) -> None:
        if min_live_replicas < 0:
            raise ClusterError("min_live_replicas must be >= 0")
        if min_live_replicas >= cluster.size:
            raise ClusterError(
                f"SLA of {min_live_replicas} live replicas leaves no host "
                f"to reboot in a {cluster.size}-host cluster"
            )
        self.cluster = cluster
        self.min_live_replicas = min_live_replicas
        self.placement = (
            placement if placement is not None else FleetOrderStrategy()
        )

    def plan(
        self,
        strategy: "str | RebootStrategy" = RebootStrategy.WARM,
        settle_s: float = 10.0,
        expected_host_downtime_s: float | None = None,
    ) -> MaintenancePlan:
        """Build the widest campaign the SLA allows."""
        if settle_s < 0:
            raise ClusterError("settle time must be >= 0")
        strategy = (
            RebootStrategy(strategy) if isinstance(strategy, str) else strategy
        )
        concurrency = self.cluster.size - self.min_live_replicas
        view = view_of_hosts(self.cluster.hosts)
        names = self.placement.rejuvenation_order(view)
        waves = sla_waves(names, concurrency)
        expected = (
            expected_host_downtime_s
            if expected_host_downtime_s is not None
            else self.DEFAULT_EXPECTED_S.get(strategy, 120.0)
        )
        return MaintenancePlan(
            strategy=strategy,
            waves=waves,
            expected_host_downtime_s=expected,
            settle_s=settle_s,
        )

    def execute(self, plan: MaintenancePlan) -> typing.Generator:
        """Run the campaign (a process); returns a :class:`CampaignResult`.

        Hosts inside a wave reboot concurrently; waves are separated by
        the plan's settle time.
        """
        sim = self.cluster.sim
        started = sim.now
        wave_spans: list[tuple[float, float]] = []
        for index, wave in enumerate(plan.waves):
            if index and plan.settle_s:
                yield sim.timeout(plan.settle_s)
            wave_start = sim.now
            procs = [
                sim.spawn(
                    self.cluster.host(name).reboot(plan.strategy),
                    name=f"maint:{name}",
                )
                for name in wave
            ]
            if procs:
                yield sim.all_of(procs)
            wave_spans.append((wave_start, sim.now))
        return CampaignResult(
            plan=plan, started=started, finished=sim.now, wave_spans=wave_spans
        )
