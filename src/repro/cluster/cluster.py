"""A cluster of consolidated-server hosts behind a load balancer (§6).

All hosts share one simulator but own separate machines, hypervisors and
VMs.  The load balancer dispatches each request to the next *reachable*
replica, so a host mid-rejuvenation simply drops out of rotation — the
cluster keeps serving at ``(m-1)p`` while one host reboots, exactly the
Figure 9 geometry.
"""

from __future__ import annotations

import itertools
import typing

from repro.config import TimingProfile, paper_testbed
from repro.core.host import Host, VMSpec
from repro.errors import ClusterError
from repro.guest.services import Service
from repro.simkernel import RandomStreams, Simulator


class Cluster:
    """``size`` hosts behind one load balancer.

    By default every host runs the same ``vms_per_host`` × ``services``
    fleet; pass ``vm_layout`` (one sequence of :class:`VMSpec` per host)
    for heterogeneous fleets, and ``host_names`` to override the
    ``host{i}`` naming (names also key each host's RNG stream).
    """

    def __init__(
        self,
        sim: Simulator,
        size: int,
        vms_per_host: int = 1,
        services: tuple[str, ...] = ("apache",),
        profile: TimingProfile | None = None,
        spare: bool = False,
        seed: int = 0,
        vm_layout: typing.Sequence[typing.Sequence[VMSpec]] | None = None,
        host_names: typing.Sequence[str] | None = None,
        **host_kwargs: typing.Any,
    ) -> None:
        if size < 1:
            raise ClusterError("a cluster needs at least one host")
        if vms_per_host < 1:
            raise ClusterError("each host needs at least one VM")
        if vm_layout is not None and len(vm_layout) != size:
            raise ClusterError(
                f"vm_layout describes {len(vm_layout)} hosts, size is {size}"
            )
        if host_names is not None and len(host_names) != size:
            raise ClusterError(
                f"host_names names {len(host_names)} hosts, size is {size}"
            )
        self.sim = sim
        self.profile = profile if profile is not None else paper_testbed()
        streams = RandomStreams(seed)
        self.hosts: list[Host] = []
        for index in range(size):
            name = host_names[index] if host_names is not None else f"host{index}"
            host = Host(
                sim,
                profile=self.profile,
                name=name,
                streams=streams.spawn(name),
                **host_kwargs,
            )
            if vm_layout is not None:
                host.install_vms(vm_layout[index])
            else:
                host.install_vms(
                    VMSpec(f"host{index}-vm{v}", services=services)
                    for v in range(vms_per_host)
                )
            self.hosts.append(host)
        self.spare: Host | None = None
        if spare:
            self.spare = Host(
                sim,
                profile=self.profile,
                name="spare",
                streams=streams.spawn("spare"),
                **host_kwargs,
            )

    @property
    def size(self) -> int:
        return len(self.hosts)

    def start(self) -> typing.Generator:
        """Bring up every host (and the spare) in parallel."""
        procs = [
            self.sim.spawn(host.start(), name=f"start:{host.name}")
            for host in self.hosts
        ]
        if self.spare is not None:
            procs.append(self.sim.spawn(self.spare.start(), name="start:spare"))
        yield self.sim.all_of(procs)

    def host(self, name: str) -> Host:
        """Look a host up by name (including the spare)."""
        for candidate in self.hosts:
            if candidate.name == name:
                return candidate
        if self.spare is not None and self.spare.name == name:
            return self.spare
        raise ClusterError(f"no host named {name!r}")

    def services(self, service_name: str | None = None) -> list[Service]:
        """Every replica of the (or any) service across live hosts."""
        replicas: list[Service] = []
        for host in self.hosts + ([self.spare] if self.spare else []):
            if host.vmm is None:
                continue
            for domain in list(host.vmm.domus):
                guest = domain.guest
                if guest is None:
                    continue
                for service in guest.services:
                    if service_name is None or service.name == service_name:
                        replicas.append(service)
        return replicas


class LoadBalancer:
    """Round-robin dispatch over reachable replicas."""

    def __init__(
        self,
        sim: Simulator,
        replicas: typing.Callable[[], list[Service]],
        name: str = "lb",
    ) -> None:
        self.sim = sim
        self.replicas = replicas
        self.name = name
        self._rotation = itertools.count()
        self.dispatched = 0
        self.rejected = 0

    def pick(self) -> Service:
        """The next reachable replica; raises ClusterError if none."""
        candidates = self.replicas()
        if not candidates:
            self.rejected += 1
            raise ClusterError("no replicas registered")
        offset = next(self._rotation)
        for i in range(len(candidates)):
            service = candidates[(offset + i) % len(candidates)]
            if service.reachable:
                self.dispatched += 1
                return service
        self.rejected += 1
        raise ClusterError("no reachable replica")

    def dispatch(self, **request: typing.Any) -> typing.Generator:
        """Route one request to a replica and serve it."""
        service = self.pick()
        result = yield from service.handle_request(**request)
        return result
