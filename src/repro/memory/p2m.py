"""P2M mapping tables: pseudo-physical to machine frame translation.

Per §4.1, the VMM keeps a *P2M-mapping table* per domain recording, for
every pseudo-physical frame number (PFN), which machine frame (MFN) backs
it.  The table is what lets a rebooted VMM re-adopt a suspended domain's
memory: entries are preserved across the quick reload and replayed into
the frame allocator before anything else can allocate.

Implemented as a numpy ``int64`` array, which makes the footprint exactly
8 bytes per 4 KiB page = **2 MiB per GiB** of pseudo-physical memory — the
figure the paper quotes.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import P2MError
from repro.memory.frames import Extent
from repro.units import PAGE_SIZE

UNMAPPED = np.int64(-1)


class P2MTable:
    """One domain's PFN → MFN mapping."""

    def __init__(self, domain_name: str, pseudo_physical_pages: int) -> None:
        if pseudo_physical_pages <= 0:
            raise P2MError(
                f"domain {domain_name!r} needs > 0 pages, "
                f"got {pseudo_physical_pages}"
            )
        self.domain_name = domain_name
        self._table = np.full(pseudo_physical_pages, UNMAPPED, dtype=np.int64)

    # -- sizing -----------------------------------------------------------------

    @property
    def pseudo_physical_pages(self) -> int:
        return int(self._table.size)

    @property
    def table_bytes(self) -> int:
        """Footprint of the table itself (8 B per PFN: 2 MiB per GiB)."""
        return int(self._table.nbytes)

    @property
    def mapped_pages(self) -> int:
        return int(np.count_nonzero(self._table != UNMAPPED))

    # -- mapping -----------------------------------------------------------------

    def map_extent(self, pfn_start: int, extent: Extent) -> None:
        """Map ``extent.npages`` consecutive PFNs starting at ``pfn_start``."""
        pfn_end = pfn_start + extent.npages
        if pfn_start < 0 or pfn_end > self._table.size:
            raise P2MError(
                f"PFN range [{pfn_start}, {pfn_end}) outside domain "
                f"{self.domain_name!r} (size {self._table.size})"
            )
        window = self._table[pfn_start:pfn_end]
        if np.any(window != UNMAPPED):
            raise P2MError(
                f"PFN range [{pfn_start}, {pfn_end}) already mapped in "
                f"{self.domain_name!r}"
            )
        window[:] = np.arange(extent.start, extent.end, dtype=np.int64)

    def unmap_range(self, pfn_start: int, npages: int) -> list[Extent]:
        """Unmap a PFN range, returning the machine extents released."""
        pfn_end = pfn_start + npages
        if pfn_start < 0 or pfn_end > self._table.size:
            raise P2MError(f"PFN range [{pfn_start}, {pfn_end}) out of range")
        window = self._table[pfn_start:pfn_end]
        if np.any(window == UNMAPPED):
            raise P2MError(
                f"PFN range [{pfn_start}, {pfn_end}) not fully mapped"
            )
        extents = _runs_to_extents(np.asarray(window))
        window[:] = UNMAPPED
        return extents

    def mfn_of(self, pfn: int) -> int:
        """Translate one PFN; raises if unmapped."""
        if not 0 <= pfn < self._table.size:
            raise P2MError(f"PFN {pfn} out of range")
        mfn = int(self._table[pfn])
        if mfn < 0:
            raise P2MError(f"PFN {pfn} unmapped in {self.domain_name!r}")
        return mfn

    def is_mapped(self, pfn: int) -> bool:
        """True if ``pfn`` is in range and currently backed by an MFN."""
        return 0 <= pfn < self._table.size and int(self._table[pfn]) >= 0

    def machine_extents(self) -> list[Extent]:
        """All machine extents backing this domain, coalesced and sorted.

        This is what quick reload replays into the allocator after reboot.
        """
        mapped = np.sort(self._table[self._table != UNMAPPED])
        return _runs_to_extents(mapped, presorted=True)

    def machine_pages(self) -> int:
        """Total machine pages currently backing this domain."""
        return self.mapped_pages

    def check_bijective(self) -> None:
        """Every mapped PFN must name a distinct MFN (no aliasing)."""
        mapped = self._table[self._table != UNMAPPED]
        if mapped.size != np.unique(mapped).size:
            raise P2MError(f"aliased MFNs in {self.domain_name!r}")

    def mfn_to_pfn(self, mfns: typing.Iterable[int]) -> dict[int, int]:
        """Reverse-translate machine frames to the PFNs they back here.

        MFNs not mapped by this domain are silently absent from the result.
        Vectorized over the table so looking up a sparse handful of frames
        does not pay a Python-level scan of every PFN (262 144 entries per
        GiB) — the save path calls this once per domain save.
        """
        table = self._table
        wanted = np.fromiter(mfns, dtype=np.int64)
        if wanted.size == 0:
            return {}
        mask = np.isin(table, wanted)
        pfns = np.nonzero(mask)[0]
        return {int(table[pfn]): int(pfn) for pfn in pfns}

    def snapshot(self) -> np.ndarray:
        """An immutable copy of the raw table (for save/restore paths)."""
        copy = self._table.copy()
        copy.setflags(write=False)
        return copy

    @classmethod
    def from_snapshot(cls, domain_name: str, snapshot: np.ndarray) -> "P2MTable":
        table = cls(domain_name, int(snapshot.size))
        table._table = snapshot.copy()
        return table


def _runs_to_extents(mfns: np.ndarray, presorted: bool = False) -> list[Extent]:
    """Coalesce an array of MFNs into maximal contiguous extents."""
    if mfns.size == 0:
        return []
    ordered = mfns if presorted else np.sort(mfns)
    breaks = np.where(np.diff(ordered) != 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [ordered.size - 1]))
    return [
        Extent(int(ordered[s]), int(ordered[e] - ordered[s] + 1))
        for s, e in zip(starts, ends)
    ]


def table_bytes_for(memory_bytes: int) -> int:
    """P2M footprint for a domain of ``memory_bytes`` pseudo-physical RAM."""
    return (memory_bytes // PAGE_SIZE) * 8
