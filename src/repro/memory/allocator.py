"""First-fit extent allocator for machine frames with owner tracking.

The allocator underpins both normal domain construction and the
warm-VM-reboot trick: after a quick reload the *new* VMM instance replays
the preserved P2M tables and re-reserves exactly the extents that belonged
to suspended domains (:meth:`FrameAllocator.reserve_exact`) **before**
general allocation resumes, so nothing can claim — and nothing scrubs —
a preserved memory image.

Invariants (property-tested):

* free extents are disjoint, sorted, and coalesced (no two adjacent);
* allocated extents are disjoint from each other and from free space;
* ``free_pages + allocated_pages == total_pages`` at all times;
* only the recorded owner may free an extent.
"""

from __future__ import annotations

import bisect
import typing

from repro.errors import FrameOwnershipError, OutOfMemoryError, MemoryError_
from repro.memory.frames import Extent, MachineMemory


class FrameAllocator:
    """Owns the free/allocated bookkeeping of one machine's frames."""

    def __init__(self, memory: MachineMemory) -> None:
        self.memory = memory
        self._free: list[Extent] = [Extent(0, memory.total_pages)]
        # start MFN -> (owner, extent)
        self._allocated: dict[int, tuple[str, Extent]] = {}

    # -- inspection ------------------------------------------------------------

    @property
    def total_pages(self) -> int:
        return self.memory.total_pages

    @property
    def free_pages(self) -> int:
        return sum(e.npages for e in self._free)

    @property
    def allocated_pages(self) -> int:
        return sum(e.npages for _, e in self._allocated.values())

    def free_extents(self) -> list[Extent]:
        """A snapshot of the free list (sorted, coalesced)."""
        return list(self._free)

    def owned_by(self, owner: str) -> list[Extent]:
        """All extents currently charged to ``owner``, sorted by start."""
        return sorted(
            extent
            for holder, extent in self._allocated.values()
            if holder == owner
        )

    def owner_of(self, mfn: int) -> str | None:
        """The owner of the extent containing ``mfn``, or None if free."""
        for holder, extent in self._allocated.values():
            if extent.contains(mfn):
                return holder
        return None

    def pages_of(self, owner: str) -> int:
        """Total pages currently charged to ``owner``."""
        return sum(e.npages for e in self.owned_by(owner))

    # -- allocation -------------------------------------------------------------

    def allocate(self, npages: int, owner: str) -> Extent:
        """First-fit allocation of a contiguous extent.

        Raises :class:`OutOfMemoryError` if no single free extent is large
        enough (machine memory fragmentation is real; callers that can take
        scattered memory should use :meth:`allocate_scattered`).
        """
        if npages <= 0:
            raise MemoryError_(f"allocation must be > 0 pages, got {npages}")
        for index, extent in enumerate(self._free):
            if extent.npages >= npages:
                taken = Extent(extent.start, npages)
                remainder_pages = extent.npages - npages
                if remainder_pages:
                    self._free[index] = Extent(taken.end, remainder_pages)
                else:
                    del self._free[index]
                self._allocated[taken.start] = (owner, taken)
                return taken
        raise OutOfMemoryError(
            f"no contiguous extent of {npages} pages "
            f"(largest free: {max((e.npages for e in self._free), default=0)})"
        )

    def allocate_scattered(self, npages: int, owner: str) -> list[Extent]:
        """Allocate ``npages`` total, possibly as several extents."""
        if npages <= 0:
            raise MemoryError_(f"allocation must be > 0 pages, got {npages}")
        if npages > self.free_pages:
            raise OutOfMemoryError(
                f"need {npages} pages, only {self.free_pages} free"
            )
        granted: list[Extent] = []
        remaining = npages
        while remaining > 0:
            extent = self._free[0]
            take = min(extent.npages, remaining)
            granted.append(self.allocate(take, owner))
            remaining -= take
        return granted

    def reserve_exact(self, extent: Extent, owner: str) -> None:
        """Claim a specific extent out of free space (quick-reload replay).

        Fails if any page of the extent is already allocated — which would
        mean the new VMM instance clobbered a preserved image, exactly the
        corruption §3.1 says quick reload must prevent.
        """
        for index, free in enumerate(self._free):
            if free.start <= extent.start and extent.end <= free.end:
                # Split the free extent into (before, taken, after).
                replacement: list[Extent] = []
                if free.start < extent.start:
                    replacement.append(Extent(free.start, extent.start - free.start))
                if extent.end < free.end:
                    replacement.append(Extent(extent.end, free.end - extent.end))
                self._free[index : index + 1] = replacement
                self._allocated[extent.start] = (owner, extent)
                return
        raise FrameOwnershipError(
            f"cannot reserve {extent} for {owner!r}: not entirely free"
        )

    def free(self, extent: Extent, owner: str, scrub: bool = True) -> None:
        """Release a frame range previously allocated/reserved by ``owner``.

        The range may be any sub-range of — or even span several adjacent —
        allocated extents, as long as every page is owned by ``owner``
        (ballooning releases arbitrary P2M-derived ranges).  Partial frees
        split the surviving portions back into the allocated set.

        ``scrub=True`` (the default, matching Xen's scrub-on-free) clears
        content sentinels so freed memory cannot leak another domain's data.
        """
        overlapping = [
            (start, holder, alloc)
            for start, (holder, alloc) in self._allocated.items()
            if alloc.overlaps(extent)
        ]
        overlapping.sort(key=lambda item: item[2].start)
        covered = 0
        for _, holder, alloc in overlapping:
            if holder != owner:
                raise FrameOwnershipError(
                    f"{extent} includes pages of {holder!r}, not {owner!r}"
                )
            low = max(alloc.start, extent.start)
            high = min(alloc.end, extent.end)
            covered += high - low
        if covered != extent.npages:
            raise FrameOwnershipError(f"{extent} is not an allocated extent")
        for start, _, alloc in overlapping:
            del self._allocated[start]
            if alloc.start < extent.start:
                before = Extent(alloc.start, extent.start - alloc.start)
                self._allocated[before.start] = (owner, before)
            if extent.end < alloc.end:
                after = Extent(extent.end, alloc.end - extent.end)
                self._allocated[after.start] = (owner, after)
        if scrub:
            self.memory.scrub(extent)
        self._insert_free(extent)

    def free_all(self, owner: str, scrub: bool = True) -> int:
        """Release everything owned by ``owner``; returns pages freed."""
        extents = self.owned_by(owner)
        for extent in extents:
            self.free(extent, owner, scrub=scrub)
        return sum(e.npages for e in extents)

    # -- internals ---------------------------------------------------------------

    def _insert_free(self, extent: Extent) -> None:
        """Insert into the sorted free list, coalescing with neighbours."""
        index = bisect.bisect_left(self._free, extent)
        start, end = extent.start, extent.end
        # Merge with predecessor?
        if index > 0 and self._free[index - 1].end == start:
            start = self._free[index - 1].start
            index -= 1
            del self._free[index]
        # Merge with successor?
        if index < len(self._free) and self._free[index].start == end:
            end = self._free[index].end
            del self._free[index]
        self._free.insert(index, Extent(start, end - start))

    def check_invariants(self) -> None:
        """Raise :class:`MemoryError_` if bookkeeping is inconsistent."""
        regions = sorted(
            [("free", e) for e in self._free]
            + [("alloc", e) for _, e in self._allocated.values()],
            key=lambda pair: pair[1].start,
        )
        previous_end = 0
        previous_kind = None
        for kind, extent in regions:
            if extent.start < previous_end:
                raise MemoryError_(f"overlap at {extent}")
            if (
                kind == "free"
                and previous_kind == "free"
                and extent.start == previous_end
            ):
                raise MemoryError_(f"uncoalesced free extents at {extent}")
            previous_end = extent.end
            previous_kind = kind
        if self.free_pages + self.allocated_pages != self.total_pages:
            raise MemoryError_(
                f"page conservation violated: {self.free_pages} free + "
                f"{self.allocated_pages} allocated != {self.total_pages}"
            )
