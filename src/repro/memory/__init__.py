"""Machine-memory substrate: frames, allocator, P2M tables, heap, balloon.

This package models Xen's memory management at the granularity the
warm-VM-reboot mechanisms operate on: frame *extents*, per-domain
P2M-mapping tables, the 16 MB VMM heap, and the reboot-surviving
preserved-image store.
"""

from repro.memory.allocator import FrameAllocator
from repro.memory.ballooning import Balloon
from repro.memory.frames import Extent, MachineMemory
from repro.memory.heap import HeapAllocation, VmmHeap
from repro.memory.p2m import P2MTable, table_bytes_for
from repro.memory.preserved import PreservedStore, SuspendImage

__all__ = [
    "Balloon",
    "Extent",
    "FrameAllocator",
    "HeapAllocation",
    "MachineMemory",
    "P2MTable",
    "PreservedStore",
    "SuspendImage",
    "VmmHeap",
    "table_bytes_for",
]
