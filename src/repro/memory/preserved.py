"""The reboot-surviving save area for suspended domains.

On-memory suspend (§4.2) saves, per domain, three things that must outlive
the VMM instance: the P2M-mapping table, the 16 KB execution state
(registers, event-channel status, shared info), and the domain
configuration (devices, memory size).  All of it lives in ordinary machine
RAM at a well-known location, so:

* a **quick reload** hands the area to the next VMM instance intact;
* a **hardware reset** destroys it along with all other DRAM content.

:class:`PreservedStore` models that area.  The physical-machine model
wipes it in ``hardware_reset()`` and keeps it in ``quick_reload()`` —
the distinction the whole technique rests on.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.errors import MemoryError_
from repro.units import KiB


@dataclasses.dataclass
class SuspendImage:
    """Everything preserved for one suspended domain."""

    domain_name: str
    p2m_snapshot: np.ndarray
    """Immutable copy of the domain's P2M table at suspend time."""

    execution_state: dict[str, typing.Any]
    """CPU registers, event-channel state, shared-info snapshot (§4.2)."""

    configuration: dict[str, typing.Any]
    """Domain configuration: memory size, devices, services."""

    state_bytes: int = 16 * KiB
    """Footprint of the execution-state save area (16 KB per §4.2)."""

    @property
    def preserved_bytes(self) -> int:
        """Total bytes this image pins in the preserved area."""
        return self.state_bytes + int(self.p2m_snapshot.nbytes)


class PreservedStore:
    """The machine-RAM area surviving quick reload but not hardware reset."""

    def __init__(self) -> None:
        self._images: dict[str, SuspendImage] = {}

    def __len__(self) -> int:
        return len(self._images)

    def __contains__(self, domain_name: str) -> bool:
        return domain_name in self._images

    @property
    def domain_names(self) -> list[str]:
        return list(self._images)

    @property
    def preserved_bytes(self) -> int:
        return sum(image.preserved_bytes for image in self._images.values())

    def save(self, image: SuspendImage) -> None:
        """Preserve one domain's image (one image per domain)."""
        if image.domain_name in self._images:
            raise MemoryError_(
                f"domain {image.domain_name!r} already has a preserved image"
            )
        self._images[image.domain_name] = image

    def load(self, domain_name: str) -> SuspendImage:
        """Fetch a preserved image; raises if the domain has none."""
        try:
            return self._images[domain_name]
        except KeyError:
            raise MemoryError_(
                f"no preserved image for domain {domain_name!r}"
            ) from None

    def discard(self, domain_name: str) -> None:
        """Drop a preserved image (idempotent; used after resume)."""
        self._images.pop(domain_name, None)

    def images(self) -> list[SuspendImage]:
        """All preserved images, in save order."""
        return list(self._images.values())

    def wipe(self) -> None:
        """What a hardware reset does to the save area."""
        self._images.clear()
