"""The VMM heap — small, fixed, and the paper's motivating aging victim.

Xen's hypervisor heap is only 16 MB regardless of machine memory (§2);
leaks such as changesets 9392/11752 (heap lost on every VM reboot or on
error paths) slowly exhaust it, eventually degrading or crashing the VMM.
:class:`VmmHeap` tracks live allocations *and* leaked bytes separately so
aging experiments can drive the heap toward exhaustion and rejuvenation
can demonstrably reset it.

When handed a metrics registry the heap publishes ``vmm.heap_used_bytes``
and ``vmm.heap_leaked_bytes`` gauges on every mutation, giving the
control plane's aging detectors a live series to watch.
"""

from __future__ import annotations

import itertools
import typing

from repro.errors import OutOfMemoryError, MemoryError_


class HeapAllocation:
    """Handle for one live heap allocation."""

    __slots__ = ("allocation_id", "nbytes", "tag")

    def __init__(self, allocation_id: int, nbytes: int, tag: str) -> None:
        self.allocation_id = allocation_id
        self.nbytes = nbytes
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeapAllocation({self.tag}, {self.nbytes}B)"


class VmmHeap:
    """A bounded heap with explicit leak accounting."""

    def __init__(
        self,
        capacity_bytes: int,
        metrics: typing.Any = None,
        owner: str = "",
    ) -> None:
        if capacity_bytes <= 0:
            raise MemoryError_(f"heap capacity must be > 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._live: dict[int, HeapAllocation] = {}
        self._leaked_bytes = 0
        self._ids = itertools.count(1)
        self.high_watermark = 0
        if metrics is not None:
            self._metric_used = metrics.gauge("vmm.heap_used_bytes", host=owner)
            self._metric_leaked = metrics.gauge(
                "vmm.heap_leaked_bytes", host=owner
            )
        else:
            self._metric_used = None
            self._metric_leaked = None
        self._publish()

    def _publish(self) -> None:
        if self._metric_used is not None:
            self._metric_used.set(self.used_bytes)
            self._metric_leaked.set(self._leaked_bytes)

    @property
    def live_bytes(self) -> int:
        return sum(a.nbytes for a in self._live.values())

    @property
    def leaked_bytes(self) -> int:
        return self._leaked_bytes

    @property
    def used_bytes(self) -> int:
        return self.live_bytes + self._leaked_bytes

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of the heap consumed (live + leaked)."""
        return self.used_bytes / self.capacity_bytes

    def allocate(self, nbytes: int, tag: str = "anon") -> HeapAllocation:
        """Allocate, or raise :class:`OutOfMemoryError` if exhausted."""
        if nbytes <= 0:
            raise MemoryError_(f"allocation must be > 0 bytes, got {nbytes}")
        if nbytes > self.available_bytes:
            raise OutOfMemoryError(
                f"VMM heap exhausted: want {nbytes} B, "
                f"{self.available_bytes} B available "
                f"({self._leaked_bytes} B leaked)"
            )
        allocation = HeapAllocation(next(self._ids), nbytes, tag)
        self._live[allocation.allocation_id] = allocation
        self.high_watermark = max(self.high_watermark, self.used_bytes)
        self._publish()
        return allocation

    def release(self, allocation: HeapAllocation) -> None:
        """Free a live allocation (double free raises)."""
        if allocation.allocation_id not in self._live:
            raise MemoryError_(f"double free of {allocation!r}")
        del self._live[allocation.allocation_id]
        self._publish()

    def leak(self, allocation: HeapAllocation) -> None:
        """Turn a live allocation into a leak: the bytes stay consumed but
        can never be released — the aging mechanism of §2's Xen bugs."""
        if allocation.allocation_id not in self._live:
            raise MemoryError_(f"cannot leak non-live {allocation!r}")
        del self._live[allocation.allocation_id]
        self._leaked_bytes += allocation.nbytes
        self._publish()

    def leak_bytes(self, nbytes: int) -> None:
        """Directly consume heap bytes as a leak (fault injection).

        Unlike :meth:`allocate`, leaking past capacity is *clamped*: real
        leaks stop mattering once the heap is gone, and the interesting
        event (exhaustion) is observed by the next allocate call.
        """
        if nbytes < 0:
            raise MemoryError_(f"cannot leak negative bytes {nbytes}")
        self._leaked_bytes = min(
            self._leaked_bytes + nbytes, self.capacity_bytes - self.live_bytes
        )
        self.high_watermark = max(self.high_watermark, self.used_bytes)
        self._publish()

    def reset(self) -> None:
        """What a VMM reboot does: a brand-new heap, leaks gone."""
        self._live.clear()
        self._leaked_bytes = 0
        self._publish()
