"""Balloon driver model (Waldspurger-style memory overcommit).

§4.1 notes the P2M table stays correct even when total pseudo-physical
memory exceeds machine memory thanks to ballooning: a ballooned-out PFN
simply has no MFN behind it.  :class:`Balloon` inflates (returns machine
frames to the VMM) and deflates (reclaims frames) while keeping the
domain's P2M table consistent — which the property tests verify across
arbitrary inflate/deflate sequences and across warm reboots.
"""

from __future__ import annotations

from repro.errors import MemoryError_, OutOfMemoryError
from repro.memory.allocator import FrameAllocator
from repro.memory.p2m import P2MTable


class Balloon:
    """Per-domain balloon driver.

    The balloon occupies the *tail* of the pseudo-physical address space:
    inflating unmaps the highest mapped PFNs, deflating remaps them.  Real
    balloons pick arbitrary victim pages; using the tail keeps the model
    simple without changing any accounting the experiments rely on.
    """

    def __init__(
        self, allocator: FrameAllocator, p2m: P2MTable, owner: str
    ) -> None:
        self.allocator = allocator
        self.p2m = p2m
        self.owner = owner

    @property
    def ballooned_pages(self) -> int:
        """Pages currently surrendered back to the VMM."""
        return self.p2m.pseudo_physical_pages - self.p2m.mapped_pages

    def _mapped_tail(self) -> int:
        """Highest mapped PFN + 1 (== mapped count, tail discipline)."""
        return self.p2m.mapped_pages

    def inflate(self, npages: int) -> int:
        """Surrender ``npages`` machine pages to the VMM; returns pages freed."""
        if npages < 0:
            raise MemoryError_(f"cannot inflate by {npages}")
        npages = min(npages, self._mapped_tail())
        if npages == 0:
            return 0
        tail = self._mapped_tail()
        extents = self.p2m.unmap_range(tail - npages, npages)
        for extent in extents:
            self.allocator.free(extent, self.owner, scrub=True)
        return npages

    def deflate(self, npages: int) -> int:
        """Reclaim up to ``npages`` machine pages; returns pages regained.

        Grants what the allocator can supply — a partially satisfied
        deflate is normal under memory pressure, not an error.
        """
        if npages < 0:
            raise MemoryError_(f"cannot deflate by {npages}")
        npages = min(npages, self.ballooned_pages)
        regained = 0
        while regained < npages:
            want = min(npages - regained, self.allocator.free_pages)
            if want == 0:
                break
            try:
                extents = self.allocator.allocate_scattered(want, self.owner)
            except OutOfMemoryError:  # pragma: no cover - raced by nothing here
                break
            for extent in extents:
                self.p2m.map_extent(self._mapped_tail(), extent)
                regained += extent.npages
        return regained

    def set_target(self, target_mapped_pages: int) -> int:
        """Inflate/deflate toward ``target_mapped_pages``; returns the new
        mapped page count."""
        if target_mapped_pages < 0:
            raise MemoryError_(f"negative target {target_mapped_pages}")
        target = min(target_mapped_pages, self.p2m.pseudo_physical_pages)
        current = self.p2m.mapped_pages
        if target < current:
            self.inflate(current - target)
        elif target > current:
            self.deflate(target - current)
        return self.p2m.mapped_pages
