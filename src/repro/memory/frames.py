"""Machine page frames and frame extents.

Machine memory is modelled at *extent* granularity — contiguous runs of
4 KiB frames — because a 12 GB machine has three million frames and
per-frame Python objects would be absurd.  Extents carry no content; the
:class:`MachineMemory` below keeps a sparse map of *content sentinels*
(tokens written by guests) so tests can verify the paper's central claim
mechanically: memory images survive a warm-VM reboot and do not survive a
hardware reset.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import MemoryError_
from repro.units import PAGE_SIZE


@dataclasses.dataclass(frozen=True, order=True)
class Extent:
    """A contiguous run of machine page frames ``[start, start + npages)``."""

    start: int
    npages: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise MemoryError_(f"negative start MFN {self.start}")
        if self.npages <= 0:
            raise MemoryError_(f"extent must have >= 1 page, got {self.npages}")

    @property
    def end(self) -> int:
        """One past the last MFN."""
        return self.start + self.npages

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE

    def contains(self, mfn: int) -> bool:
        """True if ``mfn`` lies inside this extent."""
        return self.start <= mfn < self.end

    def overlaps(self, other: "Extent") -> bool:
        """True if the two extents share at least one frame."""
        return self.start < other.end and other.start < self.end

    def __iter__(self) -> typing.Iterator[int]:
        return iter(range(self.start, self.end))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Extent({self.start}..{self.end - 1}, {self.npages}p)"


class MachineMemory:
    """All machine frames of one physical machine, with content sentinels.

    Content is *sparse*: only pages that something explicitly wrote a token
    into are tracked.  ``lose_contents()`` models what a hardware reset does
    to DRAM (contents undefined afterwards); ``scrub(extent)`` models the
    VMM zeroing pages.
    """

    def __init__(self, total_pages: int) -> None:
        if total_pages <= 0:
            raise MemoryError_(f"machine needs > 0 pages, got {total_pages}")
        self.total_pages = total_pages
        self._tokens: dict[int, typing.Any] = {}

    @property
    def total_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    def _check_mfn(self, mfn: int) -> None:
        if not 0 <= mfn < self.total_pages:
            raise MemoryError_(
                f"MFN {mfn} out of range [0, {self.total_pages})"
            )

    def write_token(self, mfn: int, token: typing.Any) -> None:
        """Write a content sentinel into one frame."""
        self._check_mfn(mfn)
        self._tokens[mfn] = token

    def read_token(self, mfn: int) -> typing.Any:
        """Read a frame's sentinel; None if never written or scrubbed/lost."""
        self._check_mfn(mfn)
        return self._tokens.get(mfn)

    def scrub(self, extent: Extent) -> None:
        """Zero the frames of ``extent`` (tokens become None)."""
        if extent.end > self.total_pages:
            raise MemoryError_(f"{extent} exceeds machine memory")
        if extent.npages > len(self._tokens):
            # Cheaper to filter the sparse map than iterate a huge extent.
            self._tokens = {
                mfn: tok
                for mfn, tok in self._tokens.items()
                if not extent.contains(mfn)
            }
        else:
            for mfn in extent:
                self._tokens.pop(mfn, None)

    def lose_contents(self) -> None:
        """Model a hardware reset: every frame's content becomes undefined."""
        self._tokens.clear()

    def written_count(self) -> int:
        """Number of frames currently holding a sentinel (for tests)."""
        return len(self._tokens)
