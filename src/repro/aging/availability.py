"""Availability analysis (§5.3).

The paper combines measured downtimes with a usage model — OS
rejuvenation every week, VMM rejuvenation every four weeks — to compare
strategies in "nines": 99.993 % (warm) vs 99.985 % (cold) vs 99.977 %
(saved).

The subtlety is the α term of §3.2: a *cold* VMM reboot also reboots
every guest OS, so it counts as an OS rejuvenation and reschedules the
next one — over a VMM cycle the expected number of pure OS rejuvenations
drops by α.  Warm and saved reboots preserve the OS images, so they give
no such credit.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import AnalysisError
from repro.units import WEEK


@dataclasses.dataclass(frozen=True)
class RejuvenationPlan:
    """The §5.3 usage model for one strategy."""

    os_interval_s: float = WEEK
    vmm_interval_s: float = 4 * WEEK
    os_downtime_s: float = 33.6
    vmm_downtime_s: float = 42.0
    involves_os_reboot: bool = False
    """True for the cold-VM reboot: the VMM rejuvenation includes an OS
    rejuvenation, earning the α credit."""

    alpha: float = 0.5
    """Expected fraction of the OS-rejuvenation interval already elapsed
    when the VMM rejuvenation lands (0 < α <= 1)."""

    def __post_init__(self) -> None:
        if self.os_interval_s <= 0 or self.vmm_interval_s <= 0:
            raise AnalysisError("rejuvenation intervals must be positive")
        if self.vmm_interval_s < self.os_interval_s:
            raise AnalysisError(
                "the usage model assumes OS rejuvenation is at least as "
                "frequent as VMM rejuvenation (§3.2)"
            )
        if self.os_downtime_s < 0 or self.vmm_downtime_s < 0:
            raise AnalysisError("downtimes must be >= 0")
        if not 0 < self.alpha <= 1:
            raise AnalysisError(f"alpha must be in (0, 1], got {self.alpha}")

    @property
    def os_rejuvenations_per_cycle(self) -> float:
        """OS rejuvenations charged per VMM cycle, net of the α credit."""
        count = self.vmm_interval_s / self.os_interval_s
        if self.involves_os_reboot:
            count -= self.alpha
        return count

    def downtime_per_cycle(self) -> float:
        """Total service downtime per VMM-rejuvenation cycle."""
        return (
            self.os_rejuvenations_per_cycle * self.os_downtime_s
            + self.vmm_downtime_s
        )

    def availability(self) -> float:
        """Steady-state availability under the plan."""
        return 1.0 - self.downtime_per_cycle() / self.vmm_interval_s

    def nines(self) -> float:
        """Availability as 'number of nines' (e.g. 4.1)."""
        unavailability = 1.0 - self.availability()
        if unavailability <= 0:
            return math.inf
        return -math.log10(unavailability)


def paper_plans(
    warm_downtime_s: float = 42.0,
    cold_downtime_s: float = 241.0,
    saved_downtime_s: float = 429.0,
    os_downtime_s: float = 33.6,
) -> dict[str, RejuvenationPlan]:
    """The three §5.3 scenarios, parameterized by (measured) downtimes.

    Defaults are the paper's own numbers; experiments pass in simulated
    measurements instead and compare the resulting availabilities.
    """
    return {
        "warm": RejuvenationPlan(
            os_downtime_s=os_downtime_s,
            vmm_downtime_s=warm_downtime_s,
            involves_os_reboot=False,
        ),
        "cold": RejuvenationPlan(
            os_downtime_s=os_downtime_s,
            vmm_downtime_s=cold_downtime_s,
            involves_os_reboot=True,
        ),
        "saved": RejuvenationPlan(
            os_downtime_s=os_downtime_s,
            vmm_downtime_s=saved_downtime_s,
            involves_os_reboot=False,
        ),
    }


def format_availability(value: float, decimals: int = 3) -> str:
    """E.g. 0.999927 -> '99.993 %'."""
    return f"{value * 100:.{decimals}f} %"
