"""Software-aging fault injection knobs (re-export).

:class:`~repro.config.AgingFaults` is defined with the other frozen spec
dataclasses in :mod:`repro.config` — the VMM and xenstore (platform
layer) consult it, and the layer map forbids them importing from the
``aging`` package above them.  This module keeps the aging-facing name:
aging policies, experiments and tests say ``repro.aging.AgingFaults``
and never need to know where the spec lives.
"""

from __future__ import annotations

from repro.config import AgingFaults

__all__ = ["AgingFaults"]
