"""Software-aging fault injection knobs.

§2 grounds the need for VMM rejuvenation in real Xen defects:

* changeset 9392 — heap memory lost every time a VM is rebooted;
* changeset 11752 — heap lost on certain error paths;
* changeset 8640 — xenstored (in domain 0) leaking per transaction.

:class:`AgingFaults` switches those defects on in the simulated stack so
aging experiments can drive the VMM toward exhaustion; all default to off
(a healthy hypervisor).  The VMM and xenstore consult this object — it
deliberately lives in the ``aging`` package as the single catalogue of
injectable degradation.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.units import KiB


@dataclasses.dataclass(frozen=True)
class AgingFaults:
    """Which historical defects are active, and how hard they bite."""

    leak_on_domain_destroy_bytes: int = 0
    """VMM heap bytes leaked each time a domain is destroyed (cs 9392:
    'available heap memory decreased whenever a VM was rebooted')."""

    leak_on_error_path_bytes: int = 0
    """VMM heap bytes leaked when an error path executes (cs 11752)."""

    xenstore_leak_per_txn_bytes: int = 0
    """Bytes leaked by xenstored per transaction (cs 8640)."""

    def __post_init__(self) -> None:
        for field in (
            "leak_on_domain_destroy_bytes",
            "leak_on_error_path_bytes",
            "xenstore_leak_per_txn_bytes",
        ):
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be >= 0")

    @classmethod
    def healthy(cls) -> "AgingFaults":
        """No active defects."""
        return cls()

    @classmethod
    def paper_bugs(cls) -> "AgingFaults":
        """All three cited defects on, at magnitudes that exhaust the 16 MB
        heap after many domain reboots — aggressive enough to observe in
        simulated weeks, faithful in *kind* to the cited changesets."""
        return cls(
            leak_on_domain_destroy_bytes=64 * KiB,
            leak_on_error_path_bytes=16 * KiB,
            xenstore_leak_per_txn_bytes=4 * KiB,
        )
