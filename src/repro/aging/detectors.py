"""Aging detection and exhaustion estimation.

Garg et al. (cited as [13]) detect aging by monitoring resource trends
and estimating time to exhaustion.  :class:`AgingMonitor` does the same
for the simulated VMM: it samples heap and xenstore consumption on an
interval and fits a linear trend to predict when the resource runs out —
which is what a rejuvenation scheduler would use to pick an interval.

Sampling ticks on the control plane's drift-free absolute grid
(:func:`repro.control.next_tick`): sample times are ``start + k *
interval`` regardless of how long anything sharing the simulation takes,
so trend fits never see an interval silently stretched by a concurrent
reboot.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.detectors import next_tick
from repro.core.host import Host
from repro.errors import AnalysisError, ConfigError


@dataclasses.dataclass(frozen=True)
class ResourceSample:
    time: float
    heap_used: int
    heap_capacity: int
    xenstore_used: int
    xenstore_budget: int

    @property
    def heap_utilization(self) -> float:
        return self.heap_used / self.heap_capacity


class AgingMonitor:
    """Samples VMM resource consumption on a fixed interval."""

    def __init__(self, host: Host, interval_s: float = 3600.0) -> None:
        if interval_s <= 0:
            raise ConfigError("sampling interval must be positive")
        self.host = host
        self.interval_s = interval_s
        self.samples: list[ResourceSample] = []

    def sample_once(self) -> ResourceSample | None:
        """Take one sample now (None if the VMM is down mid-reboot)."""
        vmm = self.host.vmm
        if vmm is None or vmm.xenstore is None:
            return None
        sample = ResourceSample(
            time=self.host.sim.now,
            heap_used=vmm.heap.used_bytes,
            heap_capacity=vmm.heap.capacity_bytes,
            xenstore_used=vmm.xenstore.used_bytes,
            xenstore_budget=vmm.xenstore.budget_bytes,
        )
        self.samples.append(sample)
        return sample

    def run(self, until: float) -> typing.Generator:
        """Sampling loop (a process): one sample now, then on the grid."""
        sim = self.host.sim
        origin = sim.now
        if sim.now >= until:
            return self.samples
        self.sample_once()
        while True:
            tick = next_tick(origin, self.interval_s, sim.now)
            if tick >= until:
                if until > sim.now:
                    yield sim.timeout(until - sim.now)
                return self.samples
            yield sim.timeout(tick - sim.now)
            self.sample_once()

    # -- estimation --------------------------------------------------------------

    def heap_trend(self) -> tuple[float, float]:
        """(slope bytes/s, intercept bytes) of heap consumption over time."""
        from repro.analysis.fitting import fit_line

        if len(self.samples) < 2:
            raise AnalysisError("need at least two samples for a trend")
        fit = fit_line(
            [s.time for s in self.samples],
            [float(s.heap_used) for s in self.samples],
        )
        return fit.slope, fit.intercept

    def estimate_heap_exhaustion(self) -> float:
        """Predicted absolute time when the heap runs out.

        Returns ``inf`` when consumption is flat or shrinking — a healthy
        system never "ages out".
        """
        slope, intercept = self.heap_trend()
        if slope <= 0:
            return float("inf")
        capacity = self.samples[-1].heap_capacity
        return (capacity - intercept) / slope

    def recommended_rejuvenation_interval(self, safety: float = 0.8) -> float:
        """Interval that rejuvenates at ``safety`` of predicted lifetime."""
        if not 0 < safety <= 1:
            raise AnalysisError("safety factor must be in (0, 1]")
        exhaustion = self.estimate_heap_exhaustion()
        if exhaustion == float("inf"):
            return float("inf")
        lifetime = exhaustion - self.samples[0].time
        return max(lifetime * safety, 0.0)
