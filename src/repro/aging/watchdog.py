"""Reactive failure handling: crash injection and watchdog recovery.

Rejuvenation is *proactive*: it preempts the crash that aging would
eventually cause.  To quantify what that buys, this module provides the
reactive alternative:

* :class:`HeapExhaustionCrasher` — drives §2's failure to its conclusion:
  the VMM heap leaks at a configurable rate and the VMM **crashes** when
  it is exhausted (Xen's fate under changesets 9392/11752 if nobody
  rejuvenates);
* :class:`CrashWatchdog` — an external monitor that notices the dead VMM
  only after a detection timeout (crashes do not announce themselves) and
  then performs the unplanned hardware-reset recovery.

The ``EXT-PROACTIVE`` experiment races these against a time-based warm
rejuvenation schedule over simulated weeks.
"""

from __future__ import annotations

import typing

from repro.core.host import Host
from repro.errors import ConfigError
from repro.vmm.hypervisor import VmmState


class HeapExhaustionCrasher:
    """Continuously leaks VMM heap; crashes the VMM at exhaustion.

    The leak survives nothing: each new VMM generation starts with a
    fresh heap, so regular rejuvenation keeps the crash permanently out
    of reach — the proactive win.
    """

    def __init__(
        self,
        host: Host,
        leak_bytes_per_hour: int,
        tick_s: float = 1800.0,
    ) -> None:
        if leak_bytes_per_hour <= 0:
            raise ConfigError("leak rate must be positive")
        if tick_s <= 0:
            raise ConfigError("tick must be positive")
        self.host = host
        self.leak_bytes_per_hour = leak_bytes_per_hour
        self.tick_s = tick_s
        self.crashes: list[float] = []

    def run(self, until: float) -> typing.Generator:
        """Leak on a fixed tick until ``until`` (a process)."""
        sim = self.host.sim
        leak_per_tick = int(self.leak_bytes_per_hour * self.tick_s / 3600.0)
        while sim.now < until:
            yield sim.timeout(min(self.tick_s, until - sim.now))
            vmm = self.host.vmm
            if vmm is None or vmm.state is not VmmState.RUNNING:
                continue  # mid-reboot or already crashed: nothing to leak
            vmm.heap.leak_bytes(leak_per_tick)
            if vmm.heap.available_bytes <= 0:
                vmm.crash(reason="heap exhausted")
                self.crashes.append(sim.now)
        return self.crashes


class CrashWatchdog:
    """Detects a crashed VMM after a delay and recovers the host."""

    def __init__(
        self,
        host: Host,
        detection_timeout_s: float = 60.0,
        poll_interval_s: float = 10.0,
    ) -> None:
        if detection_timeout_s < 0:
            raise ConfigError("detection timeout must be >= 0")
        if poll_interval_s <= 0:
            raise ConfigError("poll interval must be positive")
        self.host = host
        self.detection_timeout_s = detection_timeout_s
        self.poll_interval_s = poll_interval_s
        self.recoveries: list[tuple[float, float]] = []
        """(crash detected at, recovery finished at) pairs."""
        self._waiter: typing.Any = None

    def run(self, until: float) -> typing.Generator:
        """Wait for a crashed VMM and recover it (a process).

        Event-driven equivalent of a 10-second poll loop: simulating every
        idle tick over weeks of simulated time costs ~100k events per
        simulated week, so the watchdog instead sleeps until a
        ``vmm.crash`` trace record and then replays the poll-grid float
        arithmetic to act at the exact tick the polling loop would have
        noticed the crash on.
        """
        sim = self.host.sim
        poll = self.poll_interval_s

        def on_crash(record: typing.Any) -> None:
            waiter = self._waiter
            if waiter is not None:
                self._waiter = None
                waiter.succeed(record.time)

        sim.trace.subscribe("vmm.crash", on_crash)
        anchor = sim.now
        while True:
            if anchor >= until:
                return self.recoveries
            vmm = self.host.vmm
            if vmm is None or vmm.state is not VmmState.CRASHED:
                self._waiter = crashed = sim.event(name="watchdog.wake")
                yield crashed | sim.timeout(until - sim.now)
                self._waiter = None
                if sim.now >= until:
                    return self.recoveries
                vmm = self.host.vmm
                if vmm is None or vmm.state is not VmmState.CRASHED:
                    continue  # already recovered by the time we woke
            crash_time = sim.now
            # First poll tick at or after the crash, accumulated with the
            # same float steps the polling loop would have taken.  A crash
            # landing exactly on a tick is seen by that tick: the crasher's
            # own timer predates the poll timer, so it fires first.
            tick = anchor + min(poll, until - anchor)
            while tick < crash_time:
                tick += min(poll, until - tick)
            if tick >= until:
                # The polling loop exits at the horizon without acting.
                return self.recoveries
            if tick > crash_time:
                yield sim.timeout(tick - crash_time)
            # Heartbeats must miss for a while before anyone is sure.
            yield sim.timeout(self.detection_timeout_s)
            detected = sim.now
            sim.trace.record("watchdog.detected", host=self.host.name)
            yield from self.host.recover_from_crash()
            self.recoveries.append((detected, sim.now))
            anchor = sim.now
