"""Rejuvenation scheduling policies (§3.2, Figure 2).

:class:`TimeBasedRejuvenator` drives a host through the paper's usage
model: each guest OS is rejuvenated a fixed interval after *its own* last
rejuvenation, and the VMM is rejuvenated on its own (longer) period.  The
figure-2 behaviour falls out of one rule: a **cold** VMM reboot reboots
every guest, so it counts as an OS rejuvenation and pushes each guest's
next one out; a **warm** (or saved) reboot leaves guest schedules alone.

:class:`ThresholdRejuvenator` is the load/condition-based variant
(Garg et al., cited as [12]): it watches VMM heap utilization and
rejuvenates when a threshold is crossed — the "rejuvenate because aging
is observed" policy, implemented as an extension.  It is one instance of
the control plane's general detector loop: the crossing logic is the
shared :class:`repro.control.Hysteresis` gate (single-fire with re-arm
and cooldown) and checks tick on the drift-free grid from
:func:`repro.control.next_tick`.  The old private loop both re-fired on
every check while utilization stayed high (duplicate triggers under
``dom0-only`` reboots, which never reset the VMM heap) and re-anchored
its interval after each reboot, drifting off the sampling grid.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.detectors import (
    Hysteresis,
    heap_utilization_signal,
    next_tick,
)
from repro.core.host import Host
from repro.core.strategies import RebootStrategy
from repro.errors import ConfigError
from repro.units import WEEK


@dataclasses.dataclass(frozen=True)
class ScheduledEvent:
    """One rejuvenation the policy performed."""

    time: float
    kind: str
    """``"os"`` or ``"vmm"``."""

    target: str
    """Domain name for OS rejuvenation, strategy value for VMM."""

    duration: float


class TimeBasedRejuvenator:
    """Time-based rejuvenation of guests and the VMM (§3.2)."""

    def __init__(
        self,
        host: Host,
        strategy: "str | RebootStrategy" = RebootStrategy.WARM,
        os_interval_s: float = WEEK,
        vmm_interval_s: float = 4 * WEEK,
    ) -> None:
        if os_interval_s <= 0 or vmm_interval_s <= 0:
            raise ConfigError("rejuvenation intervals must be positive")
        self.host = host
        self.strategy = (
            RebootStrategy(strategy) if isinstance(strategy, str) else strategy
        )
        self.os_interval_s = os_interval_s
        self.vmm_interval_s = vmm_interval_s
        self.events: list[ScheduledEvent] = []
        self._last_os: dict[str, float] = {}
        self._last_vmm = host.sim.now

    @property
    def _vmm_reboot_also_rejuvenates_os(self) -> bool:
        return self.strategy is RebootStrategy.COLD

    def run(self, until: float) -> typing.Generator:
        """Drive the host's rejuvenation schedule to ``until`` (a process).

        Rejuvenations that would *start* after ``until`` are not begun.
        """
        sim = self.host.sim
        for name in self.host.vm_specs:
            self._last_os.setdefault(name, sim.now)
        while True:
            next_os_name, next_os_at = self._next_os()
            next_vmm_at = self._last_vmm + self.vmm_interval_s
            next_at = min(next_os_at, next_vmm_at)
            if next_at > until:
                remaining = until - sim.now
                if remaining > 0:
                    yield sim.timeout(remaining)
                return self.events
            # A rejuvenation that overran may leave next_at in the past;
            # perform the overdue one immediately.
            yield sim.timeout(max(0.0, next_at - sim.now))
            # Near-ties go to the VMM rejuvenation: when both land at the
            # same instant, doing the VMM first lets a cold reboot subsume
            # the pending OS rejuvenation instead of duplicating it.
            if next_vmm_at <= next_os_at + 1.0:
                yield from self._rejuvenate_vmm()
            else:
                yield from self._rejuvenate_os(next_os_name)

    def _next_os(self) -> tuple[str, float]:
        name = min(self._last_os, key=lambda n: (self._last_os[n], n))
        return name, self._last_os[name] + self.os_interval_s

    def _rejuvenate_os(self, name: str) -> typing.Generator:
        sim = self.host.sim
        started = sim.now
        yield from self.host.reboot_guest(name)
        self._last_os[name] = started
        self.events.append(
            ScheduledEvent(started, "os", name, sim.now - started)
        )

    def _rejuvenate_vmm(self) -> typing.Generator:
        sim = self.host.sim
        started = sim.now
        yield from self.host.reboot(self.strategy)
        self._last_vmm = started
        if self._vmm_reboot_also_rejuvenates_os:
            # Figure 2(b): the cold reboot rejuvenated every OS, so their
            # next rejuvenations are rescheduled from now.
            for name in self._last_os:
                self._last_os[name] = started
        self.events.append(
            ScheduledEvent(started, "vmm", self.strategy.value, sim.now - started)
        )

    # -- reporting ---------------------------------------------------------------

    def count(self, kind: str) -> int:
        """How many rejuvenations of ``kind`` ('os'/'vmm') were done."""
        return sum(1 for e in self.events if e.kind == kind)

    def total_downtime_proxy(self) -> float:
        """Sum of rejuvenation durations (an upper bound on service
        downtime; exact downtime comes from the trace)."""
        return sum(e.duration for e in self.events)


class ThresholdRejuvenator:
    """Condition-based rejuvenation: act when heap aging crosses a line.

    The crossing is a single-fire hysteresis gate: a utilization parked
    at (or above) the threshold triggers exactly one rejuvenation, and
    the gate re-arms only once utilization falls back below
    ``rearm_utilization`` (default: the threshold itself).  Checks land
    on the absolute grid ``start + k * check_interval_s`` no matter how
    long a reboot takes.
    """

    def __init__(
        self,
        host: Host,
        strategy: "str | RebootStrategy" = RebootStrategy.WARM,
        heap_threshold: float = 0.8,
        check_interval_s: float = 3600.0,
        rearm_utilization: float | None = None,
        cooldown_s: float = 0.0,
    ) -> None:
        if not 0 < heap_threshold < 1:
            raise ConfigError("heap_threshold must be in (0, 1)")
        if check_interval_s <= 0:
            raise ConfigError("check_interval_s must be positive")
        if rearm_utilization is not None and not (
            0 <= rearm_utilization <= heap_threshold
        ):
            raise ConfigError(
                "rearm_utilization must be in [0, heap_threshold]"
            )
        if cooldown_s < 0:
            raise ConfigError("cooldown_s must be >= 0")
        self.host = host
        self.strategy = (
            RebootStrategy(strategy) if isinstance(strategy, str) else strategy
        )
        self.heap_threshold = heap_threshold
        self.check_interval_s = check_interval_s
        self._signal = heap_utilization_signal(host)
        self._gate = Hysteresis(
            heap_threshold,
            rearm=rearm_utilization,
            cooldown_s=cooldown_s,
            direction="above",
        )
        self.rejuvenations: list[float] = []
        self.triggers: list[float] = []

    def run(self, until: float) -> typing.Generator:
        """Poll heap utilization; rejuvenate on threshold crossing."""
        sim = self.host.sim
        origin = sim.now
        while True:
            tick = next_tick(origin, self.check_interval_s, sim.now)
            if tick > until:
                if until > sim.now:
                    yield sim.timeout(until - sim.now)
                return self.rejuvenations
            yield sim.timeout(tick - sim.now)
            value = self._signal()
            if value is None:
                continue  # VMM down mid-reboot: not an aging signal
            if self._gate.observe(sim.now, value):
                sim.trace.record(
                    "aging.threshold.trigger", utilization=value
                )
                self.triggers.append(sim.now)
                yield from self.host.reboot(self.strategy)
                self.rejuvenations.append(sim.now)
