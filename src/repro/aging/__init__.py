"""Software aging and rejuvenation: faults, detectors, policies, availability.

§2 motivates rejuvenation with concrete Xen defects; this package injects
them (:class:`AgingFaults`), watches their effect (:class:`AgingMonitor`),
schedules rejuvenation (time- and threshold-based policies, §3.2), and
computes service availability from measured downtimes (§5.3).

The policy/detector classes depend on :mod:`repro.core` (they drive a
host), while the VMM depends on :class:`AgingFaults` from here — so those
heavier exports are loaded lazily to keep the import graph acyclic.
"""

from repro.aging.availability import (
    RejuvenationPlan,
    format_availability,
    paper_plans,
)
from repro.aging.faults import AgingFaults

__all__ = [
    "AgingFaults",
    "AgingMonitor",
    "CrashWatchdog",
    "HeapExhaustionCrasher",
    "RejuvenationPlan",
    "ResourceSample",
    "ScheduledEvent",
    "ThresholdRejuvenator",
    "TimeBasedRejuvenator",
    "format_availability",
    "paper_plans",
]

_LAZY = {
    "AgingMonitor": ("repro.aging.detectors", "AgingMonitor"),
    "CrashWatchdog": ("repro.aging.watchdog", "CrashWatchdog"),
    "HeapExhaustionCrasher": ("repro.aging.watchdog", "HeapExhaustionCrasher"),
    "ResourceSample": ("repro.aging.detectors", "ResourceSample"),
    "ScheduledEvent": ("repro.aging.policy", "ScheduledEvent"),
    "ThresholdRejuvenator": ("repro.aging.policy", "ThresholdRejuvenator"),
    "TimeBasedRejuvenator": ("repro.aging.policy", "TimeBasedRejuvenator"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attribute = _LAZY[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module 'repro.aging' has no attribute {name!r}")
