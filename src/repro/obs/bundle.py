"""Per-shard telemetry blobs and the fleet-wide merged bundle.

A fleet run executes its shards in worker processes; the simulators die
with the workers, so anything observability needs must travel home as
plain data through the cell protocol.  :func:`capture_shard` snapshots
one shard simulator into a :class:`ShardTelemetry` blob — resolved span
intervals, the decision/availability trace records, full metric sample
series, and the control plane's audit + trigger log —
and :meth:`TelemetryBundle.merge` folds the ordered blobs into one
fleet-wide bundle with host→shard provenance.

The bundle is the *single source* for every fleet-scale export:

* :meth:`TelemetryBundle.to_perfetto` — one merged Chrome trace-event
  document, one process group per shard (span thread tracks + counter
  tracks), loadable directly in https://ui.perfetto.dev;
* :meth:`TelemetryBundle.to_prometheus` — one text exposition page whose
  samples carry a ``shard`` label on top of the instrument labels;
* :func:`repro.obs.timeline.decision_timelines` — causal chains per
  control-plane decision, reconstructed from the bundle alone.

Everything is strict-JSON plain data and built in deterministic order,
so serial, sharded-parallel and cache-replayed fleet runs produce
bit-identical bundles (the same discipline the fleet report itself is
pinned to).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from repro.analysis.obs import render_prometheus
from repro.errors import AnalysisError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator

_US = 1e6
"""Chrome trace-event timestamps are microseconds; the clock is seconds."""

RECORD_PREFIXES = ("service.", "control.decision")
"""Trace-record kinds a shard blob carries: the availability signal
(service up/down transitions) and the control plane's decisions."""


@dataclasses.dataclass
class ShardTelemetry:
    """One shard's observability state, as plain data.

    ``spans`` are resolved intervals (begin/end records joined):
    ``{"span", "parent", "name", "actor", "detail", "start", "end"}``
    with ``end: None`` for a span still open at capture.  ``records``
    are flattened trace records ``{"time", "kind", **fields}`` for the
    :data:`RECORD_PREFIXES` kinds.  ``metrics`` is a
    :meth:`~repro.simkernel.metrics.MetricsRegistry.series_snapshot`.
    ``audit``/``triggers`` are the shard control loop's decision audit
    and trigger log (empty without a policy).
    """

    shard: int
    hosts: list[str]
    spans: list[dict]
    records: list[dict]
    metrics: dict[str, list[dict]]
    audit: list[dict]
    triggers: list[dict]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardTelemetry":
        try:
            return cls(**data)
        except TypeError as exc:
            raise AnalysisError(f"malformed shard telemetry: {exc}") from None


def capture_shard(
    sim: "Simulator",
    shard: int,
    hosts: typing.Sequence[str],
    audit: typing.Sequence[dict] = (),
    triggers: typing.Sequence[dict] = (),
) -> ShardTelemetry:
    """Snapshot one shard simulator into a plain-data telemetry blob."""
    spans: list[dict] = []
    by_id: dict[int, dict] = {}
    for record in sim.trace.select("span."):
        if record.kind == "span.begin":
            node = {
                "span": record["span"],
                "parent": record["parent"],
                "name": record["name"],
                "actor": record["actor"],
                "detail": record["detail"],
                "start": record.time,
                "end": None,
            }
            by_id[node["span"]] = node
            spans.append(node)
        else:  # span.end
            node = by_id.get(record["span"])
            if node is None:
                raise AnalysisError(
                    f"span.end for unknown span id {record['span']}"
                )
            node["end"] = record.time
    flat: list[tuple[int, dict]] = []
    for prefix in RECORD_PREFIXES:
        for record in sim.trace.select(prefix):
            flat.append(
                (
                    record.sequence,
                    {"time": record.time, "kind": record.kind, **record.fields},
                )
            )
    flat.sort(key=lambda item: item[0])
    return ShardTelemetry(
        shard=shard,
        hosts=list(hosts),
        spans=spans,
        records=[record for _, record in flat],
        metrics=sim.metrics.series_snapshot() if sim.metrics.enabled else {},
        audit=list(audit),
        triggers=list(triggers),
    )


@dataclasses.dataclass
class TelemetryBundle:
    """The fleet-wide merge of every shard's telemetry blob."""

    fleet: str
    shards: list[ShardTelemetry]

    @classmethod
    def merge(
        cls, fleet: str, blobs: typing.Sequence[dict]
    ) -> "TelemetryBundle":
        """Fold ordered per-shard blob dicts (the cell payload form) into
        one bundle.  Order must be shard order — the fleet runner passes
        payloads already ordered, which keeps merged documents (and the
        bit-identity gate over them) deterministic."""
        shards = [ShardTelemetry.from_dict(blob) for blob in blobs]
        for position, shard in enumerate(shards):
            if shard.shard != position:
                raise AnalysisError(
                    f"telemetry blobs out of order: position {position} "
                    f"holds shard {shard.shard}"
                )
        return cls(fleet=fleet, shards=shards)

    # -- provenance ---------------------------------------------------------------

    def host_shard(self) -> dict[str, int]:
        """Host name -> owning shard index (the provenance map)."""
        out: dict[str, int] = {}
        for shard in self.shards:
            for host in shard.hosts:
                if host in out:
                    raise AnalysisError(
                        f"host {host!r} appears in shards {out[host]} "
                        f"and {shard.shard}"
                    )
                out[host] = shard.shard
        return out

    # -- (de)serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "fleet": self.fleet,
            "hosts": self.host_shard(),
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryBundle":
        try:
            fleet = data["fleet"]
            blobs = data["shards"]
        except (TypeError, KeyError) as exc:
            raise AnalysisError(
                f"malformed telemetry bundle: missing {exc}"
            ) from None
        return cls.merge(fleet, blobs)

    def write(self, path: "str | pathlib.Path") -> pathlib.Path:
        """Serialize the bundle to strict JSON at ``path``."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, allow_nan=False)
        return path

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "TelemetryBundle":
        """Load a bundle previously serialized with :meth:`write`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise AnalysisError(f"{path}: no such telemetry bundle") from None
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"{path}: invalid JSON: {exc}") from None
        return cls.from_dict(data)

    # -- merged Perfetto document -------------------------------------------------

    def to_perfetto(self) -> dict:
        """One merged Chrome trace-event document for the whole fleet.

        Each shard contributes two process groups: ``shardN spans``
        (pid ``2N+1``; one thread track per span actor) and ``shardN
        metrics`` (pid ``2N+2``; one counter track per instrument label
        set).  Track names already carry host labels, so the per-shard
        process split is pure provenance — sorting by pid in the Perfetto
        UI groups every host's activity under its owning shard.
        """
        events: list[dict] = []
        for shard in self.shards:
            span_pid = 2 * shard.shard + 1
            metric_pid = 2 * shard.shard + 2
            events.append(
                {
                    "ph": "M", "pid": span_pid, "name": "process_name",
                    "args": {"name": f"shard{shard.shard} spans"},
                }
            )
            actors = sorted({span["actor"] for span in shard.spans})
            tids = {actor: tid for tid, actor in enumerate(actors, start=1)}
            for actor, tid in tids.items():
                events.append(
                    {
                        "ph": "M", "pid": span_pid, "tid": tid,
                        "name": "thread_name", "args": {"name": actor},
                    }
                )
            horizon = max(
                (
                    span["end"] if span["end"] is not None else span["start"]
                    for span in shard.spans
                ),
                default=0.0,
            )
            for span in shard.spans:
                end = span["end"] if span["end"] is not None else horizon
                args: dict[str, typing.Any] = {
                    "span": span["span"],
                    "parent": span["parent"],
                    "detail": span["detail"],
                    "shard": shard.shard,
                }
                if span["end"] is None:
                    args["open"] = True
                name = (
                    f"{span['name']}:{span['detail']}"
                    if span["detail"]
                    else span["name"]
                )
                events.append(
                    {
                        "ph": "X",
                        "pid": span_pid,
                        "tid": tids[span["actor"]],
                        "ts": span["start"] * _US,
                        "dur": (end - span["start"]) * _US,
                        "name": name,
                        "args": args,
                    }
                )
            if not shard.metrics:
                continue
            events.append(
                {
                    "ph": "M", "pid": metric_pid, "name": "process_name",
                    "args": {"name": f"shard{shard.shard} metrics"},
                }
            )
            for metric_name in sorted(shard.metrics):
                for entry in shard.metrics[metric_name]:
                    if "times" not in entry:
                        continue  # histograms keep no series
                    label_text = ",".join(
                        f"{k}={v}" for k, v in sorted(entry["labels"].items())
                    )
                    track = (
                        f"{metric_name}{{{label_text}}}"
                        if label_text
                        else metric_name
                    )
                    for t, v in zip(entry["times"], entry["values"]):
                        events.append(
                            {
                                "ph": "C", "pid": metric_pid, "ts": t * _US,
                                "name": track, "args": {"value": v},
                            }
                        )
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def write_perfetto(self, path: "str | pathlib.Path") -> pathlib.Path:
        """Serialize :meth:`to_perfetto` to ``path`` (strict JSON)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_perfetto(), handle, allow_nan=False)
        return path

    # -- merged Prometheus page ---------------------------------------------------

    def merged_snapshot(self) -> dict[str, list[dict]]:
        """A fleet-wide value snapshot: every shard's instruments with a
        ``shard`` provenance label merged into their label sets.

        The shape matches :meth:`MetricsRegistry.snapshot`, so the
        existing :func:`repro.analysis.obs.render_prometheus` renders it
        unchanged — one page for the whole fleet.
        """
        out: dict[str, list[dict]] = {}
        for shard in self.shards:
            for metric_name in shard.metrics:
                for entry in shard.metrics[metric_name]:
                    merged: dict[str, typing.Any] = {
                        "labels": {
                            **entry["labels"],
                            "shard": str(shard.shard),
                        }
                    }
                    for key in ("value", "count", "sum", "buckets"):
                        if key in entry:
                            merged[key] = entry[key]
                    out.setdefault(metric_name, []).append(merged)
        return out

    def to_prometheus(self) -> str:
        """The merged fleet Prometheus text exposition."""
        return render_prometheus(self.merged_snapshot())

    def write_prometheus(self, path: "str | pathlib.Path") -> pathlib.Path:
        """Write :meth:`to_prometheus` to ``path``."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_prometheus(), encoding="utf-8")
        return path

    # -- SLO inputs ---------------------------------------------------------------

    def sli_rows(self) -> list[dict]:
        """Per-workload SLI rows recovered from the ``fleet.*`` gauges.

        ``run_fleet_shard`` publishes each measured row's downtime and
        availability as gauges labelled ``(host, vm, kind)``; reading
        them back here is what lets the SLO engine (and the obs-check
        zero-deviation gate) run from the merged telemetry alone.
        """
        rows: dict[tuple, dict] = {}
        for shard in self.shards:
            for metric_name, field in (
                ("fleet.downtime_seconds", "downtime_s"),
                ("fleet.availability", "availability"),
            ):
                for entry in shard.metrics.get(metric_name, ()):
                    key = tuple(sorted(entry["labels"].items()))
                    row = rows.setdefault(
                        key, {**entry["labels"], "shard": shard.shard}
                    )
                    row[field] = entry["value"]
        return [rows[key] for key in sorted(rows)]

    def all_records(self) -> list[dict]:
        """Every shard's trace records with shard provenance attached."""
        out: list[dict] = []
        for shard in self.shards:
            for record in shard.records:
                out.append({**record, "shard": shard.shard})
        return out
