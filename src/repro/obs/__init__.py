"""Fleet-scale observability: merged telemetry, SLOs, decision timelines.

The scenario/fleet tiers *collect* telemetry (metric series, causal
spans, control audits); this package is where it becomes *legible* at
fleet scale:

* :mod:`repro.obs.bundle` — per-shard telemetry blobs captured in fleet
  workers and merged into one :class:`TelemetryBundle` with host→shard
  provenance, exportable as a single Perfetto document and a single
  Prometheus page for the whole fleet;
* :mod:`repro.obs.slo` — declarative service-level objectives (the
  ``[slo]`` TOML table) evaluated into burn-rate series and pass/fail
  reports;
* :mod:`repro.obs.timeline` — every control-plane decision reconciled
  with its surrounding telemetry into a causal chain: detector trigger →
  plan → action spans → downtime consequence;
* ``python -m repro.obs`` — the CLI over all three (``explain`` a bundle,
  ``check`` the whole pipeline end-to-end).
"""

from repro.obs.bundle import ShardTelemetry, TelemetryBundle, capture_shard
from repro.obs.slo import (
    SLOSpec,
    burn_rate_series,
    evaluate_slo,
    histogram_quantile,
    merge_latency_histogram,
    outage_intervals,
    render_slo,
)
from repro.obs.timeline import (
    DecisionTimeline,
    decision_timelines,
    render_timelines,
)

__all__ = [
    "DecisionTimeline",
    "SLOSpec",
    "ShardTelemetry",
    "TelemetryBundle",
    "burn_rate_series",
    "capture_shard",
    "decision_timelines",
    "evaluate_slo",
    "histogram_quantile",
    "merge_latency_histogram",
    "outage_intervals",
    "render_slo",
    "render_timelines",
]
