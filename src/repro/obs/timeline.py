"""Decision timelines: the causal chain behind every control-plane action.

A ``control.decision`` audit record says *what* the control plane did;
this module reconstructs *why* and *what happened next*, using only a
merged :class:`~repro.obs.bundle.TelemetryBundle` — no simulator, no
report.  Each decision is reconciled with its surrounding telemetry into
one :class:`DecisionTimeline`:

``trigger``
    the detector firing that put the target host on the planner's radar
    (the latest matching entry in the shard's trigger log at or before
    the decision);
``cycle`` / ``action``
    the ``control.cycle`` and ``control.action`` spans the decision was
    recorded inside — joined through the ``span`` field the executor
    stamps on every audit entry (deferred decisions land in the cycle
    span only: the planner never opened an action for them);
``mechanisms``
    the mechanism spans that ran inside the action interval (``reboot``
    for rejuvenation, ``migration.vm`` for live migration);
``consequences``
    the service outage intervals overlapping the action — the downtime
    the decision cost, which the SLO engine prices.

The chain is deterministic because every join key is deterministic: span
ids are allocation-ordered, the trigger log is sorted, and audit order
is execution order.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import AnalysisError
from repro.obs.bundle import ShardTelemetry, TelemetryBundle
from repro.obs.slo import outage_intervals

TRIGGER_DETECTORS: dict[str, frozenset[str]] = {
    "migrate": frozenset({"overload", "underload", "net", "disk"}),
    "rejuvenate-warm": frozenset({"aging"}),
    "rejuvenate-cold": frozenset({"aging"}),
    "no-op": frozenset(),
}
"""Which detector kinds can motivate each action kind: migrations answer
pressure signals (CPU load, NIC rate, disk busy), rejuvenations answer
the aging detector, and a no-op answers nothing."""

MECHANISM_SPANS = frozenset({"reboot", "migration.vm"})
"""Span names that are *mechanisms* — the simulation activity an applied
control action consists of."""


@dataclasses.dataclass
class DecisionTimeline:
    """One decision's reconstructed causal chain, as plain data.

    ``decision`` is the audit entry itself; ``trigger`` the originating
    detector firing (``None`` for unsolicited decisions such as no-ops);
    ``cycle``/``action`` the resolved span intervals (``action`` is
    ``None`` for deferred decisions); ``mechanisms`` the mechanism spans
    inside the action; ``consequences`` the outage intervals overlapping
    it.
    """

    shard: int
    decision: dict
    trigger: dict | None
    cycle: dict | None
    action: dict | None
    mechanisms: list[dict]
    consequences: list[dict]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        """A human-readable causal chain, one hop per line."""
        d = self.decision
        head = f"{d['action']} {d['target']}"
        if d.get("vm"):
            head += f" vm={d['vm']}"
        if d.get("source"):
            head += f" from={d['source']}"
        lines = [
            f"[shard {self.shard}] t={d['time']:.1f}s cycle {d['cycle']}: "
            f"{head} -> {d['outcome']}"
        ]
        if d.get("reason"):
            lines.append(f"  reason: {d['reason']}")
        if self.trigger is not None:
            t = self.trigger
            lines.append(
                f"  trigger: {t['detector']} on {t['host']} at "
                f"t={t['time']:.1f}s (value {t['value']:.6g})"
            )
        else:
            lines.append("  trigger: none recorded")
        if self.action is not None:
            end = self.action["end"]
            shown = f"{end:.1f}s" if end is not None else "open"
            lines.append(
                f"  action span #{self.action['span']} "
                f"[{self.action['start']:.1f}s, {shown}] "
                f"in cycle span #{self.action['parent']}"
            )
        elif self.cycle is not None:
            lines.append(
                f"  deferred inside cycle span #{self.cycle['span']} "
                f"at t={self.cycle['start']:.1f}s"
            )
        for span in self.mechanisms:
            lines.append(
                f"  mechanism: {span['name']} ({span['actor']}"
                f"{', ' + span['detail'] if span['detail'] else ''}) "
                f"[{span['start']:.1f}s, {span['end']:.1f}s]"
            )
        for outage in self.consequences:
            lines.append(
                f"  downtime: {outage['service']}@{outage['domain']} "
                f"[{outage['start']:.1f}s, {outage['end']:.1f}s] = "
                f"{outage['end'] - outage['start']:.2f}s"
            )
        if not self.consequences and self.action is not None:
            lines.append("  downtime: none")
        return "\n".join(lines)


def _shard_timelines(shard: ShardTelemetry) -> list[DecisionTimeline]:
    spans_by_id = {span["span"]: span for span in shard.spans}
    out: list[DecisionTimeline] = []
    for entry in shard.audit:
        span_id = entry.get("span")
        node = spans_by_id.get(span_id)
        if node is None:
            raise AnalysisError(
                f"shard {shard.shard}: audit entry at t={entry.get('time')} "
                f"references unknown span {span_id!r}"
            )
        if node["name"] == "control.action":
            action: dict | None = node
            cycle = spans_by_id.get(node["parent"])
        elif node["name"] == "control.cycle":
            action = None  # deferred: recorded straight into the cycle
            cycle = node
        else:
            raise AnalysisError(
                f"shard {shard.shard}: audit span {span_id} is a "
                f"{node['name']!r} span, expected control.action/cycle"
            )
        wanted = TRIGGER_DETECTORS.get(entry["action"], frozenset())
        hosts = {entry.get("target"), entry.get("source")} - {None, ""}
        trigger = None
        for candidate in shard.triggers:
            if candidate["time"] > entry["time"]:
                break  # trigger log is time-sorted
            if candidate["detector"] in wanted and candidate["host"] in hosts:
                trigger = candidate
        mechanisms: list[dict] = []
        consequences: list[dict] = []
        if action is not None and action["end"] is not None:
            lo, hi = action["start"], action["end"]
            actors = hosts | ({entry.get("vm")} - {None, ""})
            mechanisms = [
                span
                for span in shard.spans
                if span["name"] in MECHANISM_SPANS
                and span["actor"] in actors
                and span["start"] >= lo
                and span["end"] is not None
                and span["end"] <= hi
            ]
            consequences = outage_intervals(shard.records, lo, hi)
        out.append(
            DecisionTimeline(
                shard=shard.shard,
                decision=entry,
                trigger=trigger,
                cycle=cycle,
                action=action,
                mechanisms=mechanisms,
                consequences=consequences,
            )
        )
    return out


def decision_timelines(bundle: TelemetryBundle) -> list[DecisionTimeline]:
    """Every decision's causal chain across the fleet, in shard order
    (and execution order within each shard — audit order)."""
    out: list[DecisionTimeline] = []
    for shard in bundle.shards:
        out.extend(_shard_timelines(shard))
    return out


def render_timelines(timelines: typing.Sequence[DecisionTimeline]) -> str:
    """All chains as one report block (empty string for no decisions)."""
    return "\n".join(timeline.render() for timeline in timelines)
