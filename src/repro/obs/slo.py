"""Declarative SLOs evaluated over telemetry: targets, burn rates, verdicts.

An :class:`SLOSpec` states what the paper's availability story promises
in machine-checkable form — an availability target, a downtime budget,
a latency quantile bound — and :func:`evaluate_slo` turns measured
telemetry (per-workload SLI rows, service outage intervals, the merged
request-latency histogram) into a plain-data **SLO report**: one verdict
per objective plus a windowed **burn-rate series** in the SRE sense
(error budget consumed per window, normalized so ``burn == 1.0`` means
"exactly on budget").

The spec is TOML-shaped and attaches to scenario and fleet specs as an
``[slo]`` table (see :class:`repro.scenario.spec.ScenarioSpec` /
:class:`repro.fleet.spec.FleetSpec`); attaching one implies metrics
collection for the run, exactly like ``[policy]``.  Evaluation consumes
only plain data, so the same engine runs over a live simulator's
telemetry (scenario runner) and over a merged cross-shard
:class:`~repro.obs.bundle.TelemetryBundle` (fleet runner) — the fleet
path never needs the simulators back.

Verdicts are strict: an objective whose input data is missing (latency
target without a latency histogram, say) **fails** with ``measured:
None`` rather than passing vacuously — a silently unmeasurable SLO is an
instrumentation bug, not a healthy fleet.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import AnalysisError, ScenarioError


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ScenarioError(f"{where}: {message}")


@dataclasses.dataclass(frozen=True)
class SLOSpec:
    """One service-level objective set (the ``[slo]`` TOML table).

    At least one objective must be stated:

    ``availability``
        Mean measured availability across SLI rows must reach this target
        (a ratio in ``(0, 1]``).
    ``downtime_budget_s``
        Total measured downtime summed across SLI rows must not exceed
        this many seconds.
    ``latency_target_s`` / ``latency_quantile``
        The ``latency_quantile``-th quantile of the request-latency
        histogram must not exceed ``latency_target_s`` seconds.

    ``window_s`` sets the burn-rate tile width; the burn series always
    accompanies the verdicts when an availability or downtime objective
    is stated.
    """

    availability: float | None = None
    downtime_budget_s: float | None = None
    latency_target_s: float | None = None
    latency_quantile: float = 0.99
    window_s: float = 60.0

    def __post_init__(self) -> None:
        _require(
            self.availability is not None
            or self.downtime_budget_s is not None
            or self.latency_target_s is not None,
            "slo",
            "needs at least one objective (availability, "
            "downtime_budget_s, or latency_target_s)",
        )
        if self.availability is not None:
            _require(
                0 < self.availability <= 1,
                "slo.availability",
                f"must be a ratio in (0, 1], got {self.availability}",
            )
        if self.downtime_budget_s is not None:
            _require(
                self.downtime_budget_s >= 0,
                "slo.downtime_budget_s",
                f"must be >= 0, got {self.downtime_budget_s}",
            )
        if self.latency_target_s is not None:
            _require(
                self.latency_target_s > 0,
                "slo.latency_target_s",
                f"must be positive, got {self.latency_target_s}",
            )
        _require(
            0 < self.latency_quantile < 1,
            "slo.latency_quantile",
            f"must be in (0, 1), got {self.latency_quantile}",
        )
        _require(
            self.window_s > 0,
            "slo.window_s",
            f"must be positive, got {self.window_s}",
        )

    @classmethod
    def from_dict(cls, data: dict, where: str = "slo") -> "SLOSpec":
        _require(
            isinstance(data, dict),
            where,
            f"expected a table, got {type(data).__name__}",
        )
        unknown = sorted(set(data) - _SLO_FIELDS)
        if unknown:
            raise ScenarioError(
                f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(_SLO_FIELDS))}"
            )
        for key, value in data.items():
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise ScenarioError(
                    f"{where}.{key}: expected a number, "
                    f"got {type(value).__name__}"
                )
        try:
            return cls(**data)
        except TypeError as exc:  # pragma: no cover - _check above bars this
            raise ScenarioError(f"{where}: {exc}") from None

    def to_dict(self) -> dict:
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }


_SLO_FIELDS = frozenset(f.name for f in dataclasses.fields(SLOSpec))


# ---------------------------------------------------------------------------
# telemetry -> SLI inputs
# ---------------------------------------------------------------------------

def outage_intervals(
    records: typing.Sequence[dict],
    start: float,
    end: float,
) -> list[dict]:
    """Service outage intervals from ``service.down``/``service.up``
    records, clipped to ``[start, end]``.

    Records are the plain-dict form a telemetry blob carries
    (``{"time": ..., "kind": "service.down", "service": ..., "domain":
    ...}``).  A service still down at ``end`` is clipped there — the
    window boundary is the measurement horizon, not a recovery.
    """
    open_since: dict[tuple[str, str], float] = {}
    intervals: list[dict] = []

    def close(key: tuple[str, str], at: float) -> None:
        down = open_since.pop(key)
        lo, hi = max(down, start), min(at, end)
        if hi > lo:
            intervals.append(
                {"domain": key[0], "service": key[1], "start": lo, "end": hi}
            )

    for record in records:
        kind = record.get("kind")
        if kind not in ("service.down", "service.up"):
            continue
        key = (str(record.get("domain", "")), str(record.get("service", "")))
        if kind == "service.down":
            open_since.setdefault(key, float(record["time"]))
        elif key in open_since:
            close(key, float(record["time"]))
    for key in sorted(open_since):
        close(key, end)
    intervals.sort(key=lambda i: (i["start"], i["domain"], i["service"]))
    return intervals


def merge_latency_histogram(
    entries: typing.Sequence[dict],
) -> dict | None:
    """Fold snapshot histogram entries (possibly from many label sets and
    shards) into one ``{"count", "sum", "buckets"}`` histogram.

    Entries must share bucket bounds (they do: bounds come from the
    closed METRIC_SCHEMA).  Returns ``None`` for an empty entry list.
    """
    merged: dict | None = None
    for entry in entries:
        if merged is None:
            merged = {
                "count": entry["count"],
                "sum": entry["sum"],
                "buckets": [list(pair) for pair in entry["buckets"]],
            }
            continue
        if len(entry["buckets"]) != len(merged["buckets"]):
            raise AnalysisError(
                "latency histograms have mismatched bucket counts"
            )
        merged["count"] += entry["count"]
        merged["sum"] += entry["sum"]
        for pair, (le, n) in zip(merged["buckets"], entry["buckets"]):
            if pair[0] != le:
                raise AnalysisError(
                    f"latency histogram bound mismatch: {pair[0]!r} vs {le!r}"
                )
            pair[1] += n
    return merged


def histogram_quantile(histogram: dict, quantile: float) -> float | None:
    """The ``quantile``-th value of a cumulative-bucket histogram.

    Prometheus ``histogram_quantile`` semantics: linear interpolation
    inside the bucket the rank lands in, 0 as the first bucket's lower
    bound, and the last *finite* bound when the rank lands in +Inf.
    ``None`` for an empty histogram.
    """
    count = histogram["count"]
    if count <= 0:
        return None
    rank = quantile * count
    lower = 0.0
    for le, cumulative in histogram["buckets"]:
        if le == "+Inf":
            return lower  # beyond the last finite bound: report that bound
        bound = float(le)
        if cumulative >= rank:
            # previous cumulative: cumulative of the bucket below
            below = 0
            for le2, c2 in histogram["buckets"]:
                if le2 == le:
                    break
                below = c2
            in_bucket = cumulative - below
            if in_bucket <= 0:
                return bound
            return lower + (bound - lower) * (rank - below) / in_bucket
        lower = bound
    return lower  # pragma: no cover - "+Inf" bucket is always present


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------

def burn_rate_series(
    spec: SLOSpec,
    outages: typing.Sequence[dict],
    start: float,
    end: float,
    units: int,
) -> list[dict]:
    """Error-budget burn per ``window_s`` tile over ``[start, end]``.

    ``units`` is the number of independently-measured services (SLI
    rows): the budget per tile is ``tile_length * units * budget_fraction``
    where the budget fraction comes from the availability target (or,
    with only a downtime budget stated, from spreading that budget evenly
    over the evaluation span).  ``burn`` is outage-seconds over budget —
    ``1.0`` means exactly on budget — or ``None`` where the budget is 0
    (a 100% availability target burns infinitely on any outage; strict
    JSON has no Infinity).
    """
    if end <= start:
        raise AnalysisError(f"empty SLO window [{start}, {end}]")
    units = max(units, 1)
    if spec.availability is not None:
        budget_fraction = 1.0 - spec.availability
    elif spec.downtime_budget_s is not None:
        budget_fraction = spec.downtime_budget_s / ((end - start) * units)
    else:
        return []
    tiles: list[dict] = []
    cursor = start
    while cursor < end:
        tile_end = min(cursor + spec.window_s, end)
        downtime = 0.0
        for outage in outages:
            lo = max(outage["start"], cursor)
            hi = min(outage["end"], tile_end)
            if hi > lo:
                downtime += hi - lo
        budget = (tile_end - cursor) * units * budget_fraction
        tiles.append(
            {
                "start": cursor,
                "end": tile_end,
                "downtime_s": downtime,
                "budget_s": budget,
                "burn": downtime / budget if budget > 0 else None,
            }
        )
        cursor = tile_end
    return tiles


def evaluate_slo(
    spec: SLOSpec,
    *,
    start: float,
    end: float,
    rows: typing.Sequence[dict],
    outages: typing.Sequence[dict] = (),
    latency: dict | None = None,
) -> dict:
    """Evaluate one SLO spec into a plain-data report.

    ``rows`` are SLI rows: dicts carrying ``availability`` and/or a
    downtime field (``downtime_s`` or ``total_downtime_s``) per measured
    workload.  ``outages`` are :func:`outage_intervals`; ``latency`` is a
    merged histogram (:func:`merge_latency_histogram`).  The report is
    JSON-safe and travels inside scenario/fleet reports.
    """
    objectives: list[dict] = []

    if spec.availability is not None:
        values = [
            float(row["availability"])
            for row in rows
            if row.get("availability") is not None
        ]
        measured = sum(values) / len(values) if values else None
        objectives.append(
            {
                "kind": "availability",
                "target": spec.availability,
                "measured": measured,
                "passed": measured is not None
                and measured >= spec.availability,
            }
        )

    if spec.downtime_budget_s is not None:
        values = [
            float(row["downtime_s"] if "downtime_s" in row
                  else row["total_downtime_s"])
            for row in rows
            if "downtime_s" in row or "total_downtime_s" in row
        ]
        measured = sum(values) if values else None
        objectives.append(
            {
                "kind": "downtime",
                "target": spec.downtime_budget_s,
                "measured": measured,
                "passed": measured is not None
                and measured <= spec.downtime_budget_s,
            }
        )

    if spec.latency_target_s is not None:
        measured = (
            histogram_quantile(latency, spec.latency_quantile)
            if latency is not None
            else None
        )
        objectives.append(
            {
                "kind": "latency",
                "quantile": spec.latency_quantile,
                "target": spec.latency_target_s,
                "measured": measured,
                "passed": measured is not None
                and measured <= spec.latency_target_s,
            }
        )

    return {
        "start": start,
        "end": end,
        "objectives": objectives,
        "burn": burn_rate_series(spec, outages, start, end, len(rows)),
        "passed": all(objective["passed"] for objective in objectives),
    }


def render_slo(report: dict) -> str:
    """A human-readable block for one SLO report."""
    verdict = "PASS" if report["passed"] else "FAIL"
    lines = [
        f"slo {verdict} over [{report['start']:.1f}s, {report['end']:.1f}s]"
    ]
    for objective in report["objectives"]:
        measured = objective["measured"]
        shown = "unmeasured" if measured is None else f"{measured:.6g}"
        kind = objective["kind"]
        if kind == "latency":
            kind = f"latency p{objective['quantile'] * 100:g}"
        lines.append(
            f"  {kind}: measured {shown} vs target "
            f"{objective['target']:.6g} -> "
            f"{'ok' if objective['passed'] else 'VIOLATED'}"
        )
    burns = [t["burn"] for t in report["burn"] if t["burn"] is not None]
    if burns:
        lines.append(
            f"  burn rate: peak {max(burns):.3g}, "
            f"mean {sum(burns) / len(burns):.3g} over "
            f"{len(report['burn'])} window(s)"
        )
    return "\n".join(lines)
