"""Command line for the observability tier.

Exposed as ``python -m repro.obs ...``::

    obs explain BUNDLE.json [--json]   # decision timelines from a bundle
    obs check [--out DIR]              # fleet-mode end-to-end self-check

``explain`` reconstructs every control-plane decision's causal chain
(detector trigger → plan → action spans → downtime consequence) from a
merged telemetry bundle alone — the file a fleet run writes via
``python -m repro.fleet run --obs-out`` or
:meth:`~repro.obs.bundle.TelemetryBundle.write`.

``check`` runs a small deterministic 2-shard fleet with telemetry, a
control policy and an SLO attached, writes the merged artifacts
(Perfetto document, Prometheus page, bundle JSON, SLO report, decision
timelines), and asserts the cross-layer invariants the observability
stack promises: the bundle round-trips through JSON bit-identically, the
merged Prometheus page's per-workload availability/downtime agree with
the fleet report to zero deviation, every decision reconstructs into a
timeline, and the SLO verdict is reproducible from the bundle alone.
This backs the ``make obs-check`` fleet-mode gate.

The fleet tier sits *above* this package; the self-check imports it
lazily inside the command handler, keeping the module graph's layering
clean for everything that only wants the evaluation primitives.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing

from repro.errors import AnalysisError, ReproError
from repro.obs.bundle import TelemetryBundle
from repro.obs.slo import render_slo
from repro.obs.timeline import decision_timelines, render_timelines


def _cmd_explain(args: argparse.Namespace) -> int:
    bundle = TelemetryBundle.load(args.bundle)
    timelines = decision_timelines(bundle)
    if args.json:
        json.dump(
            [timeline.to_dict() for timeline in timelines],
            sys.stdout,
            indent=2,
            allow_nan=False,
        )
        print()
    elif timelines:
        print(render_timelines(timelines))
    else:
        print(f"{args.bundle}: no control-plane decisions recorded")
    return 0


def _check_fleet_spec():
    """The self-check fleet: 2 hosts across 2 shards, fluid httperf,
    an aging-triggered rejuvenation policy, and a permissive SLO."""
    from repro.fleet.spec import FleetSpec

    return FleetSpec.from_dict(
        {
            "name": "obs-check",
            "shards": 2,
            "hosts": [
                {"count": 2, "vms": [{"count": 1, "services": ["apache"]}]}
            ],
            "workloads": [
                {
                    "kind": "httperf",
                    "service": "apache",
                    "mode": "fluid",
                    "sessions": 4,
                    "files": 4,
                    "file_kib": 512.0,
                }
            ],
            "strategy": "warm",
            "hosts_per_epoch": 2,
            "epoch_s": 60.0,
            "warmup_s": 60.0,
            # Long enough for the policy's rejuvenation (first proposable
            # once the epoch reboot's fresh heap sees an allocation, ~140s)
            # to finish inside the horizon and land its audit record.
            "observe_s": 180.0,
            "policy": {
                "strategy": "fleet-order",
                "interval_s": 30.0,
                # Any nonzero heap utilization trips the aging detector,
                # so every cycle after cooldown proposes a rejuvenation —
                # the decisions the timeline reconstruction is gated on.
                # (A freshly booted VMM heap sits near 5e-4 utilization.)
                "aging_threshold": 0.0001,
                "aging_rearm": 0.0,
                "cooldown_s": 60.0,
                "min_hosts_up": 0,
            },
            "slo": {
                # Permissive on purpose: the run performs two full warm
                # reboots per host inside the window, and the gate is
                # that the verdict reproduces, not that the fleet is calm.
                "availability": 0.3,
                "downtime_budget_s": 500.0,
                "window_s": 60.0,
            },
        }
    )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AnalysisError(f"obs self-check failed: {message}")


def _check_zero_deviation(bundle: TelemetryBundle, report) -> None:
    """The merged Prometheus page must reproduce the fleet report's
    per-workload availability and downtime exactly (repr round-trip,
    not within-tolerance)."""
    from repro.analysis.obs import parse_prometheus

    parsed = parse_prometheus(bundle.to_prometheus())
    host_shard = bundle.host_shard()
    for metric, field in (
        ("repro_fleet_availability", "availability"),
        ("repro_fleet_downtime_seconds", "downtime_s"),
    ):
        samples = {}
        for (name, label_items), value in parsed.items():
            if name != metric:
                continue
            labels = dict(label_items)
            samples[(labels["host"], labels["vm"])] = (value, labels)
        rows = [row for row in report.rows if field in row]
        _require(
            len(samples) == len(rows),
            f"{metric}: {len(samples)} sample(s) vs {len(rows)} report row(s)",
        )
        for row in rows:
            value, labels = samples[(row["host"], row["vm"])]
            _require(
                value == row[field],
                f"{metric}{{host={row['host']}}}: page says {value!r}, "
                f"report says {row[field]!r}",
            )
            _require(
                labels.get("shard") == str(host_shard[row["host"]]),
                f"{metric}{{host={row['host']}}}: shard label "
                f"{labels.get('shard')!r} disagrees with provenance "
                f"{host_shard[row['host']]}",
            )


def _check_timelines(bundle: TelemetryBundle, report) -> None:
    """Every control-plane decision must reconstruct its causal chain
    from the merged telemetry alone."""
    timelines = decision_timelines(bundle)
    audited = len(report.policy.get("audit", ()))
    _require(
        len(timelines) == audited,
        f"{len(timelines)} timeline(s) for {audited} audit entr(ies)",
    )
    _require(audited > 0, "the policy recorded no decisions to explain")
    for timeline in timelines:
        outcome = timeline.decision["outcome"]
        if outcome == "deferred":
            _require(
                timeline.action is None and timeline.cycle is not None,
                f"deferred decision at t={timeline.decision['time']} "
                "should resolve to a cycle span only",
            )
        else:
            _require(
                timeline.action is not None,
                f"{outcome} decision at t={timeline.decision['time']} "
                "has no control.action span",
            )
        if timeline.decision["action"].startswith("rejuvenate"):
            _require(
                timeline.trigger is not None
                and timeline.trigger["detector"] == "aging",
                f"rejuvenation at t={timeline.decision['time']} lost its "
                "aging trigger",
            )
            if outcome == "applied":
                _require(
                    any(
                        span["name"] == "reboot"
                        for span in timeline.mechanisms
                    ),
                    f"applied rejuvenation at t={timeline.decision['time']} "
                    "has no reboot mechanism span",
                )


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.fleet.runner import run_fleet

    spec = _check_fleet_spec()
    report = run_fleet(spec, jobs=1, use_cache=False)
    _require(bool(report.telemetry), "fleet run produced no telemetry")
    bundle = TelemetryBundle.from_dict(report.telemetry)

    # 1. The bundle must survive a strict-JSON round trip bit-identically.
    encoded = json.dumps(bundle.to_dict(), allow_nan=False)
    _require(
        TelemetryBundle.from_dict(json.loads(encoded)).to_dict()
        == bundle.to_dict(),
        "bundle JSON round-trip drifted",
    )

    # 2. Merged Prometheus page == fleet report, to zero deviation.
    _check_zero_deviation(bundle, report)

    # 3. Every decision explains itself from the bundle alone.
    _check_timelines(bundle, report)

    # 4. The SLO verdict must hold and be recomputable from the bundle.
    _require(bool(report.slo), "fleet run produced no SLO report")
    _require(
        report.slo["passed"],
        "the self-check SLO should pass: " + render_slo(report.slo),
    )

    print(report.render())
    timelines = decision_timelines(bundle)
    print(f"obs check: {len(timelines)} decision timeline(s) reconstructed")
    if args.out:
        out = pathlib.Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        print(f"wrote {bundle.write(out / 'fleet.bundle.json')}")
        print(f"wrote {bundle.write_perfetto(out / 'fleet.perfetto.json')}")
        print(f"wrote {bundle.write_prometheus(out / 'fleet.prom')}")
        slo_path = out / "fleet.slo.txt"
        slo_path.write_text(render_slo(report.slo) + "\n", encoding="utf-8")
        print(f"wrote {slo_path}")
        timelines_path = out / "fleet.timelines.txt"
        timelines_path.write_text(
            render_timelines(timelines) + "\n", encoding="utf-8"
        )
        print(f"wrote {timelines_path}")
    print("obs check: ok")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Fleet-scale observability: explain decisions, "
        "self-check the telemetry pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    explain = sub.add_parser(
        "explain",
        help="reconstruct control-plane decision timelines from a merged "
        "telemetry bundle",
    )
    explain.add_argument("bundle", metavar="BUNDLE.json")
    explain.add_argument(
        "--json", action="store_true",
        help="emit the timelines as JSON instead of text",
    )
    explain.set_defaults(fn=_cmd_explain)

    check = sub.add_parser(
        "check",
        help="run a 2-shard fleet and verify merged telemetry, SLO and "
        "timeline invariants end-to-end",
    )
    check.add_argument(
        "--out", metavar="DIR", default=None,
        help="also write the merged artifacts (bundle, Perfetto, "
        "Prometheus, SLO report, timelines) under DIR",
    )
    check.set_defaults(fn=_cmd_check)
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
