"""Exception hierarchy for the RootHammer reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package failures without masking programming errors such as
``TypeError``.  Subsystems define narrower classes here rather than locally so
that cross-layer code (e.g. the rejuvenation controller catching VMM faults)
does not need to import deep modules just for exception types.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class ProcessKilled(SimulationError):
    """A simulated process was forcibly killed (not a normal interrupt)."""


class HardwareError(ReproError):
    """A simulated hardware component was misused or failed."""


class PowerError(HardwareError):
    """An operation required power state the machine is not in."""


class MemoryError_(ReproError):
    """Base class for simulated memory-management errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`; exported as ``SimMemoryError`` from the package.
    """


class OutOfMemoryError(MemoryError_):
    """The machine-frame allocator or a heap had no space left."""


class FrameOwnershipError(MemoryError_):
    """A frame extent was freed or claimed by a non-owner."""


class P2MError(MemoryError_):
    """A pseudo-physical to machine mapping was inconsistent."""


class VMMError(ReproError):
    """Base class for hypervisor-level errors."""


class HypercallError(VMMError):
    """A hypercall failed or was invoked with invalid arguments."""


class DomainError(VMMError):
    """A domain operation was invalid for the domain's current state."""


class VMMCrashed(VMMError):
    """The hypervisor crashed (e.g. heap exhaustion under aging)."""


class XenstoreError(VMMError):
    """The xenstore daemon rejected an operation or is out of memory."""


class GuestError(ReproError):
    """Base class for guest-OS level errors."""


class ServiceError(GuestError):
    """A guest service failed to start, stop, or serve a request."""


class FilesystemError(GuestError):
    """A guest filesystem operation referenced a missing file or block."""


class RejuvenationError(ReproError):
    """A rejuvenation operation (warm/saved/cold reboot) failed."""


class MigrationError(ReproError):
    """A live-migration operation failed."""


class ClusterError(ReproError):
    """A cluster-level orchestration error."""


class ControlError(ReproError):
    """The autonomic control plane was misconfigured or misused."""


class FleetError(ReproError):
    """A sharded-fleet spec was inconsistent or a shard broke protocol."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class ConfigError(ReproError):
    """A configuration value was out of range or inconsistent."""


class ScenarioError(ConfigError):
    """A declarative scenario spec was malformed or cannot be built."""
