"""EXT-AUTONOMIC: fixed-schedule vs autonomic consolidate-then-rejuvenate.

An extension beyond the paper's measurements, quantifying its motivating
scenario (§1: server consolidation concentrates many VMs on few
machines, so rejuvenating a VMM "stops all the VMs on it" unless the
operator migrates them away first):

Three hosts: two serve apache under httperf load, the third idles with
two ssh-only VMs.  Both arms must rejuvenate whatever needs it inside
one observation window.

* **fixed** — the classic rolling schedule: every host gets a warm VMM
  reboot in turn, loaded or not.  The apache probers eat one outage per
  web host.
* **autonomic** — no schedule.  The control plane's underload detector
  flags the idle host from its windowed runnable-jobs gauge, the
  first-fit-decreasing strategy drains its VMs onto the loaded hosts by
  live migration, and only the emptied host is warm-rejuvenated.  The
  apache probers never notice.

The claims checked: the autonomic plan strictly reduces service
downtime, keeps availability at least as high, touches only the idle
host, and stays inside its migration budget — consolidation as a
*precondition* for cheap rejuvenation, which is the paper's pitch.
"""

from __future__ import annotations

import typing

from repro.analysis.report import ComparisonRow, render_table
from repro.experiments.common import ExperimentResult, run_self_decomposed
from repro.scenario.runner import run_scenario
from repro.scenario.spec import (
    HostSpec,
    MaintenanceSpec,
    PolicySpec,
    ScenarioSpec,
    VMSpec,
    WorkloadSpec,
)

_ARMS = ("fixed", "autonomic")

_WARMUP_S = 40.0
_OBSERVE_S = 480.0
"""Covers the fixed arm's three warm reboots and, in the autonomic arm,
one detector window (60 s), the idle host's evacuation and its reboot."""

_UNDERLOAD = 0.001
"""Mean runnable jobs per core below which a host counts as idle.  The
ssh-only host sits at exactly 0 over any window; the httperf-loaded web
hosts hold a windowed mean several times this watermark (four
closed-loop clients keep request-handling jobs runnable)."""

_MIGRATION_BUDGET = 4


def _hosts() -> tuple[HostSpec, ...]:
    return (
        HostSpec(
            name="web{i}",
            count=2,
            vms=(VMSpec(memory_gib=1.0, services=("apache",)),),
        ),
        HostSpec(name="idle0", vms=(VMSpec(count=2, memory_gib=1.0),)),
    )


def _workloads() -> tuple[WorkloadSpec, ...]:
    return (
        WorkloadSpec(kind="httperf", concurrency=4),
        WorkloadSpec(kind="prober", service="apache"),
    )


def _spec(arm: str) -> ScenarioSpec:
    if arm == "fixed":
        return ScenarioSpec(
            name="ext-autonomic/fixed",
            hosts=_hosts(),
            workloads=_workloads(),
            maintenance=MaintenanceSpec(
                kind="rolling", strategy="warm", settle_s=10.0
            ),
            warmup_s=_WARMUP_S,
            observe_s=_OBSERVE_S,
        )
    if arm == "autonomic":
        return ScenarioSpec(
            name="ext-autonomic/autonomic",
            hosts=_hosts(),
            workloads=_workloads(),
            policy=PolicySpec(
                strategy="first-fit-decreasing",
                underload=_UNDERLOAD,
                migration_budget=_MIGRATION_BUDGET,
            ),
            warmup_s=_WARMUP_S,
            observe_s=_OBSERVE_S,
        )
    raise ValueError(arm)  # pragma: no cover - guarded by the caller


def _run_arm(arm: str) -> dict:
    """One arm's scenario run, as the runner's plain payload dict."""
    return run_scenario(_spec(arm)).to_dict()


def _probe_downtime(payload: dict) -> float:
    """Total apache downtime across the arm's probers."""
    return sum(
        w["metrics"]["total_downtime_s"]
        for w in payload["workloads"]
        if w["kind"] == "prober"
    )


def _availability(payload: dict) -> float:
    """Mean prober availability over the observation window."""
    spans = [
        1.0 - min(w["metrics"]["total_downtime_s"], _OBSERVE_S) / _OBSERVE_S
        for w in payload["workloads"]
        if w["kind"] == "prober"
    ]
    return sum(spans) / len(spans) if spans else 1.0


def _rejuvenated_hosts(payload: dict) -> list[str]:
    """Hosts the autonomic arm's executor actually rejuvenated."""
    return [
        entry["target"]
        for entry in payload["policy"].get("audit", ())
        if entry["action"].startswith("rejuvenate")
        and entry["outcome"] == "applied"
    ]


def cells(full: bool = False) -> list[tuple[tuple, str, dict]]:
    """Independent measurement cells for the parallel/serial runners."""
    return [((arm,), "_run_arm", {"arm": arm}) for arm in _ARMS]


def run(full: bool = False) -> ExperimentResult:
    """Race the rolling schedule against the autonomic control loop."""
    return run_self_decomposed(full)


def assemble(
    full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    """Fold the two arms into the schedule-vs-autonomic comparison."""
    result = ExperimentResult(
        "EXT-AUTONOMIC",
        "fixed schedule vs autonomic consolidation + rejuvenation (extension)",
    )
    fixed = payloads[("fixed",)]
    autonomic = payloads[("autonomic",)]
    fixed_downtime = _probe_downtime(fixed)
    auto_downtime = _probe_downtime(autonomic)
    fixed_availability = _availability(fixed)
    auto_availability = _availability(autonomic)
    policy = autonomic["policy"]
    rejuvenated = _rejuvenated_hosts(autonomic)
    result.data["fixed"] = {
        "downtime_s": fixed_downtime,
        "availability": fixed_availability,
        "rejuvenations": fixed["maintenance"].get("hosts_rejuvenated", 0),
    }
    result.data["autonomic"] = {
        "downtime_s": auto_downtime,
        "availability": auto_availability,
        "rejuvenations": policy.get("rejuvenations", 0),
        "migrations": policy.get("migrations", 0),
        "rejuvenated_hosts": rejuvenated,
    }
    result.tables.append(
        render_table(
            [
                "plan", "hosts rejuvenated", "migrations",
                "apache downtime (s)", "availability",
            ],
            [
                (
                    "fixed (rolling warm)",
                    fixed["maintenance"].get("hosts_rejuvenated", 0),
                    0,
                    round(fixed_downtime, 2),
                    f"{fixed_availability * 100:.4f} %",
                ),
                (
                    "autonomic (consolidate, then rejuvenate idle)",
                    policy.get("rejuvenations", 0),
                    policy.get("migrations", 0),
                    round(auto_downtime, 2),
                    f"{auto_availability * 100:.4f} %",
                ),
            ],
        )
    )
    result.rows = [
        ComparisonRow(
            "autonomic plan has less service downtime (1=yes)",
            1.0,
            1.0 if auto_downtime < fixed_downtime else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "autonomic availability at least as high (1=yes)",
            1.0,
            1.0 if auto_availability >= fixed_availability else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "only the idle host is rejuvenated (1=yes)",
            1.0,
            1.0 if rejuvenated == ["idle0"] else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "migrations stay within budget (1=yes)",
            1.0,
            1.0
            if 0 < policy.get("migrations", 0) <= _MIGRATION_BUDGET
            and policy.get("failed", 1) == 0
            else 0.0,
            "",
            tolerance=0.01,
        ),
    ]
    return result
