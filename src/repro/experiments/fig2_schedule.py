"""Figure 2: the timing interaction between OS and VMM rejuvenation.

With the warm-VM reboot, VMM rejuvenation is independent of the OS
rejuvenation schedule — each guest keeps its weekly cadence (Fig. 2(a)).
With the cold-VM reboot, a VMM rejuvenation *is* an OS rejuvenation, so
every guest's next OS rejuvenation is rescheduled from that point
(Fig. 2(b)).

The runner drives both policies over eight simulated weeks and checks the
resulting event trains: cadence preserved under warm, phase-shifted under
cold, and fewer standalone OS rejuvenations under cold (the α credit).
"""

from __future__ import annotations

from repro.aging.policy import TimeBasedRejuvenator
from repro.analysis.report import ComparisonRow, render_table
from repro.experiments.common import ExperimentResult, build_testbed
from repro.units import DAY, WEEK


def _schedule(strategy: str, weeks: float = 9.0) -> TimeBasedRejuvenator:
    controller = build_testbed(2)
    rejuvenator = TimeBasedRejuvenator(
        controller.host,
        strategy=strategy,
        os_interval_s=WEEK,
        vmm_interval_s=4 * WEEK,
    )
    controller.run_process(rejuvenator.run(controller.now + weeks * WEEK))
    return rejuvenator


def _os_gaps(rejuvenator: TimeBasedRejuvenator, domain: str) -> list[float]:
    times = [
        e.time for e in rejuvenator.events if e.kind == "os" and e.target == domain
    ]
    return [b - a for a, b in zip(times, times[1:])]


def run(full: bool = False) -> ExperimentResult:
    """Reproduce the Figure 2 schedule interaction over nine weeks."""
    result = ExperimentResult(
        "FIG2", "rejuvenation timing: warm keeps the OS cadence, cold shifts it"
    )
    warm = _schedule("warm")
    cold = _schedule("cold")

    result.tables.append(
        render_table(
            ["policy", "os rejuvenations", "vmm rejuvenations"],
            [
                ("warm", warm.count("os"), warm.count("vmm")),
                ("cold", cold.count("os"), cold.count("vmm")),
            ],
        )
    )
    result.tables.append(
        render_table(
            ["policy", "event", "day", "target"],
            [
                (name, e.kind, e.time / DAY, e.target)
                for name, r in (("warm", warm), ("cold", cold))
                for e in r.events
            ],
        )
    )
    warm_gaps = _os_gaps(warm, "vm00") + _os_gaps(warm, "vm01")
    cold_gaps = _os_gaps(cold, "vm00") + _os_gaps(cold, "vm01")
    result.data["warm_events"] = warm.events
    result.data["cold_events"] = cold.events

    # Under warm, every OS gap is exactly one week (cadence independent of
    # the VMM rejuvenation); under cold at least one gap stretches past a
    # week because the VMM reboot reset the OS clock.
    warm_cadence_kept = all(abs(g - WEEK) < DAY for g in warm_gaps)
    cold_rescheduled = any(g > WEEK + DAY for g in cold_gaps)
    result.rows = [
        ComparisonRow(
            "warm keeps weekly OS cadence (1=yes)",
            1.0,
            1.0 if warm_cadence_kept else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "cold reschedules OS rejuvenation (1=yes)",
            1.0,
            1.0 if cold_rescheduled else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "cold performs fewer standalone OS rejuvenations (1=yes)",
            1.0,
            1.0 if cold.count("os") < warm.count("os") else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "both perform 2 VMM rejuvenations in 9 weeks",
            2.0,
            (warm.count("vmm") + cold.count("vmm")) / 2,
            "",
            tolerance=0.01,
        ),
    ]
    return result
