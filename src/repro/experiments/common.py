"""Shared experiment infrastructure: testbed builders and result records.

Every experiment runner returns an :class:`ExperimentResult` carrying
paper-vs-measured :class:`~repro.analysis.report.ComparisonRow` entries
plus rendered tables, so the CLI, the benchmark harness and EXPERIMENTS.md
all show the same artifact.
"""

from __future__ import annotations

import dataclasses
import sys
import typing

from repro.analysis.report import (
    ComparisonRow,
    all_within_tolerance,
    render_comparison,
)
from repro.config import TimingProfile
from repro.core import RootHammer
from repro.scenario.builder import ScenarioBuilder
from repro.scenario.spec import HostSpec, ScenarioSpec, VMSpec
from repro.units import GiB


@dataclasses.dataclass
class ExperimentResult:
    """The outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    rows: list[ComparisonRow] = dataclasses.field(default_factory=list)
    tables: list[str] = dataclasses.field(default_factory=list)
    data: dict[str, typing.Any] = dataclasses.field(default_factory=dict)

    @property
    def shape_reproduced(self) -> bool:
        return all_within_tolerance(self.rows)

    def render(self) -> str:
        """The comparison block plus any extra tables, as text."""
        parts = [render_comparison(f"{self.experiment_id}: {self.title}", self.rows)]
        parts.extend(self.tables)
        return "\n\n".join(parts)


def build_testbed(
    n_vms: int,
    services: tuple[str, ...] = ("ssh",),
    memory_bytes: int = 1 * GiB,
    profile: TimingProfile | None = None,
    seed: int = 0,
) -> RootHammer:
    """The paper's server machine with ``n_vms`` identical VMs, started.

    A thin shim over the declarative scenario layer: the keyword surface
    the experiment modules use, expressed as a :class:`ScenarioSpec` and
    materialized by the one stack-construction path.  ``memory_bytes``
    round-trips through the spec's GiB field exactly (division and
    multiplication by a power of two are both lossless in binary floats).
    """
    fleet = (
        (VMSpec(count=n_vms, memory_gib=memory_bytes / GiB, services=services),)
        if n_vms
        else ()
    )
    spec = ScenarioSpec(
        name="testbed",
        hosts=(HostSpec(vms=fleet),),
        seed=seed,
    )
    built = ScenarioBuilder(spec, profile=profile).build()
    return built.controller


def run_decomposed(module: typing.Any, full: bool) -> ExperimentResult:
    """Run a cell-decomposed experiment module serially.

    A decomposed module exposes ``cells(full)`` — a list of
    ``(key, fn_name, params)`` tuples describing independent measurements
    on fresh testbeds — and ``assemble(full, payloads)``, which folds the
    per-cell payloads back into the :class:`ExperimentResult`.  The serial
    path below and the process-pool path in
    :mod:`repro.experiments.parallel` execute the *same* cells and the
    *same* assembly, so serial/parallel equivalence holds by construction:
    every cell builds its own deterministically-seeded simulator, making
    its payload independent of which process runs it and in what order.
    """
    payloads = {
        key: getattr(module, fn_name)(**params)
        for key, fn_name, params in module.cells(full)
    }
    return module.assemble(full, payloads)


def run_self_decomposed(full: bool) -> ExperimentResult:
    """:func:`run_decomposed` on the *calling* experiment module.

    Decomposed runners all define ``run`` as "execute my own cells", which
    used to read ``run_decomposed(sys.modules[__name__], full)`` in every
    module; this helper resolves the caller's module from the stack
    instead, so a runner's ``run`` is one self-contained line.
    """
    caller = sys._getframe(1).f_globals["__name__"]
    return run_decomposed(sys.modules[caller], full)


def default_vm_counts(full: bool) -> list[int]:
    """The n-axis of Figures 5 and 6: 1..11 (or a sparse subset)."""
    return list(range(1, 12)) if full else [1, 3, 7, 11]


def default_memory_gib(full: bool) -> list[int]:
    """The memory axis of Figure 4: 1..11 GiB (or a sparse subset)."""
    return list(range(1, 12)) if full else [1, 5, 11]
