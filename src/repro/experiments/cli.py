"""Command-line entry point: ``roothammer-experiments``.

Usage::

    roothammer-experiments --list
    roothammer-experiments FIG6 SEC52
    roothammer-experiments --all --full
"""

from __future__ import annotations

import argparse
import sys
import time
import typing

from repro.experiments import (
    describe,
    experiment_ids,
    run_experiment,
)


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="roothammer-experiments",
        description=(
            "Reproduce the evaluation of 'A Fast Rejuvenation Technique "
            "for Server Consolidation with Virtual Machines' (DSN 2007)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids (FIG4, FIG5, SEC52, FIG6, SEC53, FIG7, FIG8, "
        "SEC56, FIG9, FIG2)",
    )
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full sweep sizes (slower)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--export",
        metavar="DIR",
        help="also write each result as CSV and JSON into DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key in experiment_ids():
            print(f"{key:6s} {describe(key)}")
        return 0

    targets = experiment_ids() if args.all else [e.upper() for e in args.experiments]
    if not targets:
        parser.error("give experiment ids, --all, or --list")

    failures = 0
    for key in targets:
        started = time.time()
        result = run_experiment(key, full=args.full)
        elapsed = time.time() - started
        print(result.render())
        print(f"[{key} took {elapsed:.1f}s wall clock]\n")
        if args.export:
            from repro.analysis.export import write_result

            for path in write_result(result, args.export):
                print(f"  wrote {path}")
        if not result.shape_reproduced:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) deviated from the paper's shape",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
