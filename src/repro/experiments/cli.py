"""Command-line entry point: ``roothammer-experiments``.

Usage::

    roothammer-experiments --list
    roothammer-experiments FIG6 SEC52
    roothammer-experiments --all --full
    python -m repro.experiments.cli run --all --jobs 4
    python -m repro.experiments.cli scenario list
    python -m repro.experiments.cli scenario run examples/mixed_rolling.toml

Sweeps run through the parallel cell runner by default: independent
measurement cells fan across ``--jobs`` worker processes and completed
cells are memoised in a content-addressed cache (disable with
``--no-cache``; ``--jobs 1`` executes the same cells in-process).

``scenario ...`` dispatches to the declarative scenario layer's CLI
(:mod:`repro.scenario.cli`): list registered scenarios, validate or
dry-build TOML specs, and run arbitrary spec files with zero new code.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import pathlib
import sys
import time
import typing

from repro.errors import ReproError
from repro.experiments import (
    describe,
    experiment_ids,
)


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenario":
        from repro.scenario.cli import main as scenario_main

        return scenario_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="roothammer-experiments",
        description=(
            "Reproduce the evaluation of 'A Fast Rejuvenation Technique "
            "for Server Consolidation with Virtual Machines' (DSN 2007)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids (FIG4, FIG5, SEC52, FIG6, SEC53, FIG7, FIG8, "
        "SEC56, FIG9, FIG2); an optional leading 'run' token is accepted, "
        "and 'scenario ...' dispatches to the scenario-layer CLI",
    )
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full sweep sizes (slower)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the cell sweep (default: all CPUs)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of reusing cached payloads",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete all cached cell payloads and exit",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        help="also write each result as CSV and JSON into DIR",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Perfetto trace (spans + metric counters) per "
        "simulation; forces --jobs 1 and --no-cache and enables metrics, "
        "since capture needs every cell to run in-process",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key in experiment_ids():
            print(f"{key:6s} {describe(key)}")
        return 0

    from repro.experiments.parallel import (
        SweepStats,
        clear_cache,
        run_all_parallel,
    )

    if args.clear_cache:
        print(f"removed {clear_cache()} cached payload(s)")
        return 0

    ids = list(args.experiments)
    if ids and ids[0].lower() == "run":  # `cli run --all --jobs N` quickstart
        ids = ids[1:]
    targets = experiment_ids() if args.all else [e.upper() for e in ids]
    if not targets:
        parser.error("give experiment ids, --all, or --list")

    jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
    use_cache = not args.no_cache
    capture: typing.Any = contextlib.nullcontext([])
    previous_metrics = os.environ.get("REPRO_METRICS")
    if args.trace_out:
        from repro.analysis.obs import capture_simulators

        jobs = 1  # subprocess cells would escape the capture hook
        use_cache = False  # cached cells build no simulator to capture
        os.environ["REPRO_METRICS"] = "1"
        capture = capture_simulators()
    stats = SweepStats()
    # perf_counter, not time.time: wall time jumps under NTP (simlint SL001).
    started = time.perf_counter()
    try:
        with capture as captured:
            results = run_all_parallel(
                full=args.full,
                jobs=jobs,
                use_cache=use_cache,
                experiments=targets,
                stats=stats,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if args.trace_out:
            if previous_metrics is None:
                del os.environ["REPRO_METRICS"]
            else:
                os.environ["REPRO_METRICS"] = previous_metrics
    elapsed = time.perf_counter() - started

    if args.trace_out:
        from repro.analysis.obs import write_perfetto

        target = pathlib.Path(args.trace_out)
        for index, sim in enumerate(captured):
            path = (
                target
                if len(captured) == 1
                else target.with_name(
                    f"{target.stem}-{index:02d}{target.suffix or '.json'}"
                )
            )
            print(f"  wrote {write_perfetto(path, sim.trace, sim.metrics)}")

    failures = 0
    for key in targets:
        result = results[key]
        print(result.render())
        print()
        if args.export:
            from repro.analysis.export import write_result

            for path in write_result(result, args.export):
                print(f"  wrote {path}")
        if not result.shape_reproduced:
            failures += 1
    print(
        f"[{len(targets)} experiment(s) in {elapsed:.1f}s wall clock; "
        f"{stats.total_cells} cells, {stats.cache_hits} cached, "
        f"{stats.executed} executed, jobs={jobs}]"
    )
    if failures:
        print(f"{failures} experiment(s) deviated from the paper's shape",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
