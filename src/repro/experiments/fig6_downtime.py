"""Figure 6: downtime of networked services across VM counts.

(a) ssh — warm 42 s vs cold 157 s vs saved 429 s at 11 VMs;
(b) JBoss — warm/saved unchanged (they never restart the server process)
    but cold grows to 241 s because JBoss must restart.

Downtime is measured the way the paper does: from when each VM's service
stops answering until it answers again, averaged over VMs.  The ssh run
also reproduces the §5.3 TCP observation — sessions survive warm reboots
and time out (60 s client timeout) during saved reboots.
"""

from __future__ import annotations

import typing

from repro.analysis.downtime import reboot_downtime_summary
from repro.analysis.report import ComparisonRow, render_table
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentResult,
    build_testbed,
    default_vm_counts,
    run_self_decomposed,
)
from repro.guest.tcp import SessionState, TcpSession

_STRATEGIES = ("warm", "saved", "cold")

_PAPER_11VM = {
    ("ssh", "warm"): 42.0,
    ("ssh", "cold"): 157.0,
    ("ssh", "saved"): 429.0,
    ("jboss", "warm"): 42.0,
    ("jboss", "cold"): 241.0,
    ("jboss", "saved"): 429.0,
}


def measure_downtime(
    n: int, service_kind: str, strategy: str, with_session: bool = False
) -> tuple[float, str | None]:
    """Mean service downtime for one (n, service, strategy) cell, plus the
    outcome of a 60 s-timeout TCP session if requested."""
    controller = build_testbed(n, services=(service_kind,))
    session = None
    if with_session:
        service = controller.guest("vm00").services[0]
        session = TcpSession(
            controller.sim, service, client_timeout_s=60.0, name=f"{strategy}-ssh"
        )
    t0 = controller.now
    controller.rejuvenate(strategy)
    controller.run_for(90)  # let the session monitor observe the outcome
    summary = reboot_downtime_summary(controller.sim.trace, since=t0)
    outcome = None
    if session is not None:
        outcome = session.state.value
        session.close()
    return summary.mean, outcome


def cells(full: bool = False) -> list[tuple[tuple, str, dict]]:
    """Independent measurement cells for the parallel/serial runners.

    TCP-session observation rides along on the largest ssh run of each
    strategy, exactly as in the paper's §5.3 narrative.
    """
    counts = default_vm_counts(full)
    out: list[tuple[tuple, str, dict]] = []
    for kind in ("ssh", "jboss"):
        for n in counts:
            for strategy in _STRATEGIES:
                out.append(
                    (
                        (kind, n, strategy),
                        "measure_downtime",
                        {
                            "n": n,
                            "service_kind": kind,
                            "strategy": strategy,
                            "with_session": kind == "ssh" and n == counts[-1],
                        },
                    )
                )
    return out


def run(full: bool = False) -> ExperimentResult:
    """Measure service downtime for every (n, service, strategy) cell."""
    return run_self_decomposed(full)


def assemble(
    full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    """Fold per-cell (mean downtime, session outcome) pairs into the
    Figure 6 result."""
    counts = default_vm_counts(full)
    result = ExperimentResult(
        "FIG6", "service downtime vs VM count (ssh and JBoss)"
    )
    strategies = _STRATEGIES
    sessions: dict[str, str | None] = {}
    for kind in ("ssh", "jboss"):
        table_rows: list[typing.Sequence[typing.Any]] = []
        curves: dict[str, list[tuple[int, float]]] = {s: [] for s in strategies}
        for n in counts:
            row: list[typing.Any] = [n]
            for strategy in strategies:
                mean, outcome = payloads[(kind, n, strategy)]
                curves[strategy].append((n, mean))
                row.append(mean)
                if outcome is not None:
                    sessions[strategy] = outcome
            table_rows.append(row)
        result.tables.append(
            f"-- {kind} --\n"
            + render_table(["VMs", "warm", "saved", "cold"], table_rows)
        )
        result.data[kind] = curves
        if counts[-1] != 11:
            raise ConfigError("Figure 6 anchors require the 11-VM point")
        for strategy in strategies:
            result.rows.append(
                ComparisonRow(
                    f"{kind} downtime, {strategy}, 11 VMs",
                    _PAPER_11VM[(kind, strategy)],
                    curves[strategy][-1][1],
                    "s",
                )
            )
    from repro.analysis.charts import bar_chart

    result.tables.append(
        bar_chart(
            "downtime at 11 VMs (s)",
            [
                (
                    kind,
                    {s: result.data[kind][s][-1][1] for s in strategies},
                )
                for kind in ("ssh", "jboss")
            ],
        )
    )
    result.data["ssh_sessions"] = sessions
    result.tables.append(
        render_table(
            ["strategy", "60 s-timeout ssh session"],
            sorted(sessions.items()),
        )
    )
    # §5.3's qualitative claims about session survival.
    result.rows.append(
        ComparisonRow(
            "warm keeps ssh session (1=yes)",
            1.0,
            1.0 if sessions.get("warm") == SessionState.CONNECTED.value else 0.0,
            "",
            tolerance=0.01,
        )
    )
    result.rows.append(
        ComparisonRow(
            "saved times ssh session out (1=yes)",
            1.0,
            1.0 if sessions.get("saved") == SessionState.TIMED_OUT.value else 0.0,
            "",
            tolerance=0.01,
        )
    )
    result.rows.append(
        ComparisonRow(
            "cold resets ssh session (1=yes)",
            1.0,
            1.0 if sessions.get("cold") == SessionState.RESET.value else 0.0,
            "",
            tolerance=0.01,
        )
    )
    return result
