"""§5.2: how fast is the VMM rebooted with quick reload vs hardware reset?

The paper measures the interval from "shutdown script completed" to "VMM
reboot completed": 11 s with quick reload, 59 s with a hardware reset —
the reload saves the 48-second power-on self-test.
"""

from __future__ import annotations

from repro.analysis.report import ComparisonRow, render_table
from repro.experiments.common import ExperimentResult, build_testbed


def _vmm_reboot_window(report) -> float:
    """Shutdown-script completion -> VMM (not dom0) back up."""
    names = {"vmm-shutdown", "quick-reload", "hardware-reset", "vmm-boot"}
    return sum(p.duration for p in report.phases if p.name in names)


def run(full: bool = False) -> ExperimentResult:
    """Time a bare VMM reboot via quick reload vs hardware reset."""
    result = ExperimentResult(
        "SEC52", "VMM reboot time: quick reload vs hardware reset"
    )
    # No domUs: the paper measures the bare VMM reboot.
    quick = _vmm_reboot_window(build_testbed(0).rejuvenate("warm"))
    reset = _vmm_reboot_window(build_testbed(0).rejuvenate("cold"))
    result.tables.append(
        render_table(
            ["method", "seconds"],
            [("quick reload", quick), ("hardware reset", reset)],
        )
    )
    result.data.update(quick_reload=quick, hardware_reset=reset)
    result.rows = [
        ComparisonRow("quick reload reboot", 11.0, quick, "s"),
        ComparisonRow("hardware-reset reboot", 59.0, reset, "s"),
        ComparisonRow("seconds saved", 48.0, reset - quick, "s"),
    ]
    return result
