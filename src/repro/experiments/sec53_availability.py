"""§5.3 availability analysis: nines under the weekly usage model.

Feeds *simulated* downtimes (11 JBoss VMs; OS rejuvenation of a single
VM) into the §3.2 usage model — OS rejuvenation weekly, VMM rejuvenation
every four weeks, α = 0.5 — and compares the resulting availabilities
with the paper's 99.993 % / 99.985 % / 99.977 %.
"""

from __future__ import annotations

from repro.aging.availability import format_availability, paper_plans
from repro.analysis.downtime import reboot_downtime_summary
from repro.analysis.report import ComparisonRow, render_table
from repro.experiments.common import ExperimentResult, build_testbed
from repro.experiments.fig6_downtime import measure_downtime


def measure_os_rejuvenation_downtime(n_vms: int = 11) -> float:
    """Downtime of rebooting one JBoss guest while its peers keep running
    (the paper's 33.6 s)."""
    controller = build_testbed(n_vms, services=("jboss",))
    t0 = controller.now
    controller.run_process(controller.host.reboot_guest("vm00"))
    summary = reboot_downtime_summary(
        controller.sim.trace, since=t0, service="jboss"
    )
    return summary.mean


def run(full: bool = False) -> ExperimentResult:
    """Compute availability nines from measured downtimes."""
    result = ExperimentResult(
        "SEC53", "availability under weekly OS / 4-weekly VMM rejuvenation"
    )
    n = 11
    os_downtime = measure_os_rejuvenation_downtime(n)
    downtimes = {
        strategy: measure_downtime(n, "jboss", strategy)[0]
        for strategy in ("warm", "cold", "saved")
    }
    plans = paper_plans(
        warm_downtime_s=downtimes["warm"],
        cold_downtime_s=downtimes["cold"],
        saved_downtime_s=downtimes["saved"],
        os_downtime_s=os_downtime,
    )
    reference = paper_plans()  # the paper's own numbers
    result.tables.append(
        render_table(
            ["strategy", "measured dt (s)", "availability", "nines"],
            [
                (
                    name,
                    downtimes[name],
                    format_availability(plan.availability()),
                    plan.nines(),
                )
                for name, plan in plans.items()
            ],
        )
    )
    result.data["downtimes"] = downtimes
    result.data["os_downtime"] = os_downtime
    result.data["availability"] = {
        name: plan.availability() for name, plan in plans.items()
    }
    paper_availability = {"warm": 99.993, "cold": 99.985, "saved": 99.977}
    result.rows = [
        ComparisonRow("OS rejuvenation downtime", 33.6, os_downtime, "s"),
    ]
    for name, plan in plans.items():
        result.rows.append(
            ComparisonRow(
                f"availability, {name}",
                paper_availability[name],
                plan.availability() * 100,
                "%",
                tolerance=0.001,  # availabilities must match very closely
            )
        )
    # The qualitative claim: warm reaches four nines, the others three.
    result.rows.append(
        ComparisonRow(
            "warm reaches four nines (1=yes)",
            1.0,
            1.0 if plans["warm"].nines() >= 4.0 else 0.0,
            "",
            tolerance=0.01,
        )
    )
    result.data["reference_availability"] = {
        name: plan.availability() for name, plan in reference.items()
    }
    return result
