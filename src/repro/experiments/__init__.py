"""Experiment runners: one per table/figure of the paper's evaluation.

Each runner module exposes ``run(full: bool = False) -> ExperimentResult``;
``full=True`` uses the paper's exact sweep sizes (all of n = 1..11,
10 000-file corpora), ``full=False`` a sparse-but-representative subset
for quick iteration.  The registry maps experiment ids to runners; the
CLI and the benchmark harness both dispatch through it.
"""

from __future__ import annotations

import importlib
import types
import typing

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult, build_testbed

_RUNNERS: dict[str, tuple[str, str]] = {
    "FIG2": ("repro.experiments.fig2_schedule", "rejuvenation timing (Fig. 2)"),
    "FIG4": ("repro.experiments.fig4_memsize", "task time vs memory size (Fig. 4)"),
    "FIG5": ("repro.experiments.fig5_numvms", "task time vs VM count (Fig. 5)"),
    "SEC52": ("repro.experiments.sec52_quick_reload", "quick reload (§5.2)"),
    "FIG6": ("repro.experiments.fig6_downtime", "service downtime (Fig. 6)"),
    "SEC53": ("repro.experiments.sec53_availability", "availability (§5.3)"),
    "FIG7": ("repro.experiments.fig7_breakdown", "downtime breakdown (Fig. 7)"),
    "FIG8": ("repro.experiments.fig8_degradation", "cache-loss degradation (Fig. 8)"),
    "SEC56": ("repro.experiments.sec56_model_fit", "downtime model fit (§5.6)"),
    "FIG9": ("repro.experiments.fig9_cluster", "cluster throughput (Fig. 9)"),
    "EXT-PROACTIVE": (
        "repro.experiments.ext_proactive",
        "proactive vs reactive rejuvenation (extension)",
    ),
    "EXT-GRANULARITY": (
        "repro.experiments.ext_granularity",
        "the rejuvenation-granularity hierarchy (extension)",
    ),
    "EXT-AUTONOMIC": (
        "repro.experiments.ext_autonomic",
        "fixed schedule vs autonomic consolidation (extension)",
    ),
}


def experiment_ids() -> list[str]:
    """All known experiment ids, in paper order."""
    return list(_RUNNERS)


def describe(experiment_id: str) -> str:
    """One-line description of an experiment id."""
    try:
        return _RUNNERS[experiment_id.upper()][1]
    except KeyError:
        raise ReproError(f"unknown experiment {experiment_id!r}") from None


_MODULES: dict[str, types.ModuleType] = {}
"""Resolved runner modules, keyed by experiment id.  ``importlib`` walks
``sys.modules`` and the meta path on every call; resolving each runner
once matters when the parallel runner dispatches thousands of cells."""


def runner_module(experiment_id: str) -> types.ModuleType:
    """The (cached) runner module for an experiment id."""
    key = experiment_id.upper()
    module = _MODULES.get(key)
    if module is None:
        if key not in _RUNNERS:
            raise ReproError(
                f"unknown experiment {experiment_id!r}; known: {', '.join(_RUNNERS)}"
            )
        module = importlib.import_module(_RUNNERS[key][0])
        _MODULES[key] = module
    return module


def run_experiment(experiment_id: str, full: bool = False) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"FIG6"``)."""
    return runner_module(experiment_id).run(full=full)


def run_all(
    full: bool = False,
    jobs: int | None = None,
    use_cache: bool = False,
) -> dict[str, ExperimentResult]:
    """Run the whole evaluation section.

    With ``jobs`` > 1 (or ``use_cache``) the sweep is delegated to
    :mod:`repro.experiments.parallel`, which decomposes experiments into
    independent cells and fans them across worker processes.
    """
    if (jobs is not None and jobs != 1) or use_cache:
        from repro.experiments.parallel import run_all_parallel

        return run_all_parallel(full=full, jobs=jobs, use_cache=use_cache)
    return {key: run_experiment(key, full=full) for key in _RUNNERS}


__all__ = [
    "ExperimentResult",
    "build_testbed",
    "describe",
    "experiment_ids",
    "run_all",
    "run_experiment",
]
