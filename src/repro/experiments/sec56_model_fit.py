"""§5.6: fit the downtime model's functions from simulated sweeps.

The paper measures, for n = 1..11 VMs:

    reboot_vmm(n) = -0.55 n + 43      resume(n) = 0.43 n - 0.07
    reboot_os(n)  =  3.8 n + 13       boot(n)   = 3.4 n + 2.8
    reset_hw      =  47

and derives ``r(n) = 3.9 n + 60 - 17 α > 0`` — the warm-VM reboot always
reduces downtime.  This runner reproduces the same sweeps, fits the same
lines, and re-derives the r(n) coefficients.
"""

from __future__ import annotations

from repro.analysis.downtime_model import DowntimeModel, paper_model
from repro.analysis.fitting import fit_constant, fit_line
from repro.analysis.report import ComparisonRow, render_table
from repro.experiments.common import (
    ExperimentResult,
    build_testbed,
    default_vm_counts,
)


def sweep(full: bool = False) -> dict[str, object]:
    """Measure the model's raw quantities across VM counts."""
    counts = default_vm_counts(full)
    reboot_vmm, resume, reboot_os, boot = [], [], [], []
    resets = []
    for n in counts:
        warm = build_testbed(n).rejuvenate("warm")
        reboot_vmm.append(warm.vmm_reboot_duration())
        resume.append(
            warm.phase_duration("suspend") + warm.phase_duration("resume")
        )
        cold = build_testbed(n).rejuvenate("cold")
        reboot_os.append(
            cold.phase_duration("guest-shutdown")
            + cold.phase_duration("guest-boot")
        )
        boot.append(cold.phase_duration("guest-boot"))
        resets.append(cold.phase_duration("hardware-reset"))
    return {
        "counts": counts,
        "reboot_vmm": fit_line(counts, reboot_vmm),
        "resume": fit_line(counts, resume),
        "reboot_os": fit_line(counts, reboot_os),
        "boot": fit_line(counts, boot),
        "reset_hw": fit_constant(resets),
        "raw": {
            "reboot_vmm": reboot_vmm,
            "resume": resume,
            "reboot_os": reboot_os,
            "boot": boot,
        },
    }


def run(full: bool = False) -> ExperimentResult:
    """Fit the downtime model's lines from simulated sweeps."""
    result = ExperimentResult("SEC56", "fitted downtime model and r(n)")
    measured = sweep(full)
    model = DowntimeModel(
        reboot_vmm=measured["reboot_vmm"],
        resume=measured["resume"],
        reboot_os=measured["reboot_os"],
        reset_hw=measured["reset_hw"],
    )
    reference = paper_model()
    result.data["model"] = model
    result.data["fits"] = measured

    result.tables.append(
        render_table(
            ["function", "paper", "measured", "r^2"],
            [
                (
                    "reboot_vmm(n)",
                    reference.reboot_vmm.formatted(),
                    measured["reboot_vmm"].formatted(),
                    measured["reboot_vmm"].r_squared,
                ),
                (
                    "resume(n)",
                    reference.resume.formatted(),
                    measured["resume"].formatted(),
                    measured["resume"].r_squared,
                ),
                (
                    "reboot_os(n)",
                    reference.reboot_os.formatted(),
                    measured["reboot_os"].formatted(),
                    measured["reboot_os"].r_squared,
                ),
                (
                    "boot(n)",
                    "3.4n + 2.8",
                    measured["boot"].formatted(),
                    measured["boot"].r_squared,
                ),
                ("reset_hw", "47", f"{measured['reset_hw']:.1f}", 1.0),
            ],
        )
    )

    slope, constant, alpha_coefficient = model.r_coefficients()
    paper_slope, paper_constant, paper_alpha = reference.r_coefficients()
    result.tables.append(
        render_table(
            ["r(n) term", "paper", "measured"],
            [
                ("n coefficient", paper_slope, slope),
                ("constant", paper_constant, constant),
                ("alpha coefficient", paper_alpha, alpha_coefficient),
            ],
        )
    )
    result.rows = [
        ComparisonRow("reboot_vmm slope", -0.55, measured["reboot_vmm"].slope,
                      "s/VM", tolerance=0.6),
        ComparisonRow("reboot_vmm intercept", 43.0,
                      measured["reboot_vmm"].intercept, "s"),
        ComparisonRow("resume slope", 0.43, measured["resume"].slope, "s/VM"),
        ComparisonRow("reboot_os slope", 3.8, measured["reboot_os"].slope, "s/VM"),
        ComparisonRow("reboot_os intercept", 13.0,
                      measured["reboot_os"].intercept, "s"),
        ComparisonRow("boot slope", 3.4, measured["boot"].slope, "s/VM"),
        ComparisonRow("reset_hw", 47.0, measured["reset_hw"], "s"),
        ComparisonRow("r(n) slope", 3.9, slope, "s/VM"),
        ComparisonRow("r(n) constant", 60.0, constant, "s"),
        ComparisonRow("r(n) alpha coefficient", -17.0, alpha_coefficient, "s"),
        ComparisonRow(
            "r(n) always positive (1=yes)",
            1.0,
            1.0 if model.always_positive() else 0.0,
            "",
            tolerance=0.01,
        ),
    ]
    return result
