"""Figure 8: post-reboot performance degradation from file-cache loss.

(a) reading a cached 512 MB file: after a cold reboot the first access
    runs at disk speed — 91 % throughput loss; after a warm reboot there
    is no loss because the cache survived in the preserved image.
(b) an Apache corpus of 10 000 × 512 KB cached files under 10 concurrent
    clients: 69 % throughput loss after cold (seek-bound disk), none
    after warm.
"""

from __future__ import annotations

import typing

from repro.analysis.report import ComparisonRow, render_table
from repro.errors import ReproError
from repro.experiments.common import (
    ExperimentResult,
    build_testbed,
    run_self_decomposed,
)
from repro.units import gib, kib, mib
from repro.workloads.fileread import degradation, first_and_second_read
from repro.workloads.httperf import Httperf


def _file_read_case(strategy: str) -> dict[str, float]:
    """Figure 8(a): one 11 GiB VM, one 512 MB file, read around a reboot."""
    controller = build_testbed(1, memory_bytes=gib(11))
    guest = controller.guest("vm00")
    guest.filesystem.create("/data/file", mib(512))
    # Cache the file, then take the before-reboot measurements.
    controller.run_process(guest.read_file("/data/file"))
    before = controller.run_process(first_and_second_read(guest, "/data/file"))
    controller.rejuvenate(strategy)
    guest_after = controller.guest("vm00")  # fresh image if cold
    after = controller.run_process(
        first_and_second_read(guest_after, "/data/file")
    )
    return {
        "before_first": before[0].throughput,
        "before_second": before[1].throughput,
        "after_first": after[0].throughput,
        "after_second": after[1].throughput,
    }


def _web_case(strategy: str, nfiles: int, concurrency: int = 10) -> dict[str, float]:
    """Figure 8(b): cached corpus; every file requested exactly once,
    before and after the reboot."""
    controller = build_testbed(1, memory_bytes=gib(11), services=("apache",))
    guest = controller.guest("vm00")
    paths = guest.filesystem.create_many("/www", nfiles, kib(512))
    controller.run_process(guest.warm_file_cache(paths))

    def lookup():
        return controller.host.guest("vm00").service("apache")

    def sweep() -> float:
        client = Httperf(
            controller.sim, lookup, paths, concurrency=concurrency,
            each_path_once=True, name=f"fig8b-{strategy}",
        ).start()
        controller.sim.run(client.wait())
        return client.mean_rate()

    before = sweep()
    controller.rejuvenate(strategy)
    # Let the post-create network quirk pass: Figure 8 measures the
    # steady state after the reboot, not the transient of Figure 7.
    controller.run_for(40)
    after = sweep()
    return {"before": before, "after": after}


def cells(full: bool = False) -> list[tuple[tuple, str, dict]]:
    """Independent measurement cells for the parallel/serial runners."""
    nfiles = 10_000 if full else 2_000
    out: list[tuple[tuple, str, dict]] = [
        (("read", s), "_file_read_case", {"strategy": s})
        for s in ("warm", "cold")
    ]
    out.extend(
        (("web", s), "_web_case", {"strategy": s, "nfiles": nfiles})
        for s in ("warm", "cold")
    )
    return out


def run(full: bool = False) -> ExperimentResult:
    """Measure file-read and web throughput around warm/cold reboots."""
    return run_self_decomposed(full)


def assemble(
    full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    """Fold per-cell throughput dicts into the Figure 8 result."""
    result = ExperimentResult(
        "FIG8", "throughput of file reads and web accesses around a reboot"
    )
    reads = {s: payloads[("read", s)] for s in ("warm", "cold")}
    result.tables.append(
        "-- (a) 512 MB file read throughput (MB/s) --\n"
        + render_table(
            ["strategy", "before 1st", "before 2nd", "after 1st", "after 2nd"],
            [
                (
                    s,
                    r["before_first"] / mib(1),
                    r["before_second"] / mib(1),
                    r["after_first"] / mib(1),
                    r["after_second"] / mib(1),
                )
                for s, r in reads.items()
            ],
        )
    )
    web = {s: payloads[("web", s)] for s in ("warm", "cold")}
    result.tables.append(
        "-- (b) web server throughput (req/s) --\n"
        + render_table(
            ["strategy", "before", "after"],
            [(s, w["before"], w["after"]) for s, w in web.items()],
        )
    )
    result.data["reads"] = reads
    result.data["web"] = web

    cold_read_loss = degradation(
        reads["cold"]["before_first"], reads["cold"]["after_first"]
    )
    warm_read_loss = degradation(
        reads["warm"]["before_first"], reads["warm"]["after_first"]
    )
    cold_web_loss = degradation(web["cold"]["before"], web["cold"]["after"])
    warm_web_loss = degradation(web["warm"]["before"], web["warm"]["after"])
    result.rows = [
        ComparisonRow("file read loss after cold", 0.91, cold_read_loss, "frac",
                      tolerance=0.08),
        ComparisonRow("file read loss after warm", 0.0, warm_read_loss, "frac",
                      tolerance=0.02),
        ComparisonRow("web loss after cold", 0.69, cold_web_loss, "frac",
                      tolerance=0.12),
        ComparisonRow("web loss after warm", 0.0, warm_web_loss, "frac",
                      tolerance=0.05),
        ComparisonRow(
            "after-2nd recovers (cold, ratio to before)",
            1.0,
            reads["cold"]["after_second"] / reads["cold"]["before_second"],
            "x",
            tolerance=0.05,
        ),
    ]
    return result
