"""Figure 5: pre/post-reboot task time vs the number of 1 GiB VMs.

All three methods depend on the VM count, but on wildly different scales:
at 11 VMs the paper measures on-memory suspend/resume at 0.04 s / 4.2 s
versus Xen's ~200 s / ~156 s, and boot time grows steeply with VM count
because parallel boots contend on the disk.
"""

from __future__ import annotations

import typing

from repro.analysis.fitting import fit_line
from repro.analysis.report import ComparisonRow, render_table
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentResult,
    build_testbed,
    default_vm_counts,
    run_self_decomposed,
)

_METHODS = {
    "on-memory": ("warm", "suspend", "resume"),
    "xen-save": ("saved", "save", "restore"),
    "shutdown-boot": ("cold", "guest-shutdown", "guest-boot"),
}
_METHOD_ORDER = ("on-memory", "xen-save", "shutdown-boot")


def measure_cell(n: int, method: str) -> tuple[float, float]:
    """One (VM count, method) cell: a fresh n-VM testbed, one reboot;
    returns the (pre-reboot, post-reboot) task times."""
    strategy, pre, post = _METHODS[method]
    report = build_testbed(n).rejuvenate(strategy)
    return report.phase_duration(pre), report.phase_duration(post)


def cells(full: bool = False) -> list[tuple[tuple, str, dict]]:
    """Independent measurement cells for the parallel/serial runners."""
    return [
        ((method, n), "measure_cell", {"n": n, "method": method})
        for n in default_vm_counts(full)
        for method in _METHOD_ORDER
    ]


def run(full: bool = False) -> ExperimentResult:
    """Sweep 1..11 one-GiB VMs across the three methods."""
    return run_self_decomposed(full)


def assemble(
    full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    """Fold per-cell (pre, post) pairs into the Figure 5 result."""
    counts = default_vm_counts(full)
    result = ExperimentResult(
        "FIG5", "pre/post-reboot task time vs number of 1 GiB VMs"
    )
    table_rows = []
    series: dict[str, list[tuple[int, float, float]]] = {
        "on-memory": [],
        "xen-save": [],
        "shutdown-boot": [],
    }
    for n in counts:
        onmem = payloads[("on-memory", n)]
        xen = payloads[("xen-save", n)]
        sb = payloads[("shutdown-boot", n)]
        series["on-memory"].append((n, *onmem))
        series["xen-save"].append((n, *xen))
        series["shutdown-boot"].append((n, *sb))
        table_rows.append((n, *onmem, *xen, *sb))

    result.tables.append(
        render_table(
            [
                "VMs",
                "onmem-susp",
                "onmem-res",
                "xen-save",
                "xen-restore",
                "shutdown",
                "boot",
            ],
            table_rows,
        )
    )
    result.data["series"] = series
    from repro.analysis.charts import line_plot

    result.tables.append(
        line_plot(
            "post-reboot task time vs VM count (s)",
            {
                "on-memory resume": [(n, r) for n, _, r in series["on-memory"]],
                "xen restore": [(n, r) for n, _, r in series["xen-save"]],
                "boot": [(n, b) for n, _, b in series["shutdown-boot"]],
            },
        )
    )

    if counts[-1] != 11:
        raise ConfigError("Figure 5 anchors require the 11-VM point")
    onmem_s, onmem_r = series["on-memory"][-1][1:]
    xen_s, xen_r = series["xen-save"][-1][1:]
    boot_fit = fit_line(
        [n for n, _, _ in series["shutdown-boot"]],
        [boot for _, _, boot in series["shutdown-boot"]],
    )
    result.data["boot_fit"] = boot_fit
    result.rows = [
        ComparisonRow("on-memory suspend (11 VMs)", 0.04, onmem_s, "s", tolerance=1.0),
        ComparisonRow("on-memory resume (11 VMs)", 4.2, onmem_r, "s"),
        ComparisonRow("Xen suspend (11 VMs)", 200.0, xen_s, "s"),
        ComparisonRow("Xen resume (11 VMs)", 155.6, xen_r, "s"),
        ComparisonRow("boot slope (s/VM)", 3.4, boot_fit.slope, "s/VM"),
        ComparisonRow(
            "suspend ratio on-memory/Xen", 0.0002, onmem_s / xen_s, "x",
            tolerance=1.5,
        ),
        ComparisonRow(
            "resume ratio on-memory/Xen", 0.027, onmem_r / xen_r, "x",
            tolerance=1.0,
        ),
    ]
    return result
