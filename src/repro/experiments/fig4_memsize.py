"""Figure 4: pre/post-reboot task time vs a single VM's memory size.

The paper's claim: Xen's disk-based suspend/resume scales with memory
size (133 s / 129 s at 11 GB) while on-memory suspend/resume barely
depends on it (0.08 s / 0.9 s) — 0.06 % and 0.7 % of the Xen numbers.
Shutdown/boot is also roughly size-independent but loses all state.
"""

from __future__ import annotations

import typing

from repro.analysis.report import ComparisonRow, render_table
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentResult,
    build_testbed,
    default_memory_gib,
    run_self_decomposed,
)
from repro.units import gib

_METHODS = {
    "on-memory": ("warm", "suspend", "resume"),
    "xen-save": ("saved", "save", "restore"),
    "shutdown-boot": ("cold", "guest-shutdown", "guest-boot"),
}
_METHOD_ORDER = ("on-memory", "xen-save", "shutdown-boot")


def measure_cell(size_gib: int, method: str) -> tuple[float, float]:
    """One (memory size, method) cell: a fresh 1-VM testbed, one reboot;
    returns the (pre-reboot, post-reboot) task times."""
    strategy, pre, post = _METHODS[method]
    report = build_testbed(1, memory_bytes=gib(size_gib)).rejuvenate(strategy)
    return report.phase_duration(pre), report.phase_duration(post)


def cells(full: bool = False) -> list[tuple[tuple, str, dict]]:
    """Independent measurement cells for the parallel/serial runners."""
    return [
        ((method, size), "measure_cell", {"size_gib": size, "method": method})
        for size in default_memory_gib(full)
        for method in _METHOD_ORDER
    ]


def run(full: bool = False) -> ExperimentResult:
    """Sweep a single VM's memory (1..11 GiB) across the three methods."""
    return run_self_decomposed(full)


def assemble(
    full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    """Fold per-cell (pre, post) pairs into the Figure 4 result."""
    sizes = default_memory_gib(full)
    result = ExperimentResult(
        "FIG4", "pre/post-reboot task time vs VM memory size (1 VM)"
    )
    table_rows = []
    series: dict[str, list[tuple[int, float, float]]] = {
        "on-memory": [],
        "xen-save": [],
        "shutdown-boot": [],
    }
    for size in sizes:
        onmem = payloads[("on-memory", size)]
        saved = payloads[("xen-save", size)]
        cold = payloads[("shutdown-boot", size)]
        series["on-memory"].append((size, *onmem))
        series["xen-save"].append((size, *saved))
        series["shutdown-boot"].append((size, *cold))
        table_rows.append((size, *onmem, *saved, *cold))

    result.tables.append(
        render_table(
            [
                "GiB",
                "onmem-susp",
                "onmem-res",
                "xen-save",
                "xen-restore",
                "shutdown",
                "boot",
            ],
            table_rows,
        )
    )
    result.data["series"] = series
    from repro.analysis.charts import bar_chart

    result.tables.append(
        bar_chart(
            "task time at 11 GiB (log scale, s)",
            [
                (
                    "pre-reboot",
                    {
                        "on-memory suspend": series["on-memory"][-1][1],
                        "xen save": series["xen-save"][-1][1],
                        "shutdown": series["shutdown-boot"][-1][1],
                    },
                ),
                (
                    "post-reboot",
                    {
                        "on-memory resume": series["on-memory"][-1][2],
                        "xen restore": series["xen-save"][-1][2],
                        "boot": series["shutdown-boot"][-1][2],
                    },
                ),
            ],
            log_floor=0.01,
        )
    )

    # The paper quotes its Figure 4 anchors at the largest size, 11 GB.
    if sizes[-1] != 11:
        raise ConfigError("Figure 4 anchors require the 11 GiB point")
    onmem_s, onmem_r = series["on-memory"][-1][1:]
    save_s, save_r = series["xen-save"][-1][1:]
    result.rows = [
        ComparisonRow("on-memory suspend (11 GB)", 0.08, onmem_s, "s", tolerance=0.6),
        ComparisonRow("on-memory resume (11 GB)", 0.9, onmem_r, "s", tolerance=0.6),
        ComparisonRow("Xen suspend (11 GB)", 133.0, save_s, "s"),
        ComparisonRow("Xen resume (11 GB)", 129.0, save_r, "s"),
        ComparisonRow(
            "suspend ratio on-memory/Xen",
            0.0006,
            onmem_s / save_s,
            "x",
            tolerance=1.0,
        ),
        ComparisonRow(
            "resume ratio on-memory/Xen",
            0.007,
            onmem_r / save_r,
            "x",
            tolerance=1.0,
        ),
    ]
    return result
