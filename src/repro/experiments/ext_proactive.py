"""EXT-PROACTIVE: proactive rejuvenation vs reactive crash recovery.

An extension beyond the paper's measurements, quantifying its premise
("preventive maintenance by software rejuvenation would decrease problems
due to aging", §2):

Two identical hosts suffer the same aging — the VMM heap leaks fast
enough to exhaust the 16 MB heap in ~10 days.  One host does nothing and
relies on a crash watchdog (reactive).  The other runs weekly warm
rejuvenation (proactive), which resets the heap before exhaustion.  Over
eight simulated weeks, the proactive host trades a handful of planned
~40 s outages for the reactive host's repeated unplanned crashes, each
costing detection time plus a full cold recovery with cache loss.
"""

from __future__ import annotations

from repro.aging.policy import TimeBasedRejuvenator
from repro.aging.watchdog import CrashWatchdog, HeapExhaustionCrasher
from repro.analysis.downtime import extract_downtimes
from repro.analysis.report import ComparisonRow, render_table
from repro.experiments.common import ExperimentResult, build_testbed
from repro.units import MiB, WEEK


_LEAK_PER_HOUR = int(0.07 * MiB)
"""~16 MB heap gone in ~10 days: ages out between weekly rejuvenations'
reach only if nobody rejuvenates."""


def _run_host(proactive: bool, weeks: float = 8.0) -> dict[str, object]:
    controller = build_testbed(3)
    host = controller.host
    sim = controller.sim
    horizon = sim.now + weeks * WEEK
    t0 = sim.now

    crasher = HeapExhaustionCrasher(host, leak_bytes_per_hour=_LEAK_PER_HOUR)
    crasher_proc = sim.spawn(crasher.run(horizon), name="crasher")
    watchdog = CrashWatchdog(host, detection_timeout_s=60.0)
    watchdog_proc = sim.spawn(watchdog.run(horizon), name="watchdog")

    rejuvenator = None
    policy_proc = None
    if proactive:
        rejuvenator = TimeBasedRejuvenator(
            host, strategy="warm",
            os_interval_s=weeks * WEEK * 10,  # OS rejuvenation out of scope here
            vmm_interval_s=WEEK,
        )
        policy_proc = sim.spawn(rejuvenator.run(horizon), name="policy")
    if sim.now < horizon:
        sim.run(until=horizon)
    for proc in (crasher_proc, watchdog_proc, policy_proc):
        if proc is not None and proc.is_alive:
            proc.kill()
    sim.run()  # drain any in-flight recovery so outages close

    intervals = [
        i for i in extract_downtimes(controller.sim.trace, since=t0) if i.closed
    ]
    total_downtime = sum(i.duration for i in intervals)
    horizon_span = weeks * WEEK
    return {
        "crashes": len(crasher.crashes),
        "recoveries": len(watchdog.recoveries),
        "planned_rejuvenations": rejuvenator.count("vmm") if rejuvenator else 0,
        "total_downtime": total_downtime / 3,  # per VM
        "availability": 1 - (total_downtime / 3) / horizon_span,
    }


def run(full: bool = False) -> ExperimentResult:
    """Race weekly warm rejuvenation against watchdog-only crash recovery."""
    result = ExperimentResult(
        "EXT-PROACTIVE",
        "proactive warm rejuvenation vs reactive crash recovery (extension)",
    )
    reactive = _run_host(proactive=False)
    proactive = _run_host(proactive=True)
    result.data["reactive"] = reactive
    result.data["proactive"] = proactive
    result.tables.append(
        render_table(
            [
                "policy", "crashes", "planned rejuvs",
                "downtime/VM (s)", "availability",
            ],
            [
                (
                    "reactive (watchdog only)",
                    reactive["crashes"],
                    0,
                    reactive["total_downtime"],
                    f"{reactive['availability'] * 100:.4f} %",
                ),
                (
                    "proactive (weekly warm)",
                    proactive["crashes"],
                    proactive["planned_rejuvenations"],
                    proactive["total_downtime"],
                    f"{proactive['availability'] * 100:.4f} %",
                ),
            ],
        )
    )
    result.rows = [
        ComparisonRow(
            "proactive host never crashes (1=yes)",
            1.0,
            1.0 if proactive["crashes"] == 0 else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "reactive host crashes repeatedly (1=yes)",
            1.0,
            1.0 if reactive["crashes"] >= 3 else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "proactive downtime < half of reactive (1=yes)",
            1.0,
            1.0
            if proactive["total_downtime"] < 0.5 * reactive["total_downtime"]
            else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "proactive availability higher (1=yes)",
            1.0,
            1.0
            if proactive["availability"] > reactive["availability"]
            else 0.0,
            "",
            tolerance=0.01,
        ),
    ]
    return result
