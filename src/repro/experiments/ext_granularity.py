"""EXT-GRANULARITY: the rejuvenation hierarchy of §7, measured.

The related-work section situates the warm-VM reboot in a hierarchy of
reboot granularities: microreboot restarts an application component,
checkpoint/restart rejuvenates an OS while preserving its processes, and
the warm-VM reboot rejuvenates a VMM while preserving its VMs.  This
extension measures the whole ladder on one testbed (11 JBoss VMs; the
downtime is the affected service's):

* **microreboot** — restart the JBoss process in place;
* **OS reboot + process checkpoint** — reboot the guest kernel, restore
  JBoss from its checkpoint (Randell-style);
* **OS reboot** — plain guest reboot, JBoss cold-starts;
* **dom0-only reboot** — rejuvenate the privileged VM (§8 extension);
* **warm VMM reboot** — the paper's contribution;
* **cold VMM reboot** — everything above at once, the expensive way.

The claims checked: each "preserve the children" technique beats its
"reboot the children" counterpart at the same level, and the warm-VM
reboot rejuvenates the *deepest* component for less downtime than even a
single guest's cold OS reboot chain would suggest.
"""

from __future__ import annotations

import typing

from repro.analysis.downtime import extract_downtimes
from repro.analysis.report import ComparisonRow, render_table
from repro.experiments.common import (
    ExperimentResult,
    build_testbed,
    run_self_decomposed,
)

_VM = "vm00"

_LADDER = (
    "microreboot",
    "os+checkpoint",
    "os",
    "dom0-only",
    "warm-vmm",
    "cold-vmm",
)


def _downtime_of(controller, t0: float) -> float:
    """Longest closed outage of the observed VM's JBoss since ``t0``."""
    intervals = [
        i
        for i in extract_downtimes(
            controller.sim.trace, since=t0, domain=_VM, service="jboss"
        )
        if i.closed
    ]
    return max((i.duration for i in intervals), default=0.0)


def _measure(action: str) -> float:
    controller = build_testbed(11, services=("jboss",))
    host = controller.host
    t0 = controller.now
    if action == "microreboot":
        controller.run_process(host.restart_service(_VM, "jboss"))
    elif action == "os+checkpoint":
        controller.run_process(
            host.reboot_guest(_VM, checkpoint_processes=True)
        )
    elif action == "os":
        controller.run_process(host.reboot_guest(_VM))
    elif action == "dom0-only":
        controller.rejuvenate("dom0-only")
    elif action == "warm-vmm":
        controller.rejuvenate("warm")
    elif action == "cold-vmm":
        controller.rejuvenate("cold")
    else:  # pragma: no cover - guarded by the caller
        raise ValueError(action)
    controller.run_for(5)
    return _downtime_of(controller, t0)


def cells(full: bool = False) -> list[tuple[tuple, str, dict]]:
    """Independent measurement cells for the parallel/serial runners."""
    return [((action,), "_measure", {"action": action}) for action in _LADDER]


def run(full: bool = False) -> ExperimentResult:
    """Measure the downtime ladder across rejuvenation granularities."""
    return run_self_decomposed(full)


def assemble(
    full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    """Fold per-cell downtimes into the granularity-ladder result."""
    result = ExperimentResult(
        "EXT-GRANULARITY", "the §7 rejuvenation hierarchy, one testbed"
    )
    downtimes = {action: payloads[(action,)] for action in _LADDER}
    result.data["downtimes"] = downtimes
    result.tables.append(
        render_table(
            ["granularity", "what is rejuvenated", "JBoss downtime (s)"],
            [
                ("microreboot", "one service process", downtimes["microreboot"]),
                ("OS reboot + checkpoint", "guest kernel", downtimes["os+checkpoint"]),
                ("OS reboot", "guest kernel + processes", downtimes["os"]),
                ("dom0-only reboot", "privileged VM", downtimes["dom0-only"]),
                ("warm VMM reboot", "hypervisor", downtimes["warm-vmm"]),
                ("cold VMM reboot", "hypervisor + all guests", downtimes["cold-vmm"]),
            ],
        )
    )
    result.rows = [
        ComparisonRow(
            "checkpointing beats plain OS reboot (1=yes)",
            1.0,
            1.0 if downtimes["os+checkpoint"] < downtimes["os"] else 0.0,
            "",
            tolerance=0.01,
        ),
        # Candea's claim: rebooting the finer component beats rebooting
        # the coarser one that contains it.  (A checkpointed OS reboot can
        # undercut a cold-starting microreboot when the service's start
        # cost dominates — an interesting wrinkle the table shows.)
        ComparisonRow(
            "microreboot beats plain OS reboot (1=yes)",
            1.0,
            1.0 if downtimes["microreboot"] < downtimes["os"] else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "warm VMM cheaper than cold VMM (1=yes)",
            1.0,
            1.0 if downtimes["warm-vmm"] < downtimes["cold-vmm"] else 0.0,
            "",
            tolerance=0.01,
        ),
        ComparisonRow(
            "warm VMM rejuvenates deeper than OS reboot for similar downtime",
            1.0,
            downtimes["warm-vmm"] / max(downtimes["os"], 1e-9),
            "x",
            tolerance=0.6,
        ),
    ]
    return result
