"""Figure 7: the downtime breakdown during a VMM reboot, with a live web
workload.

11 VMs; one serves a cached web corpus to an httperf stream.  The reboot
command is issued at t = +20 s.  The paper's observations, all of which
this runner measures:

* warm: the web server keeps serving until suspend (~14 s after the
  command — dom0 shuts down first), total suspend+resume ~4 s, no
  hardware reset, and a ~25 s *Xen implementation* slump after resume
  (simultaneous VM creation degrades networking — reproduced as a quirk);
* cold: serving stops ~7 s after the command (guest shutdown), 43-47 s
  hardware reset, and ~8 s of cache-miss degradation after boot.
"""

from __future__ import annotations

import typing

from repro.analysis.report import ComparisonRow, render_table
from repro.analysis.timeline import AnnotatedTimeline, bucketize, zero_intervals
from repro.errors import ReproError
from repro.experiments.common import ExperimentResult, build_testbed
from repro.units import kib
from repro.workloads.httperf import Httperf

_REBOOT_AT = 20.0
_CORPUS_FILES = 200
_FILE_BYTES = kib(512)


_WEB_VM = "vm05"
"""The paper plots one web VM among eleven; picking the middle of the
shutdown-signalling order matches its observed stop time."""


def run_one(strategy: str) -> dict[str, typing.Any]:
    """One Figure 7 run: returns the timeline, phases and key instants."""
    controller = build_testbed(11, services=("apache",))
    guest = controller.guest(_WEB_VM)
    paths = guest.filesystem.create_many("/www", _CORPUS_FILES, _FILE_BYTES)
    controller.run_process(guest.warm_file_cache(paths))

    def lookup():
        try:
            return controller.host.guest(_WEB_VM).service("apache")
        except ReproError:
            raise
    client = Httperf(
        controller.sim,
        lookup,
        paths,
        concurrency=4,
        name=f"fig7-{strategy}",
    ).start()

    base = controller.now
    controller.run_for(_REBOOT_AT)
    report = controller.rejuvenate(strategy)
    controller.run_for(120)
    client.stop()

    bucket_s = 2.0
    series = bucketize(
        [t - base for t in client.completion_times],
        bucket_s,
        start=0.0,
        end=report.finished - base + 120,
    )
    outages = zero_intervals(series, bucket_s)
    phases = [
        (p.name, p.start - base, p.end - base) for p in report.phases
    ]
    # When the web VM stopped answering: the paper's "web server was
    # stopped at time X" instant.
    web_down = controller.sim.trace.first(
        "service.down", since=base, domain=_WEB_VM
    )
    served_until = (web_down.time - base) if web_down is not None else 0.0
    # Steady rates before the reboot and after full recovery.
    before = client.mean_rate(until=base + _REBOOT_AT)
    after = client.mean_rate(since=report.finished + 60)
    return {
        "report": report,
        "series": series,
        "outages": outages,
        "phases": phases,
        "served_until": served_until,
        "rate_before": before,
        "rate_after": after,
        "base": base,
        "client": client,
    }


def run(full: bool = False) -> ExperimentResult:
    """Reboot under live web load, warm vs cold, with phase breakdown."""
    result = ExperimentResult(
        "FIG7", "downtime breakdown with a live web workload (11 VMs)"
    )
    warm = run_one("warm")
    cold = run_one("cold")

    for name, data in (("warm", warm), ("cold", cold)):
        timeline = AnnotatedTimeline(data["series"], data["phases"])
        result.tables.append(f"-- {name} --\n{timeline.render()}")
    result.data["warm"] = {k: v for k, v in warm.items() if k != "client"}
    result.data["cold"] = {k: v for k, v in cold.items() if k != "client"}

    warm_report = warm["report"]
    cold_report = cold["report"]
    warm_suspend_resume = warm_report.phase_duration(
        "suspend"
    ) + warm_report.phase_duration("resume")
    cold_shutdown_boot = cold_report.phase_duration(
        "guest-shutdown"
    ) + cold_report.phase_duration("guest-boot")
    result.rows = [
        ComparisonRow(
            "warm: suspend+resume total", 4.0, warm_suspend_resume, "s", tolerance=0.5
        ),
        ComparisonRow(
            "cold: shutdown+boot total", 63.0, cold_shutdown_boot, "s"
        ),
        ComparisonRow(
            "cold: hardware reset", 43.0,
            cold_report.phase_duration("hardware-reset"), "s",
        ),
        ComparisonRow(
            "warm: hardware reset", 0.0,
            0.0 if not warm_report.has_phase("hardware-reset") else 1.0, "s",
            tolerance=0.01,
        ),
        ComparisonRow(
            "warm serves until (after command)", 14.0,
            warm["served_until"] - _REBOOT_AT, "s",
        ),
        ComparisonRow(
            "cold serves until (after command)", 7.0,
            cold["served_until"] - _REBOOT_AT, "s", tolerance=0.6,
        ),
        ComparisonRow(
            "throughput restored, warm (ratio)", 1.0,
            warm["rate_after"] / warm["rate_before"], "x", tolerance=0.15,
        ),
        ComparisonRow(
            "throughput restored, cold (ratio)", 1.0,
            cold["rate_after"] / cold["rate_before"], "x", tolerance=0.15,
        ),
    ]
    return result
