"""Figure 9 / §6: total cluster throughput under three maintenance schemes.

A cluster of m hosts serves one replicated web service.  During
rejuvenation of one host the total drops to (m-1)p; the schemes differ in
how long the dip lasts and what follows it:

* **warm** rolling reboot — dip of ~42 s per host, full recovery;
* **cold** rolling reboot — dip of ~4 minutes per host, then a further
  (m-δ)p period of cache-miss degradation (δ ≈ 0.69 in §5.5);
* **live migration** with a spare — no dip at all, but the spare's
  capacity is reserved permanently (steady state (m-1)p of an (m+1)-host
  fleet) and each host's maintenance takes tens of minutes of migration.

The runner measures per-host and total request-rate series and extracts
those three signatures.
"""

from __future__ import annotations

import typing

from repro.analysis.report import ComparisonRow, render_table
from repro.analysis.timeline import (
    bucketize,
    mean_rate,
    sum_series,
    zero_intervals,
)
from repro.experiments.common import ExperimentResult, run_self_decomposed
from repro.scenario.builder import ScenarioBuilder
from repro.scenario.spec import (
    HostSpec,
    MaintenanceSpec,
    ScenarioSpec,
    VMSpec,
    WorkloadSpec,
)
from repro.units import kib

_FILES_PER_HOST = 30
_FILE_BYTES = 2 * 1024 * kib(1)
_BUCKET_S = 5.0
_SIZE = 3
_SCHEMES = ("warm", "cold", "migration")


def _scenario(scheme: str, size: int, settle_s: float) -> ScenarioSpec:
    """The Figure 9 setup as a declarative spec: ``size`` hosts each
    serving one apache VM, a per-host httperf stream, and the requested
    maintenance scheme (migration reserves a spare)."""
    if scheme == "migration":
        maintenance = MaintenanceSpec(kind="migration", strategy="cold")
    else:
        maintenance = MaintenanceSpec(
            kind="rolling", strategy=scheme, settle_s=settle_s
        )
    return ScenarioSpec(
        name=f"fig9-{scheme}",
        hosts=(HostSpec(count=size, vms=(VMSpec(services=("apache",)),)),),
        spare=(scheme == "migration"),
        workloads=(
            WorkloadSpec(
                kind="httperf",
                directory="/www/{host}",
                files=_FILES_PER_HOST,
                file_kib=_FILE_BYTES / kib(1),
                concurrency=2,
            ),
        ),
        maintenance=maintenance,
    )


def _cluster_run(
    scheme: str, size: int = 3, settle_s: float = 30.0
) -> dict[str, typing.Any]:
    """Run one maintenance scheme over a fresh cluster; return series."""
    built = ScenarioBuilder(_scenario(scheme, size, settle_s)).build()
    sim = built.sim
    clients = [attached.client for attached in built.workloads]

    workload_start = sim.now
    warmup = 40.0
    sim.run(until=sim.now + warmup)
    maintenance_start = sim.now
    rejuvenator = built.make_rejuvenator()
    sim.run(sim.spawn(rejuvenator.run()))
    maintenance_end = sim.now
    sim.run(until=sim.now + 120)
    for client in clients:
        client.stop()

    # Bucket only from where the workload is in steady state, so a zero
    # bucket really means an outage.
    series_start = workload_start + 10.0
    per_host = [
        bucketize(
            client.completion_times,
            _BUCKET_S,
            start=series_start,
            end=maintenance_end + 110,
        )
        for client in clients
    ]
    total = sum_series(per_host)
    baseline = sum(
        client.mean_rate(
            since=maintenance_start - warmup * 0.75,
            until=maintenance_start - warmup * 0.1,
        )
        for client in clients
    )
    dips = [zero_intervals(series, _BUCKET_S) for series in per_host]
    first_reboot_window = (
        getattr(rejuvenator, "completed", [None])
        and (rejuvenator.completed[0].started, rejuvenator.completed[0].finished)
    )
    return {
        "scheme": scheme,
        "total": total,
        "per_host": per_host,
        "baseline": baseline,
        "maintenance": (maintenance_start, maintenance_end),
        "per_host_outages": dips,
        "completed": getattr(rejuvenator, "completed", []),
        "first_window": first_reboot_window,
    }


def cells(full: bool = False) -> list[tuple[tuple, str, dict]]:
    """Independent measurement cells for the parallel/serial runners."""
    return [
        ((scheme,), "_cluster_run", {"scheme": scheme, "size": _SIZE})
        for scheme in _SCHEMES
    ]


def run(full: bool = False) -> ExperimentResult:
    """Run the three cluster maintenance schemes and compare timelines."""
    return run_self_decomposed(full)


def assemble(
    full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    """Fold the per-scheme timeline payloads into the Figure 9 result."""
    result = ExperimentResult(
        "FIG9", "cluster total throughput during rolling rejuvenation"
    )
    size = _SIZE
    runs = {scheme: payloads[(scheme,)] for scheme in _SCHEMES}

    rows = []
    for scheme, data in runs.items():
        outage_total = sum(
            end - start
            for host_outages in data["per_host_outages"]
            for start, end in host_outages
        )
        duration = data["maintenance"][1] - data["maintenance"][0]
        rows.append((scheme, data["baseline"], outage_total, duration))
    result.tables.append(
        render_table(
            ["scheme", "baseline req/s", "total host-outage s", "maintenance s"],
            rows,
        )
    )
    result.data["runs"] = {
        scheme: {k: v for k, v in data.items()} for scheme, data in runs.items()
    }

    def per_host_outage(scheme: str) -> float:
        return sum(
            end - start
            for ho in runs[scheme]["per_host_outages"]
            for start, end in ho
        ) / size

    # Total throughput during the first host's rejuvenation relative to
    # the steady baseline: Figure 9's (m-1)p plateau.
    warm_run = runs["warm"]
    window = warm_run["first_window"]
    during = mean_rate(warm_run["total"], since=window[0], until=window[1])
    dip_fraction = during / warm_run["baseline"]

    maintenance_per_host = {
        scheme: (data["maintenance"][1] - data["maintenance"][0]) / size
        for scheme, data in runs.items()
    }
    result.rows = [
        # With 1 GiB VMs (not the paper's full 11 GiB load) the absolute
        # outages shrink; the paper values below are its 1-VM Figure 6
        # points, which match this cluster's per-host configuration.
        ComparisonRow("warm: per-host outage", 42.0, per_host_outage("warm"),
                      "s", tolerance=0.5),
        ComparisonRow("cold: per-host outage", 125.0, per_host_outage("cold"),
                      "s", tolerance=0.5),
        ComparisonRow(
            "migration: guest outage (stop-and-copy only)", 0.0,
            per_host_outage("migration"), "s", tolerance=0.01,
        ),
        ComparisonRow(
            "total throughput during warm reboot / baseline",
            (size - 1) / size,
            dip_fraction,
            "x",
            tolerance=0.15,
        ),
        ComparisonRow(
            "migration maintenance much longer than warm (1=yes)",
            1.0,
            1.0
            if maintenance_per_host["migration"] > 2 * maintenance_per_host["warm"]
            else 0.0,
            "",
            tolerance=0.01,
        ),
    ]
    return result
