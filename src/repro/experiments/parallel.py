"""Parallel experiment sweeps over independent measurement cells.

The evaluation sweep is embarrassingly parallel at the *cell* level: one
cell is one deterministically-seeded testbed plus one simulation (e.g.
"FIG5, 7 VMs, xen-save"), so its payload depends only on its parameters
and the code — never on which process runs it or in what order.  This
module exploits that twice:

* **fan-out** — cells from *all* requested experiments are pooled and
  fanned across a :class:`~concurrent.futures.ProcessPoolExecutor`, so a
  long cell from one experiment overlaps short cells from another;
* **memoisation** — each payload is stored in a content-addressed cache
  keyed on the cell's function, its parameters, the timing-profile
  fingerprint and a hash of the package source, so re-running a sweep
  recomputes only cells whose inputs actually changed.

Experiments that are not cell-decomposed (they expose no ``cells``/
``assemble`` pair) degrade gracefully to a single whole-run cell, which
still parallelises across experiments and still caches.

Equivalence with the serial path is by construction: the serial runner
(:func:`repro.experiments.common.run_decomposed`) executes the *same*
cell functions and the *same* ``assemble``; the tests in
``tests/experiments/test_parallel.py`` assert bit-identical rows across
serial, parallel and cached runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import typing
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path

import repro
from repro.config import paper_testbed
from repro.errors import ReproError
from repro.experiments import experiment_ids, runner_module
from repro.experiments.common import ExperimentResult

_WHOLE = "__whole_run__"
"""Cell key marking a non-decomposed experiment run as a single unit."""

_CACHE_VERSION = 2
"""Bump to invalidate every cached payload at once.

2: workload mode/sessions/tick entered the scenario spec schema and the
kernel backend/horizon entered the digest material; payloads keyed under
version 1 predate both and must never alias the new cells.
"""


@dataclasses.dataclass(frozen=True, eq=False)
class Cell:
    """One independent measurement: a function call on a fresh testbed."""

    experiment_id: str
    key: tuple
    fn: str
    """``"module:function"`` — resolvable in a worker process."""
    params: dict[str, typing.Any]

    def digest(self, full: bool) -> str:
        """Content address of this cell's payload.

        Two cells share a digest only if they would compute the same
        payload: same function, same parameters, same timing profile,
        same package source and the same ambient kernel configuration
        (scheduler backend + horizon — environment knobs a cell's worker
        inherits, so flipping them must never replay a stale payload).
        ``repr`` of the sorted parameter items is stable because cell
        parameters are ints/floats/strs/bools (and, for spec cells,
        canonically ordered dicts of those).
        """
        material = repr(
            (
                _CACHE_VERSION,
                self.fn,
                sorted(self.params.items()),
                bool(full),
                _profile_fingerprint(),
                _env_fingerprint(),
                code_version(),
            )
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _profile_fingerprint() -> str:
    """The default timing profile, as cache-key material.

    ``TimingProfile`` is a frozen dataclass tree of scalars, so its repr
    captures every calibrated constant an experiment can observe.
    """
    return repr(paper_testbed())


def _env_fingerprint() -> str:
    """Ambient kernel knobs worker processes inherit, as cache-key material.

    The scheduler backend contract says results never depend on the
    backend — but the cache must not *assume* the contract holds: a
    payload computed under one backend/horizon must never satisfy a
    lookup made under another, or a contract violation would be masked
    by replay instead of caught by the differential tests.
    """
    return repr(
        (
            os.environ.get("REPRO_KERNEL_BACKEND") or "reference",
            os.environ.get("REPRO_KERNEL_HORIZON") or "",
        )
    )


_code_version: str | None = None


def code_version() -> str:
    """A hash over the ``repro`` package source (cache-key material)."""
    global _code_version
    if _code_version is None:
        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version = h.hexdigest()
    return _code_version


# -- the cell plan -----------------------------------------------------------------


def cells_for(experiment_id: str, full: bool = False) -> list[Cell]:
    """The cell plan for one experiment.

    Decomposed runner modules expose ``cells(full)``; anything else
    becomes a single whole-run cell executing :func:`_run_whole`.
    """
    key = experiment_id.upper()
    module = runner_module(key)
    if hasattr(module, "cells") and hasattr(module, "assemble"):
        return [
            Cell(key, tuple(cell_key), f"{module.__name__}:{fn_name}", dict(params))
            for cell_key, fn_name, params in module.cells(full)
        ]
    return [
        Cell(
            key,
            (_WHOLE,),
            f"{__name__}:_run_whole",
            {"experiment_id": key, "full": full},
        )
    ]


def _run_whole(experiment_id: str, full: bool) -> ExperimentResult:
    """Whole-run fallback cell for non-decomposed experiments."""
    return runner_module(experiment_id).run(full=full)


def _assemble(
    experiment_id: str, full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    module = runner_module(experiment_id)
    if hasattr(module, "cells") and hasattr(module, "assemble"):
        return module.assemble(full, payloads)
    return payloads[(_WHOLE,)]


def _execute_cell(fn: str, params: dict[str, typing.Any]) -> typing.Any:
    """Worker-side cell execution (top level, so it pickles)."""
    import importlib

    module_name, _, attr = fn.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)(**params)


# -- the result cache --------------------------------------------------------------


def cache_dir() -> Path:
    """Where payloads live: ``$REPRO_CACHE_DIR`` or a user-cache default."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    return Path(xdg) / "repro-experiments"


def _cache_path(digest: str) -> Path:
    # Shard by the first byte to keep directory listings manageable.
    return cache_dir() / digest[:2] / f"{digest}.pkl"


def _cache_load(digest: str) -> tuple[bool, typing.Any]:
    """(hit, payload); unreadable or corrupt entries are just misses.

    Deliberately catches every Exception: depending on which opcode the
    corruption lands on, unpickling garbage raises UnpicklingError,
    EOFError, ValueError, UnicodeDecodeError, ImportError...  A cache
    read must never be able to fail a sweep.
    """
    try:
        blob = _cache_path(digest).read_bytes()
        return True, pickle.loads(blob)
    except Exception:
        return False, None


def _cache_store(digest: str, payload: typing.Any) -> None:
    """Atomic write (unique temp file + rename): concurrent writers of
    the same digest each land a complete file, last one wins."""
    path = _cache_path(digest)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - cache is best-effort
        pass


def clear_cache() -> int:
    """Delete every cached payload; returns the number removed."""
    removed = 0
    root = cache_dir()
    if root.is_dir():
        for path in root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
    return removed


# -- the runners -------------------------------------------------------------------


@dataclasses.dataclass
class SweepStats:
    """What a parallel sweep actually did (observability + tests)."""

    total_cells: int = 0
    cache_hits: int = 0
    executed: int = 0


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_cells(
    cells: list[Cell],
    full: bool,
    jobs: int | None,
    use_cache: bool,
    stats: SweepStats | None = None,
) -> dict[tuple[str, tuple], typing.Any]:
    """Execute a pooled cell list; returns payloads keyed by
    (experiment id, cell key)."""
    jobs = _resolve_jobs(jobs)
    if stats is None:
        stats = SweepStats()
    stats.total_cells += len(cells)

    payloads: dict[tuple[str, tuple], typing.Any] = {}
    misses: list[tuple[Cell, str]] = []
    for cell in cells:
        digest = cell.digest(full) if use_cache else ""
        if use_cache:
            hit, payload = _cache_load(digest)
            if hit:
                payloads[(cell.experiment_id, cell.key)] = payload
                stats.cache_hits += 1
                continue
        misses.append((cell, digest))

    stats.executed += len(misses)
    if not misses:
        return payloads

    if jobs == 1:
        # In-process serial path: same cells, no pool overhead.
        for cell, digest in misses:
            payload = _execute_cell(cell.fn, cell.params)
            payloads[(cell.experiment_id, cell.key)] = payload
            if use_cache:
                _cache_store(digest, payload)
        return payloads

    # More CPU-bound workers than cores only adds scheduler thrash, and
    # idle workers beyond the miss count only add fork cost.
    workers = min(jobs, len(misses), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: list[tuple[Cell, str, Future]] = [
            (cell, digest, pool.submit(_execute_cell, cell.fn, cell.params))
            for cell, digest in misses
        ]
        for cell, digest, future in futures:
            payload = future.result()
            payloads[(cell.experiment_id, cell.key)] = payload
            if use_cache:
                _cache_store(digest, payload)
    return payloads


def run_cells(
    cells: typing.Sequence[Cell],
    jobs: int | None = None,
    use_cache: bool = True,
    stats: SweepStats | None = None,
) -> dict[tuple[str, tuple], typing.Any]:
    """Public pooled-cell entry point for non-experiment tiers.

    The fleet runner (``repro.fleet``) fans its shard cells through this,
    so shards pool, parallelise and content-address cache exactly like
    experiment and scenario cells; payloads come back keyed by
    ``(experiment id, cell key)``.
    """
    return _run_cells(list(cells), False, jobs, use_cache, stats)


def run_experiment_parallel(
    experiment_id: str,
    full: bool = False,
    jobs: int | None = None,
    use_cache: bool = True,
    stats: SweepStats | None = None,
) -> ExperimentResult:
    """Run one experiment by fanning its cells across worker processes."""
    key = experiment_id.upper()
    plan = cells_for(key, full)
    payloads = _run_cells(plan, full, jobs, use_cache, stats)
    return _assemble(key, full, {c.key: payloads[(key, c.key)] for c in plan})


def scenario_cells(specs: typing.Sequence[typing.Any]) -> list[Cell]:
    """The uniform spec-cell plan for a set of scenario specs.

    A scenario cell is the same unit as an experiment cell — one function,
    plain parameters, deterministic payload — so it pools, fans out and
    caches through the exact same machinery.  The spec travels in its
    canonical dict form (:meth:`~repro.scenario.spec.ScenarioSpec.to_dict`
    is field-ordered, so the digest's ``repr`` material is stable).
    """
    seen: set[str] = set()
    cells: list[Cell] = []
    for spec in specs:
        if spec.name in seen:
            raise ReproError(
                f"duplicate scenario name {spec.name!r} in one sweep; "
                "cells are keyed by name"
            )
        seen.add(spec.name)
        cells.append(
            Cell(
                "SCENARIO",
                (spec.name,),
                "repro.scenario.runner:run_scenario_cell",
                {"spec_data": spec.to_dict()},
            )
        )
    return cells


def run_scenarios_parallel(
    specs: typing.Sequence[typing.Any],
    jobs: int | None = None,
    use_cache: bool = True,
    stats: SweepStats | None = None,
) -> dict[str, dict]:
    """Fan a set of :class:`~repro.scenario.spec.ScenarioSpec` runs across
    worker processes; returns each scenario's report dict keyed by name."""
    plan = scenario_cells(specs)
    payloads = _run_cells(plan, False, jobs, use_cache, stats)
    return {
        cell.key[0]: payloads[(cell.experiment_id, cell.key)] for cell in plan
    }


def run_all_parallel(
    full: bool = False,
    jobs: int | None = None,
    use_cache: bool = True,
    experiments: typing.Sequence[str] | None = None,
    stats: SweepStats | None = None,
) -> dict[str, ExperimentResult]:
    """Run a set of experiments (default: all) over one shared pool.

    Cells from every experiment are pooled before fan-out, so the one
    long whole-run cell of a non-decomposed experiment overlaps the many
    short cells of the decomposed ones.
    """
    keys = (
        experiment_ids()
        if experiments is None
        else [e.upper() for e in experiments]
    )
    plan: list[Cell] = []
    for key in keys:
        plan.extend(cells_for(key, full))
    payloads = _run_cells(plan, full, jobs, use_cache, stats)
    results: dict[str, ExperimentResult] = {}
    for key in keys:
        per_key = {
            cell_key: payload
            for (exp, cell_key), payload in payloads.items()
            if exp == key
        }
        results[key] = _assemble(key, full, per_key)
    return results
