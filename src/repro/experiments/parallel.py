"""Parallel experiment sweeps over independent measurement cells.

The evaluation sweep is embarrassingly parallel at the *cell* level: one
cell is one deterministically-seeded testbed plus one simulation (e.g.
"FIG5, 7 VMs, xen-save"), so its payload depends only on its parameters
and the code — never on which process runs it or in what order.  The
generic machinery — :class:`~repro.jobs.Cell`, the process pool, the
content-addressed payload cache — lives in :mod:`repro.jobs` at the
foundation layer (the fleet tier rides on it too); this module is the
experiment-facing tier on top: it decomposes experiment and scenario
runs into cell plans and assembles payloads back into results.

Experiments that are not cell-decomposed (they expose no ``cells``/
``assemble`` pair) degrade gracefully to a single whole-run cell, which
still parallelises across experiments and still caches.

Equivalence with the serial path is by construction: the serial runner
(:func:`repro.experiments.common.run_decomposed`) executes the *same*
cell functions and the *same* ``assemble``; the tests in
``tests/experiments/test_parallel.py`` assert bit-identical rows across
serial, parallel and cached runs.

The moved machinery is re-exported here under its historical names, so
existing imports (``from repro.experiments.parallel import Cell``) keep
working.
"""

from __future__ import annotations

import typing

from repro.errors import ReproError
from repro.experiments import experiment_ids, runner_module
from repro.experiments.common import ExperimentResult
from repro.jobs import (  # noqa: F401 - re-exported for back-compat
    Cell,
    SweepStats,
    _cache_load,
    _cache_store,
    _env_fingerprint,
    _execute_cell,
    _profile_fingerprint,
    _resolve_jobs,
    _run_cells,
    cache_dir,
    clear_cache,
    code_version,
    run_cells,
)

_WHOLE = "__whole_run__"
"""Cell key marking a non-decomposed experiment run as a single unit."""


# -- the cell plan -----------------------------------------------------------------


def cells_for(experiment_id: str, full: bool = False) -> list[Cell]:
    """The cell plan for one experiment.

    Decomposed runner modules expose ``cells(full)``; anything else
    becomes a single whole-run cell executing :func:`_run_whole`.
    """
    key = experiment_id.upper()
    module = runner_module(key)
    if hasattr(module, "cells") and hasattr(module, "assemble"):
        return [
            Cell(key, tuple(cell_key), f"{module.__name__}:{fn_name}", dict(params))
            for cell_key, fn_name, params in module.cells(full)
        ]
    return [
        Cell(
            key,
            (_WHOLE,),
            f"{__name__}:_run_whole",
            {"experiment_id": key, "full": full},
        )
    ]


def _run_whole(experiment_id: str, full: bool) -> ExperimentResult:
    """Whole-run fallback cell for non-decomposed experiments."""
    return runner_module(experiment_id).run(full=full)


def _assemble(
    experiment_id: str, full: bool, payloads: dict[tuple, typing.Any]
) -> ExperimentResult:
    module = runner_module(experiment_id)
    if hasattr(module, "cells") and hasattr(module, "assemble"):
        return module.assemble(full, payloads)
    return payloads[(_WHOLE,)]


# -- the runners -------------------------------------------------------------------


def run_experiment_parallel(
    experiment_id: str,
    full: bool = False,
    jobs: int | None = None,
    use_cache: bool = True,
    stats: SweepStats | None = None,
) -> ExperimentResult:
    """Run one experiment by fanning its cells across worker processes."""
    key = experiment_id.upper()
    plan = cells_for(key, full)
    payloads = _run_cells(plan, full, jobs, use_cache, stats)
    return _assemble(key, full, {c.key: payloads[(key, c.key)] for c in plan})


def scenario_cells(specs: typing.Sequence[typing.Any]) -> list[Cell]:
    """The uniform spec-cell plan for a set of scenario specs.

    A scenario cell is the same unit as an experiment cell — one function,
    plain parameters, deterministic payload — so it pools, fans out and
    caches through the exact same machinery.  The spec travels in its
    canonical dict form (:meth:`~repro.scenario.spec.ScenarioSpec.to_dict`
    is field-ordered, so the digest's ``repr`` material is stable).
    """
    seen: set[str] = set()
    cells: list[Cell] = []
    for spec in specs:
        if spec.name in seen:
            raise ReproError(
                f"duplicate scenario name {spec.name!r} in one sweep; "
                "cells are keyed by name"
            )
        seen.add(spec.name)
        cells.append(
            Cell(
                "SCENARIO",
                (spec.name,),
                "repro.scenario.runner:run_scenario_cell",
                {"spec_data": spec.to_dict()},
            )
        )
    return cells


def run_scenarios_parallel(
    specs: typing.Sequence[typing.Any],
    jobs: int | None = None,
    use_cache: bool = True,
    stats: SweepStats | None = None,
) -> dict[str, dict]:
    """Fan a set of :class:`~repro.scenario.spec.ScenarioSpec` runs across
    worker processes; returns each scenario's report dict keyed by name."""
    plan = scenario_cells(specs)
    payloads = _run_cells(plan, False, jobs, use_cache, stats)
    return {
        cell.key[0]: payloads[(cell.experiment_id, cell.key)] for cell in plan
    }


def run_all_parallel(
    full: bool = False,
    jobs: int | None = None,
    use_cache: bool = True,
    experiments: typing.Sequence[str] | None = None,
    stats: SweepStats | None = None,
) -> dict[str, ExperimentResult]:
    """Run a set of experiments (default: all) over one shared pool.

    Cells from every experiment are pooled before fan-out, so the one
    long whole-run cell of a non-decomposed experiment overlaps the many
    short cells of the decomposed ones.
    """
    keys = (
        experiment_ids()
        if experiments is None
        else [e.upper() for e in experiments]
    )
    plan: list[Cell] = []
    for key in keys:
        plan.extend(cells_for(key, full))
    payloads = _run_cells(plan, full, jobs, use_cache, stats)
    results: dict[str, ExperimentResult] = {}
    for key in keys:
        per_key = {
            cell_key: payload
            for (exp, cell_key), payload in payloads.items()
            if exp == key
        }
        results[key] = _assemble(key, full, per_key)
    return results
