"""Unit helpers used throughout the package.

All simulation time is measured in **seconds** (floats) and all memory and
I/O sizes in **bytes** (ints).  These helpers exist so that configuration
code reads like the paper ("1 GB per VM", "512 KB files") instead of long
integer literals, and so that conversions are done in exactly one place.

The binary prefixes (KiB = 1024 bytes) are used, matching how Xen and the
paper count memory ("12 GB of memory", "2 MB table per 1 GB").
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

PAGE_SIZE: int = 4 * KiB
"""Size of one machine page frame (x86 4 KiB pages, as in Xen)."""

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY


def kib(n: float) -> int:
    """Return ``n`` kibibytes as a byte count."""
    return int(n * KiB)


def mib(n: float) -> int:
    """Return ``n`` mebibytes as a byte count."""
    return int(n * MiB)


def gib(n: float) -> int:
    """Return ``n`` gibibytes as a byte count."""
    return int(n * GiB)


def bytes_to_mib(n: int) -> float:
    """Return a byte count as mebibytes."""
    return n / MiB


def bytes_to_gib(n: int) -> float:
    """Return a byte count as gibibytes."""
    return n / GiB


def pages(nbytes: int) -> int:
    """Return the number of whole pages needed to hold ``nbytes``.

    Rounds up, as an allocator must.
    """
    return -(-nbytes // PAGE_SIZE)


def page_bytes(npages: int) -> int:
    """Return the byte size of ``npages`` machine pages."""
    return npages * PAGE_SIZE


def fmt_bytes(n: int) -> str:
    """Format a byte count for human-readable reports (e.g. ``"1.5 GiB"``)."""
    if n >= GiB:
        return f"{n / GiB:.3g} GiB"
    if n >= MiB:
        return f"{n / MiB:.3g} MiB"
    if n >= KiB:
        return f"{n / KiB:.3g} KiB"
    return f"{n} B"


def fmt_duration(seconds: float) -> str:
    """Format a duration for reports (e.g. ``"2m 05s"``)."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 60:
        return f"{seconds:.3g}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{int(minutes)}m {secs:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h {minutes:02d}m {secs:04.1f}s"
