"""The xenstore daemon: dom0's hierarchical configuration store.

xenstored keeps the ``/local/domain/<id>/...`` tree that the toolstack and
device frontends coordinate through.  Two properties matter for this
reproduction:

* it lives in **domain 0**, so its aging (the changeset-8640 per-transaction
  leak, §2) cannot be fixed by restarting it — "xenstored is not
  restartable" — and therefore forces a dom0 (hence VMM) reboot;
* every domain create/destroy is a burst of transactions, so a leaky
  xenstored ages fastest exactly on machines that reboot VMs often.

Memory accounting is in bytes against a fixed budget (dom0 is small, §2).
When the budget is exhausted, operations start failing with
:class:`~repro.errors.XenstoreError` — the "I/O processing in the
privileged VM slows down" failure mode.
"""

from __future__ import annotations

import typing

from repro.config import AgingFaults
from repro.errors import XenstoreError
from repro.simkernel.metrics import NULL
from repro.units import MiB

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.metrics import MetricsRegistry

_ENTRY_OVERHEAD_BYTES = 64


class Xenstore:
    """An in-memory hierarchical key-value store with leak accounting.

    ``metrics`` (the owning simulator's registry, passed by the
    hypervisor) backs the ``vmm.xenstore_*_bytes`` gauges sampled per
    transaction — the observable trajectory of the changeset-8640 leak.
    """

    def __init__(
        self,
        budget_bytes: int = 4 * MiB,
        faults: AgingFaults | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if budget_bytes <= 0:
            raise XenstoreError(f"budget must be > 0, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.faults = faults if faults is not None else AgingFaults.healthy()
        self._tree: dict[str, str] = {}
        self._watches: dict[str, list[typing.Callable[[str], None]]] = {}
        self._leaked_bytes = 0
        self.transactions = 0
        self.watch_events_fired = 0
        self._metric_used = (
            metrics.gauge("vmm.xenstore_used_bytes") if metrics is not None else NULL
        )
        self._metric_leaked = (
            metrics.gauge("vmm.xenstore_leaked_bytes")
            if metrics is not None
            else NULL
        )

    # -- memory accounting ----------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        return sum(
            _ENTRY_OVERHEAD_BYTES + len(k) + len(v) for k, v in self._tree.items()
        )

    @property
    def leaked_bytes(self) -> int:
        return self._leaked_bytes

    @property
    def used_bytes(self) -> int:
        return self.live_bytes + self._leaked_bytes

    @property
    def exhausted(self) -> bool:
        return self.used_bytes >= self.budget_bytes

    def _charge_transaction(self) -> None:
        self.transactions += 1
        leak = self.faults.xenstore_leak_per_txn_bytes
        if leak:
            self._leaked_bytes = min(
                self._leaked_bytes + leak, self.budget_bytes
            )
            self._metric_leaked.set(self._leaked_bytes)
        self._metric_used.set(self.used_bytes)
        if self.exhausted:
            raise XenstoreError(
                f"xenstored out of memory ({self.used_bytes}/{self.budget_bytes} B,"
                f" {self._leaked_bytes} B leaked)"
            )

    # -- store operations ---------------------------------------------------------------

    @staticmethod
    def _validate(path: str) -> str:
        if not path.startswith("/") or path != path.rstrip("/") and path != "/":
            raise XenstoreError(f"bad xenstore path {path!r}")
        return path

    def write(self, path: str, value: str) -> None:
        """Create or update one entry (fires matching watches)."""
        self._validate(path)
        self._charge_transaction()
        self._tree[path] = value
        self._fire_watches(path)

    def read(self, path: str) -> str:
        """Read one entry; raises :class:`XenstoreError` if absent."""
        self._validate(path)
        self._charge_transaction()
        try:
            return self._tree[path]
        except KeyError:
            raise XenstoreError(f"no such path {path!r}") from None

    def exists(self, path: str) -> bool:
        """True if ``path`` holds a value (free: no transaction charged)."""
        return path in self._tree

    def remove(self, path: str) -> int:
        """Remove a path and its whole subtree; returns entries removed."""
        self._validate(path)
        self._charge_transaction()
        prefix = path.rstrip("/") + "/"
        victims = [p for p in self._tree if p == path or p.startswith(prefix)]
        for victim in victims:
            del self._tree[victim]
        for victim in victims:
            self._fire_watches(victim)
        return len(victims)

    # -- watches (the toolstack's notification mechanism) --------------------------

    def watch(
        self, prefix: str, callback: typing.Callable[[str], None]
    ) -> typing.Callable[[], None]:
        """Invoke ``callback(path)`` whenever a path under ``prefix``
        changes (write or removal) — xenstore's watch protocol, which
        the toolstack and device frontends coordinate through.

        Returns an unwatch callable.
        """
        self._validate(prefix)
        self._watches.setdefault(prefix, []).append(callback)

        def unwatch() -> None:
            callbacks = self._watches.get(prefix, [])
            if callback in callbacks:
                callbacks.remove(callback)
                if not callbacks:
                    del self._watches[prefix]

        return unwatch

    def _fire_watches(self, path: str) -> None:
        for prefix, callbacks in list(self._watches.items()):
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                for callback in list(callbacks):
                    self.watch_events_fired += 1
                    callback(path)

    def list_dir(self, path: str) -> list[str]:
        """Immediate children names of ``path``."""
        self._validate(path)
        self._charge_transaction()
        prefix = path.rstrip("/") + "/" if path != "/" else "/"
        children = {
            p[len(prefix):].split("/", 1)[0]
            for p in self._tree
            if p.startswith(prefix)
        }
        return sorted(children)

    # -- toolstack helpers ------------------------------------------------------------------

    def register_domain(self, domid: int, name: str, memory_bytes: int) -> None:
        """The burst of writes a domain introduction performs."""
        base = f"/local/domain/{domid}"
        self.write(f"{base}/name", name)
        self.write(f"{base}/memory", str(memory_bytes))
        self.write(f"{base}/state", "introduced")

    def unregister_domain(self, domid: int) -> None:
        """Remove a domain's whole subtree."""
        self.remove(f"/local/domain/{domid}")

    def registered_domids(self) -> list[int]:
        """Sorted domids currently introduced in the store."""
        return sorted(
            int(name)
            for name in self.list_dir("/local/domain")
            if name.isdigit()
        )
