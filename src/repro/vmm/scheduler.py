"""The VMM's CPU scheduler — a fluid model of Xen's credit scheduler.

Xen's credit scheduler gives each domain a *weight* (its proportional
share when the machine is contended; default 256) and an optional *cap*
(an absolute ceiling, e.g. 0.5 cores, enforced even when cores are
idle).  The fluid equivalent maps directly onto the simulation kernel's
shared CPU pool: a domain's runnable work executes with
``weight/256`` relative share and a per-job rate cap.

Guests route their CPU work through :meth:`CreditScheduler.execute`, so
scheduler policy affects every modelled activity — boot, service start,
request handling — without those call sites knowing about credits.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import VMMError
from repro.hardware.cpu import CpuPool
from repro.simkernel import Event

DEFAULT_WEIGHT = 256
"""Xen's default credit-scheduler weight."""


@dataclasses.dataclass(frozen=True)
class SchedulerParams:
    """Per-domain credit-scheduler configuration."""

    weight: int = DEFAULT_WEIGHT
    cap_cores: float | None = None
    """Absolute ceiling in cores (None = work-conserving, no cap)."""

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise VMMError(f"scheduler weight must be >= 1, got {self.weight}")
        if self.cap_cores is not None and self.cap_cores <= 0:
            raise VMMError(f"scheduler cap must be positive, got {self.cap_cores}")


_DEFAULT_PARAMS = SchedulerParams()
"""Shared immutable default: built per-call this is a surprisingly hot
allocation, since most domains never have explicit parameters set."""


class CreditScheduler:
    """Maps per-domain weights/caps onto the machine's CPU pool."""

    def __init__(self, cpu: CpuPool) -> None:
        self.cpu = cpu
        self._params: dict[str, SchedulerParams] = {}
        self.work_submitted: dict[str, float] = {}

    def set_params(self, domain_name: str, params: SchedulerParams) -> None:
        """Configure (or reconfigure) one domain's share."""
        self._params[domain_name] = params

    def params_for(self, domain_name: str) -> SchedulerParams:
        """The domain's share (Xen defaults if never configured)."""
        return self._params.get(domain_name, _DEFAULT_PARAMS)

    def remove_domain(self, domain_name: str) -> None:
        """Forget a destroyed domain's configuration."""
        self._params.pop(domain_name, None)

    def execute(self, domain_name: str, core_seconds: float) -> Event:
        """Run ``core_seconds`` of one domain's single-threaded work under
        its configured share."""
        params = self.params_for(domain_name)
        self.work_submitted[domain_name] = (
            self.work_submitted.get(domain_name, 0.0) + core_seconds
        )
        return self.cpu.execute_shared(
            core_seconds,
            weight=params.weight / DEFAULT_WEIGHT,
            cap=params.cap_cores,
        )
