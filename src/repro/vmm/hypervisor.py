"""The hypervisor (VMM) model — a Xen-3.0.0-alike.

One :class:`Hypervisor` object is one *VMM instance*: it owns a frame
allocator built over the machine's memory, a 16 MB heap, the domain table,
event channels and (via dom0) xenstore.  Rebooting the VMM means this
object dies and a successor is constructed over the same
:class:`~repro.hardware.PhysicalMachine` — which is exactly how the
warm-VM reboot's preservation guarantees become testable: whatever the
successor can see, it sees through machine RAM (the preserved store) or
the disk, never through Python references to the dead instance.

The baseline hypervisor supports everything original Xen 3.0.0 does in
this story: domain lifecycle, ballooning, event channels, and
**save/restore through the disk** (the ``saved-VM reboot`` baseline).
The RootHammer mechanisms — on-memory suspend/resume and quick reload —
live in :class:`repro.core.roothammer.RootHammerHypervisor`, a subclass,
mirroring how the paper's system is a modified Xen.
"""

from __future__ import annotations

import enum
import itertools
import typing

from repro.config import AgingFaults
from repro.config import TimingProfile
from repro.errors import (
    DomainError,
    HypercallError,
    VMMCrashed,
    VMMError,
)
from repro.hardware.machine import PhysicalMachine
from repro.memory import Balloon, FrameAllocator, VmmHeap
from repro.simkernel import Resource
from repro.units import GiB, KiB, MiB, pages
from repro.vmm.domain import Domain, DomainState
from repro.vmm.event_channels import EventChannelTable
from repro.vmm.grant_tables import GrantTable
from repro.vmm.scheduler import CreditScheduler, SchedulerParams
from repro.vmm.xenstore import Xenstore

_VMM_OWN_BYTES = 32 * MiB
"""Machine memory reserved for the VMM text/data/heap itself."""

_DOMAIN_STRUCT_BYTES = 8 * KiB
"""Heap bytes consumed per live domain (struct domain and friends)."""

DOM0_NAME = "Domain-0"


class VmmState(enum.Enum):
    INITIALIZING = "initializing"
    RUNNING = "running"
    SHUTTING_DOWN = "shutting-down"
    DEAD = "dead"
    CRASHED = "crashed"


class Hypervisor:
    """One VMM instance bound to a physical machine."""

    def __init__(
        self,
        machine: PhysicalMachine,
        profile: TimingProfile,
        faults: AgingFaults | None = None,
        generation: int = 1,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.profile = profile
        self.faults = faults if faults is not None else AgingFaults.healthy()
        self.generation = generation
        self.state = VmmState.INITIALIZING
        self.allocator = FrameAllocator(machine.memory)
        self.heap = VmmHeap(
            profile.vmm.heap_bytes,
            metrics=self.sim.metrics,
            owner=machine.name,
        )
        self.domains: dict[str, Domain] = {}
        self.event_channels = EventChannelTable(metrics=self.sim.metrics)
        self.grant_table = GrantTable()
        self.scheduler = CreditScheduler(machine.cpu)
        self.xenstore: Xenstore | None = None
        self.toolstack = Resource(self.sim, capacity=1, name="toolstack")
        self.hypercall_counts: dict[str, int] = {}
        self._domids = itertools.count(0)
        self._domain_heap: dict[str, typing.Any] = {}
        self._domain_list_cache: list[Domain] | None = None

    # -- small helpers -----------------------------------------------------------

    def _trace(self, kind: str, **fields: typing.Any) -> None:
        self.sim.trace.record(kind, vmm_generation=self.generation, **fields)

    def _duration(self, stream: str, base: float) -> float:
        return self.machine.duration(stream, base)

    def require_running(self) -> None:
        """Raise unless this VMM instance is alive and well."""
        if self.state is VmmState.CRASHED:
            raise VMMCrashed(f"VMM generation {self.generation} has crashed")
        if self.state is not VmmState.RUNNING:
            raise VMMError(
                f"VMM generation {self.generation} is {self.state.value}"
            )

    @property
    def domain_list(self) -> list[Domain]:
        """All domains, dom0 first then by domid.

        Cached until domain membership changes — cluster schedulers walk
        this list on every request, and re-sorting per call dominated the
        FIG9 profile.  Callers receive a copy they may mutate freely.
        """
        cache = self._domain_list_cache
        if cache is None:
            cache = self._domain_list_cache = sorted(
                self.domains.values(), key=lambda d: (not d.is_dom0, d.domid)
            )
        return list(cache)

    @property
    def domus(self) -> list[Domain]:
        """The unprivileged domains, by domid."""
        return [d for d in self.domain_list if not d.is_dom0]

    def domain(self, name: str) -> Domain:
        """Look a domain up by name; raises :class:`DomainError`."""
        try:
            return self.domains[name]
        except KeyError:
            raise DomainError(f"no domain named {name!r}") from None

    def free_bytes(self) -> int:
        """Unallocated machine memory in bytes."""
        return self.allocator.free_pages * 4096

    # -- boot ----------------------------------------------------------------------

    def boot(self) -> typing.Generator:
        """Initialize this VMM instance.  Yield-from as a process.

        Charges fixed init plus scrubbing of all *free* machine memory.
        Subclasses that preserve domain memory re-reserve it before calling
        this (see RootHammer), shrinking the scrub — the physical origin of
        the paper's negative ``reboot_vmm(n)`` slope.

        Returns the boot duration charged.
        """
        if self.state is not VmmState.INITIALIZING:
            raise VMMError("a VMM instance can only boot once")
        started = self.sim.now
        self._trace("vmm.boot.start")
        self.allocator.allocate(pages(_VMM_OWN_BYTES), "vmm")
        fixed = self._duration("vmm.boot", self.profile.vmm.boot_fixed_s)
        yield self.sim.timeout(fixed)
        self._reserve_preserved_images()
        yield from self._scrub_free_memory()
        self.state = VmmState.RUNNING
        self._trace("vmm.boot.done", duration=self.sim.now - started)
        return self.sim.now - started

    def _reserve_preserved_images(self) -> None:
        """Hook: re-reserve memory of preserved (suspended) domains before
        the boot-time scrub.  The baseline VMM preserves nothing — Xen
        3.0.4's kexec 'does not have any support to preserve the memory
        images of domain Us while a new VMM is initialized' (§4.3) — so
        this is a no-op here and overridden by RootHammer."""

    def _scrub_free_memory(self) -> typing.Generator:
        """Zero every free frame (Xen scrubs at boot); charges scrub time."""
        free_extents = self.allocator.free_extents()
        free_gib = sum(e.nbytes for e in free_extents) / GiB
        scrub = self._duration(
            "vmm.scrub", self.profile.vmm.scrub_s_per_gib * free_gib
        )
        yield self.sim.timeout(scrub)
        for extent in free_extents:
            self.machine.memory.scrub(extent)
        self._trace("vmm.scrub.done", gib=free_gib, duration=scrub)

    # -- domain lifecycle --------------------------------------------------------------

    def create_dom0(self) -> Domain:
        """Build the privileged domain (instantaneous bookkeeping; dom0's
        *boot* time is charged by the host orchestration layer)."""
        self.require_running()
        if DOM0_NAME in self.domains:
            raise DomainError("dom0 already exists")
        dom0 = Domain(
            next(self._domids),
            DOM0_NAME,
            self.profile.dom0.memory_bytes,
            privileged=True,
        )
        self._install_domain_memory(dom0)
        self.xenstore = Xenstore(faults=self.faults, metrics=self.sim.metrics)
        self.xenstore.register_domain(dom0.domid, dom0.name, dom0.memory_bytes)
        self.domains[dom0.name] = dom0
        self._domain_list_cache = None
        dom0.transition(DomainState.RUNNING)
        self._trace("vmm.dom0.created")
        return dom0

    def create_domain(
        self, name: str, memory_bytes: int, vcpus: int = 1
    ) -> typing.Generator:
        """Create a fresh domU (the cold path).  Yield-from as a process.

        Serialized through the dom0 toolstack (the paper's per-domain
        creation cost); returns the new :class:`Domain` in RUNNING state
        with scrubbed memory — the guest must then boot.
        """
        self.require_running()
        if name in self.domains:
            raise DomainError(f"domain {name!r} already exists")
        with self.toolstack.request() as grant:
            yield grant
            yield self.sim.timeout(
                self._duration("toolstack.create", self.profile.vmm.create_domain_s)
            )
            domain = Domain(next(self._domids), name, memory_bytes, vcpus=vcpus)
            self._install_domain_memory(domain)
            self._register_domain(domain)
            domain.transition(DomainState.RUNNING)
            self._trace("vmm.domain.created", domain=name, domid=domain.domid)
        return domain

    def _install_domain_memory(self, domain: Domain) -> None:
        """Allocate machine frames and build the P2M mapping."""
        extents = self.allocator.allocate_scattered(
            pages(domain.memory_bytes), domain.name
        )
        pfn = 0
        for extent in extents:
            domain.p2m.map_extent(pfn, extent)
            pfn += extent.npages

    def _register_domain(self, domain: Domain, bind_channels: bool = True) -> None:
        """Heap, xenstore and event-channel bookkeeping for a new domain.

        ``bind_channels=False`` is used by restore/resume paths, which
        re-establish channels from the saved snapshot instead.
        """
        self._domain_heap[domain.name] = self.heap.allocate(
            _DOMAIN_STRUCT_BYTES, tag=f"domain:{domain.name}"
        )
        if self.xenstore is not None:
            self.xenstore.register_domain(
                domain.domid, domain.name, domain.memory_bytes
            )
        if bind_channels:
            self.event_channels.bind(domain.name, DOM0_NAME, "console")
            self.event_channels.bind(domain.name, DOM0_NAME, "xenstore")
        self.scheduler.set_params(domain.name, SchedulerParams())
        self.domains[domain.name] = domain
        self._domain_list_cache = None

    def destroy_domain(self, name: str, scrub: bool = True) -> None:
        """Tear down a domain and release its resources.

        With the changeset-9392 fault active, part of the heap allocation
        leaks instead of being released — the paper's aging driver.
        """
        domain = self.domain(name)
        if domain.is_dom0:
            raise DomainError("dom0 cannot be destroyed while the VMM runs")
        domain.require_state(
            DomainState.SHUTDOWN,
            DomainState.SUSPENDED,
            DomainState.RUNNING,
            DomainState.BUILDING,
        )
        self.allocator.free_all(name, scrub=scrub)
        allocation = self._domain_heap.pop(name, None)
        if allocation is not None:
            if self.faults.leak_on_domain_destroy_bytes:
                self.heap.leak(allocation)
                self.heap.leak_bytes(
                    max(
                        0,
                        self.faults.leak_on_domain_destroy_bytes
                        - allocation.nbytes,
                    )
                )
            else:
                self.heap.release(allocation)
        self.event_channels.close_domain(name)
        self.grant_table.purge(name)
        self.scheduler.remove_domain(name)
        if self.xenstore is not None:
            self.xenstore.unregister_domain(domain.domid)
        domain.transition(DomainState.DEAD)
        del self.domains[name]
        self._domain_list_cache = None
        self._trace("vmm.domain.destroyed", domain=name)

    def balloon_for(self, name: str) -> Balloon:
        """A balloon driver bound to the named domain."""
        domain = self.domain(name)
        return Balloon(self.allocator, domain.p2m, domain.name)

    # -- hypercalls ---------------------------------------------------------------------

    def hypercall(self, name: str, caller: Domain, **kwargs: typing.Any) -> typing.Any:
        """Dispatch a synchronous hypercall from a domain."""
        self.require_running()
        handler = getattr(self, f"_hc_{name}", None)
        if handler is None:
            self._record_error_path()
            raise HypercallError(f"unknown hypercall {name!r}")
        self.hypercall_counts[name] = self.hypercall_counts.get(name, 0) + 1
        self.sim.metrics.counter("vmm.hypercalls", type=name).inc()
        return handler(caller, **kwargs)

    def _hc_event_channel_notify(self, caller: Domain, port: int = 0) -> None:
        self.event_channels.notify(port)

    def _hc_memory_op(
        self, caller: Domain, target_pages: int = 0
    ) -> int:
        """Balloon the calling domain toward ``target_pages``."""
        return self.balloon_for(caller.name).set_target(target_pages)

    def _hc_console_io(self, caller: Domain, message: str = "") -> None:
        self._trace("vmm.console", domain=caller.name, message=message)

    def _record_error_path(self) -> None:
        """Charge the changeset-11752 error-path leak if active."""
        if self.faults.leak_on_error_path_bytes:
            self.heap.leak_bytes(self.faults.leak_on_error_path_bytes)

    # -- save/restore through the disk (original Xen; the saved-VM baseline) ------------

    def save_domain_to_disk(
        self, name: str, variant: typing.Any = None
    ) -> typing.Generator:
        """``xm save``: write a domain's whole memory image to disk (§3.1's
        'traditional suspend/resume ... analogous to ACPI S4').

        Duration is dominated by writing ``memory_bytes`` through the disk
        model; with many concurrent saves the streams interleave and pay
        seeks — the Figure 5 behaviour.

        ``variant`` (a :class:`repro.core.save_variants.SaveVariant`)
        selects the §7 related-work accelerations: incremental saves,
        compressed images, or an i-RAM-like RAM disk.  ``None`` is the
        plain original-Xen path.
        """
        domain = self.domain(name)
        spans = self.sim.spans
        # concurrent saves get their own actor tracks; causally children
        # of the host's enclosing reboot span when one is open.
        with spans.span(
            "vmm.save", actor=name, parent=spans.current(self.machine.name)
        ):
            domain.require_state(DomainState.RUNNING)
            domain.transition(DomainState.SUSPENDING)
            self._trace("vmm.save.start", domain=name)
            if domain.guest is not None:
                yield from domain.guest.run_suspend_handler()
            tokens = self.collect_domain_tokens(domain)
            if variant is None:
                yield self.machine.disk.write(f"save:{name}", domain.memory_bytes)
            else:
                if variant.compression_cpu_s_per_gib:
                    yield self.machine.cpu.execute(
                        variant.codec_cpu_s(domain.memory_bytes)
                    )
                medium = (
                    self.machine.ramdisk if variant.medium == "ramdisk"
                    else self.machine.disk
                )
                yield medium.write(
                    f"save:{name}", variant.save_bytes(domain.memory_bytes)
                )
            self.machine.disk_store[f"saved:{name}"] = {
                "configuration": domain.configuration(),
                "execution_context": dict(domain.execution_context),
                "event_channels": self.event_channels.snapshot_domain(name),
                "tokens_by_pfn": tokens,
                "guest": domain.guest,
                "variant": variant,
            }
            domain.transition(DomainState.SUSPENDED)
            self._trace("vmm.save.done", domain=name)
            self.destroy_domain(name, scrub=False)

    def restore_domain_from_disk(self, name: str) -> typing.Generator:
        """``xm restore``: read the image back and rebuild the domain.

        Uses whatever save variant the image was written with; note that
        (as §7 observes for incremental checkpointing) restores always
        read the *full* image.
        """
        self.require_running()
        record = self.machine.disk_store.pop(f"saved:{name}", None)
        if record is None:
            raise DomainError(f"no saved image for domain {name!r} on disk")
        config = record["configuration"]
        variant = record.get("variant")
        spans = self.sim.spans
        with spans.span(
            "vmm.restore", actor=name, parent=spans.current(self.machine.name)
        ):
            with self.toolstack.request() as grant:
                yield grant
                yield self.sim.timeout(
                    self._duration(
                        "toolstack.restore", self.profile.vmm.create_domain_s
                    )
                )
                domain = Domain(
                    next(self._domids),
                    name,
                    config["memory_bytes"],
                    vcpus=config["vcpus"],
                )
                self._install_domain_memory(domain)
                self._register_domain(domain, bind_channels=False)
            if variant is None:
                yield self.machine.disk.read(f"restore:{name}", domain.memory_bytes)
            else:
                medium = (
                    self.machine.ramdisk if variant.medium == "ramdisk"
                    else self.machine.disk
                )
                yield medium.read(
                    f"restore:{name}", variant.restore_bytes(domain.memory_bytes)
                )
                if variant.compression_cpu_s_per_gib:
                    yield self.machine.cpu.execute(
                        variant.codec_cpu_s(domain.memory_bytes)
                    )
            self.write_domain_tokens(domain, record["tokens_by_pfn"])
            domain.execution_context = dict(record["execution_context"])
            self.event_channels.restore_domain(record["event_channels"])
            domain.guest = record["guest"]
            domain.transition(DomainState.RUNNING)
            if domain.guest is not None:
                domain.guest.rebind(self, domain)
                yield from domain.guest.run_resume_handler()
            self._trace("vmm.restore.done", domain=name)
        return domain

    def collect_domain_tokens(self, domain: Domain) -> dict[int, typing.Any]:
        """Snapshot the domain's memory-content sentinels, keyed by PFN.

        Content sentinels are sparse, so only the written frames are
        reverse-translated (vectorized in the P2M table) instead of
        building a full MFN→PFN map of the whole domain per save.
        """
        written = self.machine.memory._tokens
        if not written:
            return {}
        mfn_to_pfn = domain.p2m.mfn_to_pfn(written.keys())
        return {
            pfn: written[mfn]
            for mfn, pfn in mfn_to_pfn.items()
        }

    def write_domain_tokens(
        self, domain: Domain, tokens_by_pfn: dict[int, typing.Any]
    ) -> None:
        """Rewrite content sentinels into a (re)built domain's frames."""
        for pfn, token in tokens_by_pfn.items():
            self.machine.memory.write_token(domain.p2m.mfn_of(pfn), token)

    # -- shutdown / crash ------------------------------------------------------------------

    def shutdown(self) -> typing.Generator:
        """Tear down this VMM instance (domains must already be gone or
        suspended-with-preservation by the caller)."""
        self.require_running()
        self.state = VmmState.SHUTTING_DOWN
        self._trace("vmm.shutdown.start")
        yield self.sim.timeout(
            self._duration("vmm.shutdown", self.profile.vmm.shutdown_s)
        )
        self.state = VmmState.DEAD
        self._trace("vmm.shutdown.done")

    def crash(self, reason: str = "aging") -> None:
        """The failure rejuvenation exists to preempt.

        A crashed VMM freezes every domain: their services stop answering
        instantly (recorded so downtime measurement sees the outage begin
        at the crash, not at its later detection).
        """
        self.state = VmmState.CRASHED
        self._trace("vmm.crash", reason=reason)
        for domain in self.domus:
            guest = domain.guest
            if guest is None:
                continue
            for service in guest.services:
                if service.is_up:
                    self.sim.trace.record(
                        "service.down",
                        service=service.name,
                        service_kind=service.kind,
                        domain=domain.name,
                        reason="vmm-crash",
                    )
