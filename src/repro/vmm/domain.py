"""Domains: the VMM's unit of virtualization (Xen terminology, §4).

A :class:`Domain` is hypervisor-side state: identity, memory (via its P2M
table), virtual CPUs, devices, event channels and an execution context.
The guest *software* running inside (kernel, page cache, services) is a
separate object attached as ``domain.guest`` by the guest layer — the
separation mirrors reality and is what lets a warm resume hand the same
guest image to a brand-new domain record under a brand-new hypervisor.

State machine::

    BUILDING -> RUNNING -> SHUTTING_DOWN -> SHUTDOWN -> (destroyed) DEAD
                  |  ^
                  v  | (on-memory / saved resume)
              SUSPENDING -> SUSPENDED

Transitions are checked: illegal ones raise :class:`DomainError`, which is
how tests catch orchestration bugs (e.g. resuming a domain that was never
suspended).
"""

from __future__ import annotations

import enum
import typing

from repro.errors import DomainError
from repro.memory import P2MTable
from repro.units import pages
from repro.vmm.devices import DeviceSet


class DomainState(enum.Enum):
    BUILDING = "building"
    RUNNING = "running"
    SUSPENDING = "suspending"
    SUSPENDED = "suspended"
    SHUTTING_DOWN = "shutting-down"
    SHUTDOWN = "shutdown"
    DEAD = "dead"


_LEGAL_TRANSITIONS: dict[DomainState, set[DomainState]] = {
    DomainState.BUILDING: {DomainState.RUNNING, DomainState.DEAD},
    DomainState.RUNNING: {
        DomainState.SUSPENDING,
        DomainState.SHUTTING_DOWN,
        DomainState.DEAD,
    },
    DomainState.SUSPENDING: {DomainState.SUSPENDED, DomainState.DEAD},
    DomainState.SUSPENDED: {DomainState.RUNNING, DomainState.DEAD},
    DomainState.SHUTTING_DOWN: {DomainState.SHUTDOWN, DomainState.DEAD},
    DomainState.SHUTDOWN: {DomainState.DEAD},
    DomainState.DEAD: set(),
}


class Domain:
    """Hypervisor-side record of one VM."""

    def __init__(
        self,
        domid: int,
        name: str,
        memory_bytes: int,
        vcpus: int = 1,
        privileged: bool = False,
    ) -> None:
        if memory_bytes <= 0:
            raise DomainError(f"domain {name!r} needs > 0 memory")
        if vcpus < 1:
            raise DomainError(f"domain {name!r} needs >= 1 vcpu")
        self.domid = domid
        self.name = name
        self.memory_bytes = memory_bytes
        self.vcpus = vcpus
        self.privileged = privileged
        self.state = DomainState.BUILDING
        self.p2m = P2MTable(name, pages(memory_bytes))
        self.devices = DeviceSet()
        self.devices.add("vbd")
        self.devices.add("vif")
        self.execution_context: dict[str, typing.Any] = {"program_counter": 0}
        self.guest: typing.Any = None
        """The guest software image (set by the guest layer)."""

    # -- state machine ------------------------------------------------------------

    def transition(self, new_state: DomainState) -> None:
        """Move to ``new_state``; illegal transitions raise."""
        if new_state not in _LEGAL_TRANSITIONS[self.state]:
            raise DomainError(
                f"domain {self.name!r}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def is_running(self) -> bool:
        return self.state == DomainState.RUNNING

    @property
    def is_dom0(self) -> bool:
        return self.privileged

    def require_state(self, *states: DomainState) -> None:
        """Raise :class:`DomainError` unless in one of ``states``."""
        if self.state not in states:
            raise DomainError(
                f"domain {self.name!r} is {self.state.value}, expected "
                f"{'/'.join(s.value for s in states)}"
            )

    # -- memory ------------------------------------------------------------------------

    @property
    def mapped_pages(self) -> int:
        return self.p2m.mapped_pages

    def configuration(self) -> dict[str, typing.Any]:
        """The domain configuration saved at suspend (§4.2)."""
        return {
            "name": self.name,
            "memory_bytes": self.memory_bytes,
            "vcpus": self.vcpus,
            "devices": self.devices.descriptor(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Domain {self.domid} {self.name!r} {self.state.value}>"
