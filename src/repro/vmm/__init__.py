"""The hypervisor substrate: a Xen-3.0.0-alike VMM.

Domain lifecycle, event channels, xenstore, hypercalls, ballooning, and
disk-based save/restore.  The warm-VM-reboot mechanisms subclass
:class:`Hypervisor` in :mod:`repro.core`.
"""

from repro.vmm.devices import DeviceSet, VirtualDevice
from repro.vmm.domain import Domain, DomainState
from repro.vmm.event_channels import EventChannel, EventChannelTable
from repro.vmm.grant_tables import GrantEntry, GrantTable
from repro.vmm.hypervisor import DOM0_NAME, Hypervisor, VmmState
from repro.vmm.scheduler import DEFAULT_WEIGHT, CreditScheduler, SchedulerParams
from repro.vmm.xenstore import Xenstore

__all__ = [
    "CreditScheduler",
    "DEFAULT_WEIGHT",
    "DOM0_NAME",
    "DeviceSet",
    "SchedulerParams",
    "Domain",
    "DomainState",
    "EventChannel",
    "EventChannelTable",
    "GrantEntry",
    "GrantTable",
    "Hypervisor",
    "VirtualDevice",
    "VmmState",
    "Xenstore",
]
