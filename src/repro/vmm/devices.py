"""Virtual devices: block (vbd) and network (vif) frontends.

Devices matter to the rejuvenation mechanisms because the guest suspend
handler must *detach* them all before the suspend hypercall and the resume
handler must re-attach them (§4.2).  The model tracks attach state and
refuses I/O through a detached device, which catches ordering bugs in the
suspend/resume orchestration.
"""

from __future__ import annotations

import dataclasses

from repro.errors import DomainError


@dataclasses.dataclass
class VirtualDevice:
    """One frontend/backend device pair of a domain."""

    kind: str
    """``"vbd"`` (block) or ``"vif"`` (network)."""

    index: int
    attached: bool = True

    @property
    def device_id(self) -> str:
        return f"{self.kind}{self.index}"

    def require_attached(self) -> None:
        """Raise :class:`DomainError` if I/O would hit a detached device."""
        if not self.attached:
            raise DomainError(f"I/O on detached device {self.device_id}")


class DeviceSet:
    """All virtual devices of one domain."""

    def __init__(self) -> None:
        self._devices: dict[str, VirtualDevice] = {}

    def add(self, kind: str) -> VirtualDevice:
        """Provision a new device of ``kind`` ('vbd' or 'vif')."""
        if kind not in ("vbd", "vif"):
            raise DomainError(f"unknown device kind {kind!r}")
        index = sum(1 for d in self._devices.values() if d.kind == kind)
        device = VirtualDevice(kind, index)
        self._devices[device.device_id] = device
        return device

    def get(self, device_id: str) -> VirtualDevice:
        """Look a device up by id (e.g. 'vbd0'); raises if absent."""
        try:
            return self._devices[device_id]
        except KeyError:
            raise DomainError(f"no device {device_id!r}") from None

    def all(self) -> list[VirtualDevice]:
        """Every device of this domain."""
        return list(self._devices.values())

    @property
    def attached_count(self) -> int:
        return sum(1 for d in self._devices.values() if d.attached)

    def detach_all(self) -> int:
        """Suspend-handler step: detach everything; returns count."""
        count = 0
        for device in self._devices.values():
            if device.attached:
                device.attached = False
                count += 1
        return count

    def attach_all(self) -> int:
        """Resume-handler step: re-attach everything; returns count."""
        count = 0
        for device in self._devices.values():
            if not device.attached:
                device.attached = True
                count += 1
        return count

    def descriptor(self) -> list[str]:
        """Stable description for the preserved domain configuration."""
        return sorted(self._devices)
