"""Grant tables: Xen's inter-domain page-sharing mechanism.

Device I/O in a split-driver world works over shared rings: a frontend
domain *grants* the backend (dom0) access to specific pages of its own
memory.  The VMM tracks grants so it can enforce isolation — and so a
suspend can verify the domain quiesced its I/O: a domain must *revoke*
all grants in its suspend handler (devices detach), and the resume
handler re-establishes them.

The model tracks grant references at page granularity with in-use
("mapped by the grantee") accounting, because the dangerous case in the
real system is exactly a suspend racing an in-flight mapping.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.errors import VMMError


@dataclasses.dataclass
class GrantEntry:
    """One granted page."""

    reference: int
    granter: str
    grantee: str
    pfn: int
    writable: bool
    mapped: bool = False
    """True while the grantee has the page mapped (I/O in flight)."""


class GrantTable:
    """All grant entries managed by one hypervisor instance."""

    def __init__(self) -> None:
        self._entries: dict[int, GrantEntry] = {}
        self._references = itertools.count(1)
        self.grants_issued = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- granter side ------------------------------------------------------------

    def grant(
        self, granter: str, grantee: str, pfn: int, writable: bool = True
    ) -> GrantEntry:
        """Share one of ``granter``'s pages with ``grantee``."""
        if pfn < 0:
            raise VMMError(f"negative PFN {pfn}")
        if granter == grantee:
            raise VMMError("a domain cannot grant to itself")
        entry = GrantEntry(next(self._references), granter, grantee, pfn, writable)
        self._entries[entry.reference] = entry
        self.grants_issued += 1
        return entry

    def revoke(self, reference: int) -> None:
        """End a grant.  Refuses while the grantee still has it mapped —
        the real-world rule that forces devices to detach before suspend."""
        entry = self._lookup(reference)
        if entry.mapped:
            raise VMMError(
                f"grant {reference} of {entry.granter!r} is still mapped "
                f"by {entry.grantee!r}"
            )
        del self._entries[reference]

    # -- grantee side --------------------------------------------------------------

    def map_grant(self, reference: int, grantee: str) -> GrantEntry:
        """The grantee maps the shared page (I/O begins)."""
        entry = self._lookup(reference)
        if entry.grantee != grantee:
            raise VMMError(
                f"grant {reference} belongs to {entry.grantee!r}, "
                f"not {grantee!r}"
            )
        if entry.mapped:
            raise VMMError(f"grant {reference} is already mapped")
        entry.mapped = True
        return entry

    def unmap_grant(self, reference: int) -> None:
        """The grantee releases the shared page (I/O done)."""
        entry = self._lookup(reference)
        if not entry.mapped:
            raise VMMError(f"grant {reference} is not mapped")
        entry.mapped = False

    # -- queries ---------------------------------------------------------------------

    def _lookup(self, reference: int) -> GrantEntry:
        try:
            return self._entries[reference]
        except KeyError:
            raise VMMError(f"no grant with reference {reference}") from None

    def entries_of(self, granter: str) -> list[GrantEntry]:
        """All active grants issued by one domain."""
        return [e for e in self._entries.values() if e.granter == granter]

    def mapped_count(self, granter: str) -> int:
        """How many of a domain's grants are currently mapped (in-flight
        I/O that must drain before suspend)."""
        return sum(1 for e in self.entries_of(granter) if e.mapped)

    def require_quiesced(self, granter: str) -> None:
        """Raise unless the domain has revoked every grant — the suspend
        precondition (§4.2: the handler detaches all devices first)."""
        remaining = self.entries_of(granter)
        if remaining:
            raise VMMError(
                f"domain {granter!r} still holds {len(remaining)} grant(s); "
                "devices must detach before suspend"
            )

    def purge(self, granter: str) -> int:
        """Forcibly drop every grant of a dying domain (domain destroy):
        mapped or not, the pages are going away.  Returns entries dropped."""
        victims = [e.reference for e in self.entries_of(granter)]
        for reference in victims:
            del self._entries[reference]
        return len(victims)

    def revoke_all(self, granter: str) -> int:
        """Device-detach path: revoke every (unmapped) grant of a domain.

        Returns how many were revoked; raises if any is still mapped.
        """
        entries = self.entries_of(granter)
        for entry in entries:
            if entry.mapped:
                raise VMMError(
                    f"grant {entry.reference} still mapped; I/O not drained"
                )
        for entry in entries:
            del self._entries[entry.reference]
        return len(entries)
