"""Event channels: the Xen inter-domain notification primitive.

Guests and dom0 communicate through numbered channels (console, xenstore,
device rings).  The suspend path must snapshot channel state into the
16 KB execution-state area and the resume handler re-establishes the
bindings (§4.2) — so the table supports exactly that: snapshot/restore
plus teardown when a domain dies.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.errors import VMMError
from repro.simkernel.metrics import NULL

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.metrics import MetricsRegistry


@dataclasses.dataclass
class EventChannel:
    """One bound inter-domain channel."""

    port: int
    owner: str
    peer: str
    purpose: str
    pending: int = 0
    """Notifications delivered but not yet consumed."""


class EventChannelTable:
    """All channels managed by one hypervisor instance.

    ``metrics`` (the owning simulator's registry) backs the
    ``vmm.event_channel_sends`` counter; the table is constructed by the
    hypervisor, which passes its ``sim.metrics``.  Standalone tables
    (tests) default to the no-op instrument.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._channels: dict[int, EventChannel] = {}
        self._ports = itertools.count(1)
        self.notifications_sent = 0
        self._metric_sends = (
            metrics.counter("vmm.event_channel_sends")
            if metrics is not None
            else NULL
        )

    def bind(self, owner: str, peer: str, purpose: str) -> EventChannel:
        """Allocate and bind a new channel between two domains."""
        channel = EventChannel(next(self._ports), owner, peer, purpose)
        self._channels[channel.port] = channel
        return channel

    def lookup(self, port: int) -> EventChannel:
        """The channel bound on ``port``; raises if unbound."""
        try:
            return self._channels[port]
        except KeyError:
            raise VMMError(f"no event channel on port {port}") from None

    def notify(self, port: int) -> None:
        """Raise a pending notification on a channel."""
        channel = self.lookup(port)
        channel.pending += 1
        self.notifications_sent += 1
        self._metric_sends.inc()

    def consume(self, port: int) -> int:
        """Drain pending notifications; returns how many there were."""
        channel = self.lookup(port)
        pending, channel.pending = channel.pending, 0
        return pending

    def close(self, port: int) -> None:
        """Unbind one channel; raises if already closed."""
        if port not in self._channels:
            raise VMMError(f"closing unbound port {port}")
        del self._channels[port]

    def channels_of(self, domain: str) -> list[EventChannel]:
        """All channels with ``domain`` on either end."""
        return [
            c
            for c in self._channels.values()
            if domain in (c.owner, c.peer)
        ]

    def close_domain(self, domain: str) -> int:
        """Tear down all of a dying domain's channels; returns count."""
        ports = [c.port for c in self.channels_of(domain)]
        for port in ports:
            del self._channels[port]
        return len(ports)

    def snapshot_domain(self, domain: str) -> list[dict[str, typing.Any]]:
        """Channel state for the execution-state save area (§4.2)."""
        return [dataclasses.asdict(c) for c in self.channels_of(domain)]

    def restore_domain(self, snapshot: list[dict[str, typing.Any]]) -> int:
        """Re-establish channels from a saved snapshot (resume handler).

        Ports are reallocated — the new VMM instance assigns fresh port
        numbers, as re-binding after reboot does — but peers, purposes and
        pending counts are preserved.  Returns channels restored.
        """
        for entry in snapshot:
            channel = self.bind(entry["owner"], entry["peer"], entry["purpose"])
            channel.pending = entry["pending"]
        return len(snapshot)

    def __len__(self) -> int:
        return len(self._channels)
