"""One consolidated server host: machine + hypervisor + VMs.

:class:`Host` owns the orchestration that the paper's experiments exercise:
bringing up the full stack, cold-booting guests, and dispatching the three
reboot strategies.  Hypervisor *instances* come and go across reboots; the
host, like the physical machine, persists.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.aging.faults import AgingFaults
from repro.config import TimingProfile, paper_testbed
from repro.core.roothammer import RootHammerHypervisor
from repro.errors import RejuvenationError
from repro.guest.filesystem import Filesystem
from repro.guest.kernel import GuestKernel
from repro.guest.services import make_service
from repro.hardware.machine import PhysicalMachine
from repro.simkernel import RandomStreams, Simulator
from repro.units import GiB
from repro.vmm.domain import Domain, DomainState
from repro.vmm.hypervisor import DOM0_NAME, Hypervisor


@dataclasses.dataclass(frozen=True)
class VMSpec:
    """Static description of one VM the host should run.

    ``driver_domain=True`` marks a domU running device drivers (§7):
    such domains cannot be suspended, so a warm reboot must cold-cycle
    them — the downtime cost the paper attributes to driver domains.
    """

    name: str
    memory_bytes: int = 1 * GiB
    services: tuple[str, ...] = ("ssh",)
    vcpus: int = 1
    driver_domain: bool = False
    cpu_weight: int = 256
    """Credit-scheduler weight (Xen default 256)."""
    cpu_cap_cores: float | None = None
    """Credit-scheduler cap in cores (None = work-conserving)."""

    def build_guest(
        self, profile: TimingProfile, filesystem: Filesystem
    ) -> GuestKernel:
        """A fresh guest image for this spec (cold-boot path)."""
        return GuestKernel(
            self.name,
            self.memory_bytes,
            profile,
            filesystem=filesystem,
            services=[make_service(kind, profile.services) for kind in self.services],
        )


class Host:
    """A consolidated server: the unit the reboot strategies act on."""

    def __init__(
        self,
        sim: Simulator,
        profile: TimingProfile | None = None,
        name: str = "host",
        faults: AgingFaults | None = None,
        hypervisor_cls: type[Hypervisor] = RootHammerHypervisor,
        streams: RandomStreams | None = None,
    ) -> None:
        self.sim = sim
        self.profile = profile if profile is not None else paper_testbed()
        self.name = name
        self.faults = faults if faults is not None else AgingFaults.healthy()
        self.hypervisor_cls = hypervisor_cls
        self.machine = PhysicalMachine(sim, self.profile, name=name, streams=streams)
        self.vm_specs: dict[str, VMSpec] = {}
        self.vmm: Hypervisor | None = None
        self.generation = 0
        self.started = False

    # -- configuration ------------------------------------------------------------

    def install_vm(self, spec: VMSpec) -> None:
        """Register a VM and provision its virtual disk."""
        if self.started:
            raise RejuvenationError(
                "install VMs before start(); hotplug is out of scope"
            )
        if spec.name in self.vm_specs or spec.name == DOM0_NAME:
            raise RejuvenationError(f"duplicate VM name {spec.name!r}")
        self.vm_specs[spec.name] = spec
        self.machine.disk_store[f"fs:{spec.name}"] = Filesystem()

    def install_vms(self, specs: typing.Iterable[VMSpec]) -> None:
        """Register several VMs (see :meth:`install_vm`)."""
        for spec in specs:
            self.install_vm(spec)

    def filesystem(self, name: str) -> Filesystem:
        """The persistent virtual-disk catalogue of one VM."""
        try:
            return self.machine.disk_store[f"fs:{name}"]
        except KeyError:
            raise RejuvenationError(f"no VM named {name!r} installed") from None

    # -- accessors ------------------------------------------------------------------

    def require_vmm(self) -> Hypervisor:
        """The running hypervisor; raises if none (mid-reboot)."""
        if self.vmm is None:
            raise RejuvenationError(f"host {self.name!r} has no running VMM")
        return self.vmm

    def domain(self, name: str) -> Domain:
        """Look a domain up on the current hypervisor."""
        return self.require_vmm().domain(name)

    def guest(self, name: str) -> GuestKernel:
        """The named VM's guest image; raises if it has none."""
        guest = self.domain(name).guest
        if guest is None:
            raise RejuvenationError(f"domain {name!r} has no guest image")
        return guest

    def guests(self) -> list[GuestKernel]:
        """Every domU's guest image, by domain id."""
        return [
            d.guest
            for d in self.require_vmm().domus
            if d.guest is not None
        ]

    @property
    def vm_count(self) -> int:
        return len(self.vm_specs)

    # -- bring-up ----------------------------------------------------------------------

    def start(self) -> typing.Generator:
        """Power-on bring-up: VMM, dom0, then all installed VMs (cold)."""
        if self.started:
            raise RejuvenationError(f"host {self.name!r} already started")
        yield from self.boot_vmm_instance()
        yield from self.boot_dom0()
        yield from self.cold_boot_guests(self.vm_specs.values())
        self.started = True
        self.sim.trace.record("host.started", host=self.name)

    def boot_vmm_instance(self) -> Hypervisor | typing.Generator:
        """Construct and boot the next hypervisor generation."""
        self.generation += 1
        self.vmm = self.hypervisor_cls(
            self.machine,
            self.profile,
            faults=self.faults,
            generation=self.generation,
        )
        yield from self.vmm.boot()
        return self.vmm

    def boot_dom0(self) -> typing.Generator:
        """Create dom0 and charge its kernel + toolstack boot time."""
        vmm = self.require_vmm()
        dom0 = vmm.create_dom0()
        yield self.sim.timeout(
            self.machine.duration("dom0.boot", self.profile.dom0.boot_s)
        )
        self.sim.trace.record("host.dom0.booted", host=self.name)
        return dom0

    def shutdown_dom0(self) -> typing.Generator:
        """dom0's orderly shutdown (its services stop, kernel halts)."""
        vmm = self.require_vmm()
        dom0 = vmm.domain(DOM0_NAME)
        dom0.transition(DomainState.SHUTTING_DOWN)
        yield self.sim.timeout(
            self.machine.duration("dom0.shutdown", self.profile.dom0.shutdown_s)
        )
        dom0.transition(DomainState.SHUTDOWN)
        self.sim.trace.record("host.dom0.shutdown", host=self.name)

    def cold_boot_guests(
        self, specs: typing.Iterable[VMSpec]
    ) -> typing.Generator:
        """Create domains (serialized by the toolstack) and boot fresh
        guest images in parallel; applies the simultaneous-creation
        network quirk when several domains start at once."""
        vmm = self.require_vmm()
        specs = list(specs)
        boots = []
        for spec in specs:
            domain = yield from vmm.create_domain(
                spec.name, spec.memory_bytes, vcpus=spec.vcpus
            )
            guest = spec.build_guest(self.profile, self.filesystem(spec.name))
            guest.rebind(vmm, domain)
            boots.append(self.sim.spawn(guest.boot(), name=f"boot:{spec.name}"))
        self.apply_creation_quirk(len(specs))
        self.apply_scheduler_params()
        if boots:
            yield self.sim.all_of(boots)
        return [proc.value for proc in boots]

    def apply_scheduler_params(self) -> None:
        """Configure the credit scheduler from each VM's spec (applied
        after any path that (re)creates domains: boot, resume, restore)."""
        from repro.vmm.scheduler import SchedulerParams

        vmm = self.require_vmm()
        for spec in self.vm_specs.values():
            if spec.name in vmm.domains:
                vmm.scheduler.set_params(
                    spec.name,
                    SchedulerParams(
                        weight=spec.cpu_weight, cap_cores=spec.cpu_cap_cores
                    ),
                )

    def apply_creation_quirk(self, created_count: int) -> None:
        """The Xen 3.0.0 artifact behind Figure 7's post-resume dip:
        creating several VMs at once degrades network performance for a
        while.  Modelled as a temporary NIC bandwidth factor."""
        quirks = self.profile.quirks
        if (
            created_count < quirks.min_vms_for_slump
            or quirks.post_create_network_slump_s <= 0
        ):
            return
        self.machine.nic.set_degradation(quirks.post_create_network_factor)
        self.sim.trace.record("host.quirk.slump.start", host=self.name)

        def restore() -> None:
            self.machine.nic.clear_degradation()
            self.sim.trace.record("host.quirk.slump.end", host=self.name)

        self.sim.call_in(quirks.post_create_network_slump_s, restore)

    def recover_from_crash(self) -> typing.Generator:
        """Unplanned recovery after a VMM crash (the reactive path that
        rejuvenation exists to preempt): no orderly shutdown is possible,
        so the machine is hardware-reset and everything cold-boots.

        Returns the recovery duration.
        """
        vmm = self.require_vmm()
        from repro.vmm.hypervisor import VmmState

        if vmm.state is not VmmState.CRASHED:
            raise RejuvenationError("recover_from_crash needs a crashed VMM")
        started = self.sim.now
        self.sim.trace.record("host.crash_recovery.start", host=self.name)
        for domain in vmm.domus:
            if domain.guest is not None:
                domain.guest.mark_dead()
        yield from self.machine.hardware_reset()
        yield from self.boot_vmm_instance()
        yield from self.boot_dom0()
        yield from self.cold_boot_guests(self.vm_specs.values())
        self.sim.trace.record(
            "host.crash_recovery.done",
            host=self.name,
            duration=self.sim.now - started,
        )
        return self.sim.now - started

    def reboot_guest(
        self, name: str, checkpoint_processes: bool = False
    ) -> typing.Generator:
        """OS rejuvenation of a single VM (§3.2): orderly shutdown, destroy,
        fresh create + boot.  The VMM keeps running; other VMs are
        untouched.  Returns the new guest image.

        ``checkpoint_processes=True`` applies the §7 Randell-style
        alternative one level down: service processes are checkpointed to
        the virtual disk before the reboot and *restored* instead of
        cold-started afterwards — the OS is rejuvenated but the
        application state (and its expensive start) is not repaid.
        """
        vmm = self.require_vmm()
        spec = self.vm_specs.get(name)
        if spec is None:
            raise RejuvenationError(f"no VM named {name!r} installed")
        domain = vmm.domain(name)
        started = self.sim.now
        spans = self.sim.spans
        with spans.span(
            "guest.rejuvenation",
            actor=name,
            parent=spans.current(self.name),
        ):
            self.sim.trace.record("guest.rejuvenation.start", domain=name)
            checkpoints: list[dict[str, typing.Any]] = []
            if checkpoint_processes and domain.guest is not None:
                costs = self.profile.services
                for service in domain.guest.services:
                    if service.is_up:
                        checkpoints.append(service.checkpoint())
                        yield self.machine.disk.write(
                            f"{name}:ckpt:{service.name}", costs.checkpoint_bytes
                        )
            domain.transition(DomainState.SHUTTING_DOWN)
            if domain.guest is not None:
                yield from domain.guest.shutdown()
                domain.guest.mark_dead()
            domain.transition(DomainState.SHUTDOWN)
            vmm.destroy_domain(name)
            if not checkpoints:
                guests = yield from self.cold_boot_guests([spec])
                guest = guests[0]
            else:
                guest = yield from self._boot_guest_from_checkpoints(
                    spec, checkpoints
                )
            self.sim.trace.record(
                "guest.rejuvenation.done",
                domain=name,
                duration=self.sim.now - started,
            )
        return guest

    def _boot_guest_from_checkpoints(
        self, spec: VMSpec, checkpoints: list[dict[str, typing.Any]]
    ) -> typing.Generator:
        """Boot a fresh kernel but restore services from checkpoints."""
        vmm = self.require_vmm()
        domain = yield from vmm.create_domain(
            spec.name, spec.memory_bytes, vcpus=spec.vcpus
        )
        guest = spec.build_guest(self.profile, self.filesystem(spec.name))
        # Detach the pre-built service objects: the kernel boots bare and
        # the processes come back from their checkpoints instead.
        services, guest.services = guest.services, []
        guest.rebind(vmm, domain)
        yield from guest.boot()
        guest.services = services
        by_kind: dict[str, list[dict[str, typing.Any]]] = {}
        for state in checkpoints:
            by_kind.setdefault(state["kind"], []).append(state)
        for service in services:
            saved = by_kind.get(service.kind)
            if saved:
                yield from service.start_from_checkpoint(guest, saved.pop(0))
            else:
                yield from service.start(guest)
        self.apply_scheduler_params()
        return guest

    def restart_service(self, vm_name: str, service_name: str) -> typing.Generator:
        """Microreboot (§7, Candea et al.): restart one service process in
        place — the finest rejuvenation granularity.  Nothing else on the
        VM (let alone the host) is touched."""
        guest = self.guest(vm_name)
        service = guest.service(service_name)
        self.sim.trace.record(
            "service.microreboot", domain=vm_name, service=service_name
        )
        service.mark_stopped(reason="microreboot")
        yield from service.start(guest)
        return service

    # -- rejuvenation entry point -------------------------------------------------------

    def reboot(
        self, strategy: "str | typing.Any", **options: typing.Any
    ) -> typing.Generator:
        """Reboot the VMM using a strategy name or RebootStrategy value.

        ``options`` are forwarded to the strategy (e.g. ``variant=`` to
        pick a §7 save acceleration for the saved-VM reboot).  Returns the
        strategy's :class:`~repro.core.strategies.RebootReport`.
        """
        from repro.core import strategies  # local import: cycle guard

        report = yield from strategies.execute(self, strategy, **options)
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Host {self.name} gen={self.generation} vms={self.vm_count}>"
