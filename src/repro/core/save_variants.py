"""Related-work save/restore accelerations (§7) as extra baselines.

The paper's related-work section surveys three ways to make the *saved*
path faster and argues none of them reaches the warm-VM reboot:

* **incremental saves** (VMware): write only the pages modified since a
  base image — cuts disk writes on suspend but "disk accesses on resume
  are not reduced";
* **compressed images** (Windows XP hibernation): fewer bytes both ways,
  but CPU is spent compressing and decompressing;
* **non-volatile RAM disks** (i-RAM): no seeks and a faster medium, but
  "it takes time to copy the memory images" through the SATA-attached
  device, and the hardware is expensive.

:class:`SaveVariant` parameterizes the baseline save/restore path with
those three accelerations so the claim can be *measured*: each variant
shrinks the saved-VM reboot's downtime, none gets near the warm reboot
(see ``benchmarks/bench_related_work.py``).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.units import MiB


@dataclasses.dataclass(frozen=True)
class SaveVariant:
    """One configuration of the disk-based save/restore path."""

    name: str

    compression_ratio: float = 1.0
    """Bytes on the medium per byte of memory (0.5 = 2:1 compression)."""

    compression_cpu_s_per_gib: float = 0.0
    """CPU seconds per GiB spent compressing (save) and decompressing
    (restore)."""

    save_fraction: float = 1.0
    """Fraction of the image written on save (incremental checkpointing:
    only the modification since the base image).  Restores always read
    the full image."""

    medium: str = "disk"
    """``"disk"`` (the SCSI disk) or ``"ramdisk"`` (an i-RAM-like
    battery-backed DRAM disk on SATA)."""

    def __post_init__(self) -> None:
        if not 0 < self.compression_ratio <= 1:
            raise ConfigError("compression_ratio must be in (0, 1]")
        if self.compression_cpu_s_per_gib < 0:
            raise ConfigError("compression CPU cost must be >= 0")
        if not 0 < self.save_fraction <= 1:
            raise ConfigError("save_fraction must be in (0, 1]")
        if self.medium not in ("disk", "ramdisk"):
            raise ConfigError(f"unknown save medium {self.medium!r}")

    def save_bytes(self, memory_bytes: int) -> int:
        """Bytes written to the medium when saving."""
        return int(memory_bytes * self.save_fraction * self.compression_ratio)

    def restore_bytes(self, memory_bytes: int) -> int:
        """Bytes read from the medium when restoring (always the full,
        possibly compressed, image)."""
        return int(memory_bytes * self.compression_ratio)

    def codec_cpu_s(self, memory_bytes: int) -> float:
        """CPU work for one (de)compression pass over the image."""
        return self.compression_cpu_s_per_gib * memory_bytes / (1024 * MiB)


PLAIN = SaveVariant("plain")
"""Original Xen behaviour: full uncompressed image to the SCSI disk."""

INCREMENTAL = SaveVariant("incremental", save_fraction=0.3)
"""VMware-style: ~30 % of the image dirty since the base checkpoint."""

COMPRESSED = SaveVariant(
    "compressed", compression_ratio=0.5, compression_cpu_s_per_gib=3.0
)
"""Windows-XP-hibernation-style: 2:1 compression at ~3 CPU-s per GiB."""

RAMDISK = SaveVariant("ramdisk", medium="ramdisk")
"""i-RAM-style non-volatile RAM disk: no seeks, SATA-limited bandwidth."""

ALL_VARIANTS = (PLAIN, INCREMENTAL, COMPRESSED, RAMDISK)


def variant_by_name(name: str) -> SaveVariant:
    """Resolve a built-in variant by its name."""
    for variant in ALL_VARIANTS:
        if variant.name == name:
            return variant
    raise ConfigError(
        f"unknown save variant {name!r}; known: "
        + ", ".join(v.name for v in ALL_VARIANTS)
    )
