"""RootHammer controller: the library's high-level public API.

Wraps a simulator + host + hypervisor into one object a user can drive
imperatively (build, start, rejuvenate, measure) without writing simulation
processes::

    from repro.core import RootHammer, VMSpec

    rh = RootHammer.started(vms=[VMSpec(f"vm{i}") for i in range(4)])
    report = rh.rejuvenate("warm")
    print(report.total, rh.downtime_summary(since=report.started).mean)
"""

from __future__ import annotations

import typing

from repro.aging.faults import AgingFaults
from repro.analysis.downtime import (
    DowntimeInterval,
    DowntimeSummary,
    extract_downtimes,
    reboot_downtime_summary,
)
from repro.config import TimingProfile, paper_testbed
from repro.core.host import Host, VMSpec
from repro.core.roothammer import RootHammerHypervisor
from repro.core.strategies import RebootReport, RebootStrategy
from repro.errors import RejuvenationError
from repro.simkernel import RandomStreams, Simulator
from repro.vmm.hypervisor import Hypervisor


class RootHammer:
    """A simulated consolidated server under RootHammer's control."""

    def __init__(
        self,
        profile: TimingProfile | None = None,
        faults: AgingFaults | None = None,
        seed: int = 0,
        hypervisor_cls: type[Hypervisor] = RootHammerHypervisor,
        host_name: str = "server",
        backend: typing.Any = None,
        metrics: bool | None = None,
    ) -> None:
        self.sim = Simulator(backend=backend, metrics=metrics)
        self.streams = RandomStreams(seed)
        self.host = Host(
            self.sim,
            profile=profile if profile is not None else paper_testbed(),
            name=host_name,
            faults=faults,
            hypervisor_cls=hypervisor_cls,
            streams=self.streams,
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def started(
        cls,
        vms: typing.Iterable[VMSpec],
        **kwargs: typing.Any,
    ) -> "RootHammer":
        """Build a controller, install ``vms`` and run the bring-up."""
        controller = cls(**kwargs)
        controller.host.install_vms(vms)
        controller.run_process(controller.host.start())
        return controller

    # -- simulation drivers -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run_process(self, generator: typing.Generator) -> typing.Any:
        """Spawn a process and run the simulation until it completes."""
        return self.sim.run(self.sim.spawn(generator))

    def run_for(self, seconds: float) -> None:
        """Advance simulated time (e.g. to age the system or let a
        workload produce steady-state throughput)."""
        if seconds < 0:
            raise RejuvenationError(f"cannot run for negative time {seconds}")
        self.sim.run(until=self.sim.now + seconds)

    # -- rejuvenation --------------------------------------------------------------------

    def rejuvenate(
        self, strategy: "str | RebootStrategy", **options: typing.Any
    ) -> RebootReport:
        """Execute a VMM reboot with the given strategy, to completion.

        ``options`` are forwarded to the strategy, e.g.
        ``rejuvenate("saved", variant=save_variants.COMPRESSED)``.
        """
        return self.run_process(self.host.reboot(strategy, **options))

    # -- measurement -----------------------------------------------------------------------

    def downtimes(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        **filters: typing.Any,
    ) -> list[DowntimeInterval]:
        """Per-service outage intervals extracted from the trace."""
        return extract_downtimes(self.sim.trace, since=since, until=until, **filters)

    def downtime_summary(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        service: str | None = None,
    ) -> DowntimeSummary:
        """Mean/min/max downtime across VMs (the Figure 6 quantity)."""
        return reboot_downtime_summary(
            self.sim.trace, since=since, until=until, service=service
        )

    # -- convenience passthroughs ---------------------------------------------------------

    def guest(self, name: str):
        """The named VM's guest image (see :meth:`Host.guest`)."""
        return self.host.guest(name)

    def vmm(self) -> Hypervisor:
        """The currently running hypervisor instance."""
        return self.host.require_vmm()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RootHammer host={self.host.name} t={self.sim.now:.6g}>"
