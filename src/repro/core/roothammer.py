"""RootHammer: the paper's modified hypervisor (§4).

:class:`RootHammerHypervisor` extends the baseline Xen-alike with the two
mechanisms the warm-VM reboot is built from:

* **on-memory suspend/resume** (§4.2): :meth:`suspend_domain_on_memory`
  freezes a domain's memory image *in place* — the P2M snapshot and the
  16 KB execution state go to the preserved store, the frames are never
  freed and never written to disk — and :meth:`resume_domain_on_memory`
  rebuilds a domain record around the untouched image.  Suspend cost is
  therefore (nearly) independent of memory size, the property Figure 4
  demonstrates.

* **quick reload** (§4.3): the ``xexec`` hypercall loads a successor
  VMM+dom0 image into memory; :meth:`_reserve_preserved_images` makes the
  successor re-adopt every preserved extent *before* its boot-time scrub,
  so initialization cannot corrupt frozen images — and scrubs less, which
  is why ``reboot_vmm(n)`` *falls* as more memory is preserved.
"""

from __future__ import annotations

import typing

from repro.errors import DomainError, HypercallError, RejuvenationError
from repro.memory import P2MTable, SuspendImage
from repro.units import GiB
from repro.vmm.domain import Domain, DomainState
from repro.vmm.hypervisor import Hypervisor


class RootHammerHypervisor(Hypervisor):
    """A Xen 3.0.0 with the RootHammer modifications applied."""

    def __init__(self, *args: typing.Any, **kwargs: typing.Any) -> None:
        super().__init__(*args, **kwargs)
        self.loaded_successor_image: dict[str, typing.Any] | None = None

    # -- xexec: loading the successor VMM (§4.3) --------------------------------------

    def _hc_xexec(self, caller: Domain, image: dict[str, typing.Any] | None = None) -> None:
        """Load a new executable image (VMM + dom0 kernel + initrd) into
        memory, ready for the quick reload jump.  dom0-only."""
        if not caller.is_dom0:
            self._record_error_path()
            raise HypercallError("xexec may only be issued by domain 0")
        self.loaded_successor_image = image or {
            "vmm": f"roothammer-gen{self.generation + 1}",
            "dom0_kernel": "vmlinuz-2.6.12-xen0",
            "initrd": "initrd-2.6.12-xen0.img",
        }
        self._trace("vmm.xexec.loaded")

    def xexec_load(self) -> typing.Generator:
        """dom0's xexec system call: charges the image-load time and issues
        the xexec hypercall (§4.3)."""
        dom0 = self.domain("Domain-0")
        yield self.sim.timeout(
            self._duration("vmm.xexec", self.profile.vmm.image_load_s)
        )
        self.hypercall("xexec", dom0)

    @property
    def ready_for_quick_reload(self) -> bool:
        return self.loaded_successor_image is not None

    # -- the suspend hypercall + on-memory suspend (§4.2) -------------------------------

    def _hc_suspend(self, caller: Domain) -> SuspendImage:
        """Freeze the calling domain's memory image in place.

        Issued by the guest kernel at the end of its suspend handler.  The
        frames stay allocated (maintained via the P2M table); only the
        16 KB execution state and the domain configuration are written to
        the preserved area.
        """
        caller.require_state(DomainState.SUSPENDING)
        # The handler must have drained I/O: no live grants may remain
        # (otherwise dom0 backends could scribble on a frozen image).
        self.grant_table.require_quiesced(caller.name)
        image = SuspendImage(
            domain_name=caller.name,
            p2m_snapshot=caller.p2m.snapshot(),
            execution_state={
                "context": dict(caller.execution_context),
                "event_channels": self.event_channels.snapshot_domain(caller.name),
            },
            configuration={
                **caller.configuration(),
                "guest_image": caller.guest,
            },
        )
        self.machine.preserved.save(image)
        caller.transition(DomainState.SUSPENDED)
        self._trace("vmm.onmem.suspended", domain=caller.name)
        return image

    def suspend_domain_on_memory(self, name: str) -> typing.Generator:
        """On-memory suspend of one domU: send the suspend event, run the
        guest handler, take the suspend hypercall.  The VMM (not dom0)
        drives this, so it can run after dom0 has already shut down — the
        delay that keeps services up longer (§4.2)."""
        domain = self.domain(name)
        if domain.is_dom0:
            raise DomainError("dom0 cannot be on-memory suspended (§8 future work)")
        spans = self.sim.spans
        # domains suspend concurrently, so each is its own span actor; the
        # causal parent is the host's enclosing reboot span (if any).
        with spans.span(
            "vmm.suspend",
            actor=name,
            parent=spans.current(self.machine.name),
        ):
            domain.require_state(DomainState.RUNNING)
            domain.transition(DomainState.SUSPENDING)
            if domain.guest is not None:
                yield from domain.guest.run_suspend_handler()
            freeze = self.profile.vmm.suspend_base_s + (
                self.profile.vmm.suspend_s_per_gib * (domain.memory_bytes / GiB)
            )
            yield self.sim.timeout(self._duration("onmem.suspend", freeze))
            self.hypercall("suspend", domain)

    def suspend_all_domus(self) -> typing.Generator:
        """Suspend every domU in parallel (the pre-reboot step of Fig. 3)."""
        names = [d.name for d in self.domus if d.state is DomainState.RUNNING]
        procs = [
            self.sim.spawn(
                self.suspend_domain_on_memory(name), name=f"suspend:{name}"
            )
            for name in names
        ]
        if procs:
            yield self.sim.all_of(procs)
        return names

    # -- quick-reload boot path (§4.3) ----------------------------------------------------

    def _reserve_preserved_images(self) -> None:
        """Replay preserved P2M tables into the fresh allocator before the
        boot-time scrub — the new VMM 'first reserves the memory for the
        P2M-mapping table [and] the memory pages that have been allocated
        to domain Us' (§4.3)."""
        for image in self.machine.preserved.images():
            p2m = P2MTable.from_snapshot(image.domain_name, image.p2m_snapshot)
            for extent in p2m.machine_extents():
                self.allocator.reserve_exact(extent, image.domain_name)
            self._trace("vmm.preserved.reserved", domain=image.domain_name)

    # -- on-memory resume (§4.2) ------------------------------------------------------------

    def resume_domain_on_memory(self, name: str) -> typing.Generator:
        """Rebuild a domain around its preserved, untouched memory image.

        dom0 'creates a new domain U, allocates the memory pages recorded
        in the P2M-mapping table ... and restores its memory image' — here
        the allocation step is adoption of the extents already re-reserved
        at boot, and 'restoring' the image is free because it never moved.
        Serialized through the dom0 toolstack like any domain creation.
        """
        self.require_running()
        image = self.machine.preserved.load(name)
        if name in self.domains:
            raise DomainError(f"domain {name!r} already exists")
        config = image.configuration
        guest = config.get("guest_image")
        spans = self.sim.spans
        with spans.span(
            "vmm.resume",
            actor=name,
            parent=spans.current(self.machine.name),
        ):
            with self.toolstack.request() as grant:
                yield grant
                per_domain = (
                    self.profile.vmm.resume_create_s
                    + self.profile.vmm.resume_s_per_gib
                    * (config["memory_bytes"] / GiB)
                    + self.profile.vmm.resume_devices_s
                )
                yield self.sim.timeout(self._duration("onmem.resume", per_domain))
                domain = Domain(
                    next(self._domids),
                    name,
                    config["memory_bytes"],
                    vcpus=config["vcpus"],
                )
                domain.p2m = P2MTable.from_snapshot(name, image.p2m_snapshot)
                self._register_domain(domain, bind_channels=False)
                self.event_channels.restore_domain(
                    image.execution_state["event_channels"]
                )
                domain.execution_context = dict(image.execution_state["context"])
                # The new record reflects reality: frontends are still detached.
                domain.devices.detach_all()
                domain.state = DomainState.SUSPENDED  # adopted mid-suspend
            if guest is not None:
                guest.rebind(self, domain)
                yield from guest.run_resume_handler()
            domain.transition(DomainState.RUNNING)
            self.machine.preserved.discard(name)
            self._trace("vmm.onmem.resumed", domain=name)
        return domain

    def resume_all_preserved(self) -> typing.Generator:
        """Resume every preserved domain (serialized by the toolstack)."""
        resumed = []
        for name in list(self.machine.preserved.domain_names):
            domain = yield from self.resume_domain_on_memory(name)
            resumed.append(domain)
        return resumed

    def verify_no_preserved_overlap(self) -> None:
        """Invariant check: preserved images must map disjoint frames and
        the allocator must charge them to their owners."""
        seen: set[int] = set()
        for image in self.machine.preserved.images():
            p2m = P2MTable.from_snapshot(image.domain_name, image.p2m_snapshot)
            for extent in p2m.machine_extents():
                for mfn in extent:
                    if mfn in seen:
                        raise RejuvenationError(
                            f"preserved images overlap at MFN {mfn}"
                        )
                    seen.add(mfn)
