"""The paper's contribution: warm-VM reboot and its orchestration.

* :class:`RootHammerHypervisor` — on-memory suspend/resume + quick reload;
* :class:`Host` / :class:`VMSpec` — one consolidated server;
* reboot strategies — warm (the technique), saved and cold (baselines),
  dom0-only (future-work extension);
* :class:`RootHammer` — the high-level controller facade.
"""

from repro.core.controller import RootHammer
from repro.core.host import Host, VMSpec
from repro.core.roothammer import RootHammerHypervisor
from repro.core.save_variants import (
    ALL_VARIANTS,
    COMPRESSED,
    INCREMENTAL,
    PLAIN,
    RAMDISK,
    SaveVariant,
    variant_by_name,
)
from repro.core.strategies import (
    Phase,
    RebootReport,
    RebootStrategy,
    cold_reboot,
    dom0_reboot,
    execute,
    saved_reboot,
    warm_reboot,
)

__all__ = [
    "ALL_VARIANTS",
    "COMPRESSED",
    "INCREMENTAL",
    "PLAIN",
    "RAMDISK",
    "SaveVariant",
    "variant_by_name",
    "Host",
    "Phase",
    "RebootReport",
    "RebootStrategy",
    "RootHammer",
    "RootHammerHypervisor",
    "VMSpec",
    "cold_reboot",
    "dom0_reboot",
    "execute",
    "saved_reboot",
    "warm_reboot",
]
