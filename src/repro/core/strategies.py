"""The three VMM rejuvenation strategies the paper compares (§5.3).

* :func:`warm_reboot` — the contribution: on-memory suspend, quick reload,
  on-memory resume.  No disk I/O for images, no hardware reset, no guest
  reboot, page caches intact.
* :func:`saved_reboot` — original Xen's suspend/resume: every VM's memory
  image is written to and read back from disk around a normal (hardware
  reset) reboot.
* :func:`cold_reboot` — a plain reboot: orderly guest shutdown, hardware
  reset, fresh guest boot; all memory state is lost.

Each strategy returns a :class:`RebootReport` with a named phase timeline
(the raw material for the paper's Figure 7 breakdown and §5.6 model fits).
Service downtimes are *not* in the report — they are measured from trace
records by :mod:`repro.analysis.downtime`, exactly as the paper measures
from the client side.

Every strategy also runs inside a ``reboot`` causal span (actor = host
name, detail = strategy) with one ``reboot.phase`` child span per phase,
so the Perfetto exporter shows the same breakdown Figure 7 tabulates and
:func:`repro.analysis.obs.reboot_critical_path` can reconcile the two.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import typing

from repro.errors import RejuvenationError
from repro.core.roothammer import RootHammerHypervisor
from repro.vmm.domain import DomainState

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.host import Host, VMSpec


class RebootStrategy(enum.Enum):
    WARM = "warm"
    SAVED = "saved"
    COLD = "cold"
    DOM0_ONLY = "dom0-only"
    """Extension (§8 future work): rejuvenate only the privileged VM."""


@dataclasses.dataclass(frozen=True)
class Phase:
    """One named interval of a reboot."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass
class RebootReport:
    """Timeline of one completed VMM reboot."""

    strategy: RebootStrategy
    host: str
    vm_count: int
    started: float
    finished: float = 0.0
    phases: list[Phase] = dataclasses.field(default_factory=list)

    @property
    def total(self) -> float:
        return self.finished - self.started

    def phase(self, name: str) -> Phase:
        """The named phase; raises :class:`RejuvenationError` if absent."""
        for candidate in self.phases:
            if candidate.name == name:
                return candidate
        raise RejuvenationError(f"no phase named {name!r}")

    def phase_duration(self, name: str) -> float:
        """Duration of the named phase in seconds."""
        return self.phase(name).duration

    def has_phase(self, name: str) -> bool:
        """True if the reboot included the named phase."""
        return any(p.name == name for p in self.phases)

    def vmm_reboot_duration(self) -> float:
        """The paper's ``reboot_vmm`` quantity: everything between the end
        of suspend/shutdown work and the moment dom0 is back (§3.2)."""
        names = {"vmm-shutdown", "quick-reload", "hardware-reset", "vmm-boot", "dom0-boot"}
        return sum(p.duration for p in self.phases if p.name in names)


class _PhaseClock:
    """Records named phases against the simulation clock.

    :meth:`phase` is the primary API: a ``with`` block that opens a
    ``reboot.phase`` child span, runs the phase body (the enclosing
    generator keeps yielding inside it), and on exit appends the
    :class:`Phase` and the ``reboot.phase`` trace record — so the span
    tree and the report are two views of the same measured intervals by
    construction.
    """

    def __init__(self, host: "Host", report: RebootReport) -> None:
        self._host = host
        self._report = report

    def mark(self, name: str, start: float) -> None:
        now = self._host.sim.now
        self._report.phases.append(Phase(name, start, now))
        self._host.sim.trace.record(
            "reboot.phase",
            host=self._host.name,
            strategy=self._report.strategy.value,
            phase=name,
            start=start,
            end=now,
        )

    @contextlib.contextmanager
    def phase(self, name: str) -> typing.Iterator[None]:
        sim = self._host.sim
        start = sim.now
        with sim.spans.span("reboot.phase", actor=self._host.name, detail=name):
            yield
            # inside the span, so the record is causally contained in it
            self.mark(name, start)


def _begin(host: "Host", strategy: RebootStrategy) -> tuple[RebootReport, _PhaseClock]:
    if not host.started:
        raise RejuvenationError("host must be started before rebooting")
    report = RebootReport(
        strategy=strategy,
        host=host.name,
        vm_count=len(host.require_vmm().domus),
        started=host.sim.now,
    )
    host.sim.trace.record(
        "reboot.start", host=host.name, strategy=strategy.value
    )
    return report, _PhaseClock(host, report)


def _finish(host: "Host", report: RebootReport) -> RebootReport:
    report.finished = host.sim.now
    host.sim.trace.record(
        "reboot.done",
        host=host.name,
        strategy=report.strategy.value,
        total=report.total,
    )
    return report


# ---------------------------------------------------------------------------
# warm-VM reboot (the contribution, §3.1/§4)
# ---------------------------------------------------------------------------

def warm_reboot(host: "Host") -> typing.Generator:
    """On-memory suspend → quick reload → on-memory resume.

    Driver domains (§7) cannot be suspended: they are shut down before and
    cold-booted after the reload, partially re-introducing guest downtime —
    which is why the paper notes their existence 'increases the downtime'.
    """
    vmm = host.require_vmm()
    if not isinstance(vmm, RootHammerHypervisor):
        raise RejuvenationError(
            "warm reboot needs the RootHammer hypervisor (on-memory "
            "suspend/resume and quick reload are its modifications)"
        )
    report, clock = _begin(host, RebootStrategy.WARM)
    sim = host.sim
    with sim.spans.span("reboot", actor=host.name, detail="warm"):

        driver_specs = [
            spec for spec in host.vm_specs.values() if spec.driver_domain
        ]
        if driver_specs:
            with clock.phase("driver-domain-shutdown"):
                shutdowns = [
                    sim.spawn(
                        host.guest(spec.name).shutdown(),
                        name=f"shutdown:{spec.name}",
                    )
                    for spec in driver_specs
                    if spec.name in vmm.domains
                ]
                if shutdowns:
                    yield sim.all_of(shutdowns)
                for spec in driver_specs:
                    if spec.name in vmm.domains:
                        host.guest(spec.name).mark_dead()
                        vmm.destroy_domain(spec.name)

        with clock.phase("xexec-load"):
            yield from vmm.xexec_load()

        # dom0 shuts down while domU services are still running (§4.2's
        # downtime-reducing delay: the VMM, not dom0, will do the suspends).
        with clock.phase("dom0-shutdown"):
            yield from host.shutdown_dom0()

        with clock.phase("suspend"):
            yield from vmm.suspend_all_domus()

        with clock.phase("vmm-shutdown"):
            yield from vmm.shutdown()

        with clock.phase("quick-reload"):
            yield from host.machine.quick_reload_window()
            yield sim.timeout(
                host.machine.duration(
                    "quick.reload", host.profile.vmm.reload_jump_s
                )
            )

        with clock.phase("vmm-boot"):
            yield from host.boot_vmm_instance()

        with clock.phase("dom0-boot"):
            yield from host.boot_dom0()

        with clock.phase("resume"):
            new_vmm = host.require_vmm()
            if not isinstance(new_vmm, RootHammerHypervisor):
                raise RejuvenationError(
                    "warm reboot requires a RootHammerHypervisor, got "
                    f"{type(new_vmm).__name__}"
                )
            resumed = yield from new_vmm.resume_all_preserved()
            host.apply_creation_quirk(len(resumed))
            host.apply_scheduler_params()

        if driver_specs:
            with clock.phase("driver-domain-boot"):
                yield from host.cold_boot_guests(driver_specs)

    return _finish(host, report)


# ---------------------------------------------------------------------------
# saved-VM reboot (original Xen suspend/resume baseline, §5.3)
# ---------------------------------------------------------------------------

def saved_reboot(host: "Host", variant: typing.Any = None) -> typing.Generator:
    """Save every VM image to disk, hardware-reset, restore from disk.

    ``variant`` selects a §7 related-work acceleration (see
    :mod:`repro.core.save_variants`); ``None`` is original Xen's plain
    full-image path.
    """
    vmm = host.require_vmm()
    report, clock = _begin(host, RebootStrategy.SAVED)
    sim = host.sim
    with sim.spans.span("reboot", actor=host.name, detail="saved"):

        names = [d.name for d in vmm.domus if d.state is DomainState.RUNNING]
        with clock.phase("save"):
            saves = []
            for name in names:
                # The save of each domain is kicked off serially by dom0's
                # scripts but the disk transfers themselves overlap.
                yield sim.timeout(
                    host.machine.duration(
                        "dom0.signal", host.profile.vmm.shutdown_signal_s
                    )
                )
                saves.append(
                    sim.spawn(
                        vmm.save_domain_to_disk(name, variant=variant),
                        name=f"save:{name}",
                    )
                )
            if saves:
                yield sim.all_of(saves)

        with clock.phase("dom0-shutdown"):
            yield from host.shutdown_dom0()

        with clock.phase("vmm-shutdown"):
            yield from vmm.shutdown()

        with clock.phase("hardware-reset"):
            yield from host.machine.hardware_reset()

        with clock.phase("vmm-boot"):
            yield from host.boot_vmm_instance()

        with clock.phase("dom0-boot"):
            yield from host.boot_dom0()

        with clock.phase("restore"):
            new_vmm = host.require_vmm()
            restores = [
                sim.spawn(
                    new_vmm.restore_domain_from_disk(name),
                    name=f"restore:{name}",
                )
                for name in names
            ]
            if restores:
                yield sim.all_of(restores)
            host.apply_creation_quirk(len(restores))
            host.apply_scheduler_params()

    return _finish(host, report)


# ---------------------------------------------------------------------------
# cold-VM reboot (plain reboot baseline, §5.3)
# ---------------------------------------------------------------------------

def cold_reboot(host: "Host") -> typing.Generator:
    """Orderly guest shutdown, hardware reset, fresh guest boot."""
    vmm = host.require_vmm()
    report, clock = _begin(host, RebootStrategy.COLD)
    sim = host.sim
    with sim.spans.span("reboot", actor=host.name, detail="cold"):

        domus = [d for d in vmm.domus if d.state is DomainState.RUNNING]
        with clock.phase("guest-shutdown"):
            shutdowns = []
            for domain in domus:
                # dom0's shutdown script signals the guests one at a time.
                yield sim.timeout(
                    host.machine.duration(
                        "dom0.signal", host.profile.vmm.shutdown_signal_s
                    )
                )
                domain.transition(DomainState.SHUTTING_DOWN)
                if domain.guest is not None:
                    shutdowns.append(
                        sim.spawn(
                            domain.guest.shutdown(),
                            name=f"shutdown:{domain.name}",
                        )
                    )
            if shutdowns:
                yield sim.all_of(shutdowns)
            for domain in domus:
                domain.transition(DomainState.SHUTDOWN)
                if domain.guest is not None:
                    domain.guest.mark_dead()
                vmm.destroy_domain(domain.name)

        with clock.phase("dom0-shutdown"):
            yield from host.shutdown_dom0()

        with clock.phase("vmm-shutdown"):
            yield from vmm.shutdown()

        with clock.phase("hardware-reset"):
            yield from host.machine.hardware_reset()

        with clock.phase("vmm-boot"):
            yield from host.boot_vmm_instance()

        with clock.phase("dom0-boot"):
            yield from host.boot_dom0()

        with clock.phase("guest-boot"):
            specs = [host.vm_specs[d.name] for d in domus]
            yield from host.cold_boot_guests(specs)

    return _finish(host, report)


# ---------------------------------------------------------------------------
# dom0-only reboot (extension: §8 lists rebooting the privileged VM without
# the VMM as future work)
# ---------------------------------------------------------------------------

def dom0_reboot(host: "Host") -> typing.Generator:
    """Reboot only domain 0; the VMM and all domUs keep their state.

    Rejuvenates dom0's aging (e.g. xenstored leaks, §2) without touching
    the hypervisor.  Because dom0 hosts the I/O backends, domU services
    are unreachable while it is down — so this is cheaper than any full
    VMM reboot in *state lost*, and comparable to the warm reboot in
    downtime.
    """
    host.require_vmm()
    report, clock = _begin(host, RebootStrategy.DOM0_ONLY)
    sim = host.sim

    guests = host.guests()

    def mark(direction: str, reason: str) -> None:
        for guest in guests:
            for service in guest.services:
                if service.is_up:
                    sim.trace.record(
                        f"service.{direction}",
                        service=service.name,
                        service_kind=service.kind,
                        domain=guest.name,
                        reason=reason,
                    )

    with sim.spans.span("reboot", actor=host.name, detail="dom0-only"):

        with clock.phase("dom0-shutdown"):
            mark("down", "dom0-reboot")
            yield from host.shutdown_dom0()

        with clock.phase("dom0-boot"):
            vmm = host.require_vmm()
            dom0 = vmm.domain("Domain-0")
            dom0.state = DomainState.BUILDING  # rebuilt in place by the VMM
            dom0.transition(DomainState.RUNNING)
            vmm.xenstore = type(vmm.xenstore)(  # fresh daemon
                faults=host.faults, metrics=sim.metrics
            )
            yield sim.timeout(
                host.machine.duration("dom0.boot", host.profile.dom0.boot_s)
            )
            mark("up", "dom0-reboot")

    return _finish(host, report)


_STRATEGY_FUNCTIONS: dict[RebootStrategy, typing.Callable] = {
    RebootStrategy.WARM: warm_reboot,
    RebootStrategy.SAVED: saved_reboot,
    RebootStrategy.COLD: cold_reboot,
    RebootStrategy.DOM0_ONLY: dom0_reboot,
}


def execute(
    host: "Host",
    strategy: "str | RebootStrategy",
    **options: typing.Any,
) -> typing.Generator:
    """Run the named strategy on ``host``; returns its RebootReport.

    ``options`` are forwarded to the strategy function (currently only
    ``variant=`` for the saved-VM reboot).
    """
    if isinstance(strategy, str):
        try:
            strategy = RebootStrategy(strategy.lower())
        except ValueError:
            raise RejuvenationError(f"unknown reboot strategy {strategy!r}") from None
    function = _STRATEGY_FUNCTIONS[strategy]
    if options and strategy is not RebootStrategy.SAVED:
        raise RejuvenationError(
            f"strategy {strategy.value!r} takes no options, got {sorted(options)}"
        )
    report = yield from function(host, **options)
    return report
