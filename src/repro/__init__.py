"""RootHammer reproduction — warm-VM reboot for fast VMM rejuvenation.

A production-quality simulation library reproducing *"A Fast Rejuvenation
Technique for Server Consolidation with Virtual Machines"* (Kourai & Chiba,
DSN 2007).  See README.md for a tour and DESIGN.md for the system
inventory and experiment index.

Top-level convenience re-exports cover the public API most users need;
subpackages remain importable directly for advanced use.
"""

from repro._version import __version__

__all__ = ["__version__"]


def __getattr__(name: str):  # pragma: no cover - thin lazy-import shim
    """Lazily expose the main public classes at package top level.

    Keeps ``import repro`` fast while allowing ``repro.RootHammer`` etc.
    """
    lazy = {
        "Simulator": ("repro.simkernel", "Simulator"),
        "TimingProfile": ("repro.config", "TimingProfile"),
        "paper_testbed": ("repro.config", "paper_testbed"),
        "PhysicalMachine": ("repro.hardware", "PhysicalMachine"),
        "Hypervisor": ("repro.vmm", "Hypervisor"),
        "RootHammer": ("repro.core", "RootHammer"),
        "RebootStrategy": ("repro.core", "RebootStrategy"),
    }
    if name in lazy:
        module_name, attr = lazy[name]
        import importlib

        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
