"""A deterministic discrete-event simulation kernel.

This subpackage is self-contained (no dependencies on the rest of
``repro`` beyond the error types) and provides:

* :class:`~repro.simkernel.kernel.Simulator` — clock, event heap, run loop;
* :class:`~repro.simkernel.events.Event`, timeouts, all-of/any-of conditions;
* :class:`~repro.simkernel.process.Process` — generator-based activities
  with interrupts;
* :class:`~repro.simkernel.resources.Resource` / ``Store`` — queued
  contention points;
* :class:`~repro.simkernel.sharing.SharedPool` — fluid processor sharing;
* :class:`~repro.simkernel.tracing.Tracer` — typed trace records;
* :class:`~repro.simkernel.rng.RandomStreams` — named seeded RNG streams;
* :class:`~repro.simkernel.sanitizer.DeterminismSanitizer` — opt-in runtime
  determinism checks (``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``).
"""

from repro.simkernel.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.simkernel.kernel import Simulator, TimerHandle
from repro.simkernel.process import Process
from repro.simkernel.resources import Request, Resource, Store
from repro.simkernel.rng import RandomStreams
from repro.simkernel.sanitizer import (
    DeterminismSanitizer,
    DeterminismWarning,
    SanitizerReport,
)
from repro.simkernel.sharing import SharedPool
from repro.simkernel.tracing import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "DeterminismSanitizer",
    "DeterminismWarning",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SanitizerReport",
    "SharedPool",
    "Simulator",
    "Store",
    "TimerHandle",
    "TraceRecord",
    "Tracer",
    "Timeout",
]
