"""A deterministic discrete-event simulation kernel.

This subpackage is self-contained (no dependencies on the rest of
``repro`` beyond the error types) and provides:

* :class:`~repro.simkernel.kernel.Simulator` — clock, run loop, primitive
  factories;
* :class:`~repro.simkernel.backends.SchedulerBackend` — pluggable event
  storage (``reference`` heap or the optimized ``batched`` backend, picked
  via ``Simulator(backend=...)`` / ``REPRO_KERNEL_BACKEND``);
* :class:`~repro.simkernel.events.Event`, timeouts, all-of/any-of conditions;
* :class:`~repro.simkernel.process.Process` — generator-based activities
  with interrupts;
* :class:`~repro.simkernel.resources.Resource` / ``Store`` — queued
  contention points;
* :class:`~repro.simkernel.sharing.SharedPool` — fluid processor sharing;
* :class:`~repro.simkernel.tracing.Tracer` — typed trace records;
* :class:`~repro.simkernel.rng.RandomStreams` — named seeded RNG streams;
* :class:`~repro.simkernel.sanitizer.DeterminismSanitizer` — opt-in runtime
  determinism checks (``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``);
* :class:`~repro.simkernel.spans.SpanTracker` — nestable causal spans over
  the tracer (``sim.spans``), the substrate for the Perfetto exporter and
  the downtime critical-path analyzer;
* :class:`~repro.simkernel.metrics.MetricsRegistry` — counters, gauges and
  histograms (``sim.metrics``; opt-in via ``Simulator(metrics=True)`` /
  ``REPRO_METRICS=1``, no-op otherwise).
"""

from repro.simkernel.backends import (
    BACKENDS,
    BatchedBackend,
    ReferenceBackend,
    SchedulerBackend,
)
from repro.simkernel.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.simkernel.kernel import Simulator, TimerHandle
from repro.simkernel.metrics import (
    METRIC_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.simkernel.process import Process
from repro.simkernel.resources import Request, Resource, Store
from repro.simkernel.rng import RandomStreams
from repro.simkernel.sanitizer import (
    DeterminismSanitizer,
    DeterminismWarning,
    SanitizerReport,
)
from repro.simkernel.sharing import SharedPool
from repro.simkernel.spans import SPAN_NAMES, Span, SpanTracker
from repro.simkernel.tracing import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BACKENDS",
    "BatchedBackend",
    "Counter",
    "DeterminismSanitizer",
    "DeterminismWarning",
    "Event",
    "Gauge",
    "Histogram",
    "Interrupt",
    "METRIC_SCHEMA",
    "MetricsRegistry",
    "Process",
    "RandomStreams",
    "ReferenceBackend",
    "Request",
    "Resource",
    "SPAN_NAMES",
    "SchedulerBackend",
    "SanitizerReport",
    "SharedPool",
    "Simulator",
    "Span",
    "SpanTracker",
    "Store",
    "TimerHandle",
    "TraceRecord",
    "Tracer",
    "Timeout",
]
