"""Queued resources: capacity-limited resources and item stores.

These model *contention points* — a disk head, a serialized toolstack, a
lock inside the hypervisor.  Requests queue FIFO (or by priority) and are
granted as capacity frees up.

Usage from a process::

    with disk_lock.request() as req:
        yield req                 # wait until granted
        yield sim.timeout(0.008)  # hold the resource
    # released on exiting the with-block
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.simkernel.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager so the resource is always released, even if
    the holding process is interrupted.
    """

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.sim, name=f"request:{resource.name}")
        self.resource = resource
        self.priority = priority
        self._order = 0

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: typing.Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request (alias for release)."""
        self.resource.release(self)


class Resource:
    """A FIFO resource with integer capacity.

    ``capacity`` slots may be held at once; further requests wait in
    priority-then-FIFO order (default priority 0 gives plain FIFO).
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._queue: list[tuple[int, int, Request]] = []
        self._sequence = 0
        if sim.sanitizer is not None:
            sim.sanitizer.register_waitable(self)

    @property
    def count(self) -> int:
        """Number of currently granted requests."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of requests still waiting."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim one slot; the returned event fires when granted."""
        req = Request(self, priority=priority)
        self._sequence += 1
        req._order = self._sequence
        heapq.heappush(self._queue, (priority, self._sequence, req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot, or withdraw a waiting request.

        Releasing is idempotent so context-manager exit after an explicit
        release is harmless.
        """
        if request in self._users:
            self._users.discard(request)
            self._grant()
        elif not request.triggered:
            # Withdraw from the queue lazily: mark by failing nothing —
            # rebuild the heap without it (queues here are short).
            self._queue = [
                entry for entry in self._queue if entry[2] is not request
            ]
            heapq.heapify(self._queue)

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _, _, req = heapq.heappop(self._queue)
            self._users.add(req)
            req.succeed(req)


class Store:
    """An unbounded FIFO buffer of items; getters wait for items.

    Models message queues: event-channel notifications, request inboxes of
    daemons (xenstored), the load balancer's dispatch queue.
    """

    def __init__(self, sim: "Simulator", name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: list[typing.Any] = []
        self._getters: list[Event] = []
        if sim.sanitizer is not None:
            sim.sanitizer.register_waitable(self)

    @property
    def items(self) -> list[typing.Any]:
        """A snapshot of buffered items (do not mutate)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: typing.Any) -> None:
        """Add an item, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> None:
        """Withdraw a waiting getter (no-op if already satisfied)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass
