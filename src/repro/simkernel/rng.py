"""Seeded random-number streams for reproducible simulations.

Each subsystem draws from its own named stream so adding randomness to one
component never perturbs another component's sequence — the standard trick
for variance reduction and debuggability in simulation studies.

Streams derive their seeds from a root seed plus the stream name, so a
single integer reproduces an entire experiment.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A family of independent, deterministically seeded RNG streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from the named stream."""
        return self.stream(name).uniform(low, high)

    def jitter(self, name: str, base: float, fraction: float = 0.0) -> float:
        """``base`` scaled by a uniform factor in ``[1-fraction, 1+fraction]``.

        With ``fraction == 0`` (the default used by the calibrated paper
        profile) this is exact and deterministic, which keeps experiment
        outputs point-reproducible; tests enable jitter to check that
        conclusions are robust to noise.
        """
        if fraction <= 0:
            return base
        return base * self.stream(name).uniform(1 - fraction, 1 + fraction)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child family (e.g. one per cluster host)."""
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
