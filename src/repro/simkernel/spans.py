"""Causal spans on top of the columnar tracer.

Flat trace records say *when* something happened; spans say *why* — every
span has a parent, so a FIG7 downtime number can be walked back to the
exact reboot phase (and the exact domain's suspend) that produced it.
The design deliberately adds no storage of its own:

* a span is two ordinary trace records, ``span.begin`` and ``span.end``,
  whose integer ``span``/``parent`` ids seal into typed ``int64`` columns
  exactly like any other payload field (see
  :mod:`repro.simkernel.tracing`);
* nesting is tracked with **per-actor stacks** — concurrent processes
  (eleven domains suspending in parallel) each carry their own actor
  name, so interleaved begin/end pairs never mis-parent;
* cross-actor causality (a domain's suspend caused by its host's reboot)
  is expressed by passing ``parent=tracker.current(host_actor)``
  explicitly at the spawn site.

Spans ride the deterministic event paths and never schedule, draw
randomness, or mutate component state, so instrumented and
uninstrumented runs produce bit-identical experiment rows — the same
contract the determinism sanitizer established.

Span *names* form a closed taxonomy (:data:`SPAN_NAMES`): simlint rule
SL008 statically rejects unregistered literal names, and
:meth:`SpanTracker.span` rejects them at runtime, so the Perfetto
exporter and the critical-path analyzer can rely on the vocabulary.
Per-instance variation (which strategy, which phase, which domain) goes
in the free-form ``detail`` field, not the name.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator

ROOT = 0
"""``parent`` id of a top-level span (real span ids start at 1)."""

SPAN_NAMES: frozenset[str] = frozenset(
    {
        # whole-host rejuvenation (detail = strategy value)
        "reboot",
        # one strategy phase inside a reboot (detail = phase name)
        "reboot.phase",
        # per-domain VMM work during a reboot / save-restore cycle
        "vmm.suspend",
        "vmm.resume",
        "vmm.save",
        "vmm.restore",
        # guest-OS lifecycle (detail = domain where not the actor)
        "guest.boot",
        "guest.shutdown",
        "guest.rejuvenation",
        # cluster maintenance (detail = strategy or host)
        "cluster.rolling",
        "cluster.host",
        "cluster.migration",
        "migration.vm",
        # fleet tier: one host's epoch-scheduled reboot (detail = strategy)
        "fleet.host",
        # autonomic control plane: one loop cycle (detail = strategy name)
        "control.cycle",
        # one applied action inside a cycle (detail = action kind)
        "control.action",
    }
)
"""The registered span taxonomy — the only names :meth:`SpanTracker.span`
accepts.  Extend this set (and DESIGN.md's taxonomy table) when
instrumenting a new control flow; SL008 keeps call sites honest."""


class Span:
    """One open span; a context manager handed out by :class:`SpanTracker`.

    ``with`` scoping is the API on purpose: the tracker can then assert
    strict last-in-first-out nesting per actor, which is what makes the
    begin/end records reconstructible into a tree without per-record
    parent back-pointers.
    """

    __slots__ = ("tracker", "name", "actor", "detail", "parent", "id")

    def __init__(
        self,
        tracker: "SpanTracker",
        name: str,
        actor: str,
        detail: str,
        parent: int | None,
    ) -> None:
        self.tracker = tracker
        self.name = name
        self.actor = actor
        self.detail = detail
        self.parent = parent
        self.id = 0  # assigned at __enter__

    def __enter__(self) -> "Span":
        self.tracker._begin(self)
        return self

    def __exit__(self, exc_type: typing.Any, exc: typing.Any, tb: typing.Any) -> None:
        self.tracker._end(self)


class SpanTracker:
    """Per-simulator span bookkeeping: id allocation and actor stacks.

    Lives on every :class:`~repro.simkernel.kernel.Simulator` as
    ``sim.spans``; holds no records itself — begin/end land in
    ``sim.trace`` as ``span.begin`` / ``span.end`` records.
    """

    __slots__ = ("_sim", "_next_id", "_stacks")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._next_id = 0
        self._stacks: dict[str, list[int]] = {}

    def span(
        self,
        name: str,
        actor: str,
        detail: str = "",
        parent: int | None = None,
    ) -> Span:
        """An unopened span; use as ``with sim.spans.span(...) as sp:``.

        ``parent`` overrides the implicit parent (the actor's innermost
        open span) for cross-actor causality; pass
        ``tracker.current(other_actor)`` from the site that knows the
        causal origin.  An explicit :data:`ROOT` (the other actor had
        nothing open) falls back to this actor's own stack, so the same
        call site works whether or not the causal origin is active.
        """
        if name not in SPAN_NAMES:
            raise SimulationError(
                f"span name {name!r} is not registered in SPAN_NAMES"
            )
        return Span(self, name, actor, detail, parent)

    def current(self, actor: str) -> int:
        """The innermost open span id for ``actor`` (:data:`ROOT` if none)."""
        stack = self._stacks.get(actor)
        return stack[-1] if stack else ROOT

    # -- called by Span.__enter__/__exit__ only ------------------------------------

    def _begin(self, span: Span) -> None:
        self._next_id += 1
        span.id = self._next_id
        stack = self._stacks.setdefault(span.actor, [])
        parent = span.parent
        if not parent:  # None or ROOT: the actor's own innermost span
            parent = stack[-1] if stack else ROOT
        span.parent = parent
        stack.append(span.id)
        self._sim.trace.record(
            "span.begin",
            span=span.id,
            parent=parent,
            name=span.name,
            actor=span.actor,
            detail=span.detail,
        )

    def _end(self, span: Span) -> None:
        stack = self._stacks.get(span.actor)
        if not stack or stack[-1] != span.id:
            raise SimulationError(
                f"span {span.name!r} (id {span.id}) ended out of order on "
                f"actor {span.actor!r}"
            )
        stack.pop()
        if not stack:
            del self._stacks[span.actor]
        self._sim.trace.record("span.end", span=span.id)

    def open_spans(self) -> dict[str, list[int]]:
        """Actor -> open span-id stack (outermost first); for leak checks."""
        return {actor: list(stack) for actor, stack in self._stacks.items()}
