"""Trace instrumentation for simulations — a columnar trace engine.

Experiments need to observe *when* things happened — when a service went
down, when the VMM finished reloading, how throughput evolved.  Rather than
sprinkling ad-hoc lists everywhere, every simulator carries a
:class:`Tracer`; components record typed occurrences and analyses query
them afterwards.

Storage is *columnar* (struct-of-arrays), not a list of record objects:

* the hot append path writes into plain-list columns of the **active
  chunk** (one append per column: time, interned kind-id, payload dict);
* when the active chunk reaches :data:`CHUNK_RECORDS` entries it is
  **sealed**: times become a ``float64`` array, kind-ids an ``int32``
  array, and the payload dicts are decomposed into per-field typed
  columns (``int64`` / ``float64``) with an object-column fallback for
  strings, bools and mixed-type fields;
* record *sequences* are never stored at all — ``record()`` bumps the
  sequence counter exactly once per stored record and :meth:`Tracer.clear`
  keeps the counter growing, so the sequence of the i-th stored record is
  always ``seq_base + i + 1`` (see :meth:`Tracer.clear` for the invariant).

Queries (:meth:`Tracer.select`, :meth:`Tracer.times`, prefix matching)
are mask operations over the kind-id arrays plus ``searchsorted`` over
the (non-decreasing) time column, materializing a :class:`TraceRecord`
view only for matching rows.  Live subscribers keep exact per-record
callback semantics: a ``TraceRecord`` is built lazily, only when at least
one subscription matches the kind being recorded, and all callbacks for
that record share the same object.

Records are strictly ordered by (time, sequence), matching the
deterministic event order of the kernel.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator

CHUNK_RECORDS = 8192
"""Records per sealed chunk: large enough to amortize sealing to noise,
small enough that the active (list-backed) tail stays cache-friendly."""


class TraceKindSpec(typing.NamedTuple):
    """Declared payload shape for one trace kind (see :data:`TRACE_SCHEMA`)."""

    required: frozenset[str]
    optional: frozenset[str] = frozenset()

    @property
    def allowed(self) -> frozenset[str]:
        return self.required | self.optional


def _spec(*required: str, optional: typing.Iterable[str] = ()) -> TraceKindSpec:
    return TraceKindSpec(frozenset(required), frozenset(optional))


TRACE_SCHEMA: dict[str, TraceKindSpec] = {
    # hardware layer
    "hw.reset.start": _spec("machine"),
    "hw.reset.done": _spec("machine", "post_s"),
    "hw.quick_reload": _spec("machine"),
    # hypervisor (Hypervisor._trace stamps vmm_generation on every kind)
    "vmm.boot.start": _spec("vmm_generation"),
    "vmm.boot.done": _spec("vmm_generation", "duration"),
    "vmm.scrub.done": _spec("vmm_generation", "gib", "duration"),
    "vmm.dom0.created": _spec("vmm_generation"),
    "vmm.domain.created": _spec("vmm_generation", "domain", "domid"),
    "vmm.domain.destroyed": _spec("vmm_generation", "domain"),
    "vmm.console": _spec("vmm_generation", "domain", "message"),
    "vmm.save.start": _spec("vmm_generation", "domain"),
    "vmm.save.done": _spec("vmm_generation", "domain"),
    "vmm.restore.done": _spec("vmm_generation", "domain"),
    "vmm.shutdown.start": _spec("vmm_generation"),
    "vmm.shutdown.done": _spec("vmm_generation"),
    "vmm.crash": _spec("vmm_generation", "reason"),
    "vmm.xexec.loaded": _spec("vmm_generation"),
    "vmm.onmem.suspended": _spec("vmm_generation", "domain"),
    "vmm.onmem.resumed": _spec("vmm_generation", "domain"),
    "vmm.preserved.reserved": _spec("vmm_generation", "domain"),
    # host orchestration
    "host.started": _spec("host"),
    "host.dom0.booted": _spec("host"),
    "host.dom0.shutdown": _spec("host"),
    "host.quirk.slump.start": _spec("host"),
    "host.quirk.slump.end": _spec("host"),
    "host.crash_recovery.start": _spec("host"),
    "host.crash_recovery.done": _spec("host", "duration"),
    # reboot strategies
    "reboot.start": _spec("host", "strategy"),
    "reboot.phase": _spec("host", "strategy", "phase", "start", "end"),
    "reboot.done": _spec("host", "strategy", "total"),
    # guest lifecycle
    "guest.boot.start": _spec("domain"),
    "guest.boot.done": _spec("domain"),
    "guest.shutdown.start": _spec("domain"),
    "guest.shutdown.done": _spec("domain"),
    "guest.rejuvenation.start": _spec("domain"),
    "guest.rejuvenation.done": _spec("domain", "duration"),
    # service availability (the Figure 6 downtime signal)
    "service.up": _spec("service", "service_kind", "domain", optional=["reason"]),
    "service.down": _spec("service", "service_kind", "domain", optional=["reason"]),
    "service.microreboot": _spec("domain", "service"),
    # cluster-level live migration
    "migration.start": _spec("domain", "source", "destination"),
    "migration.done": _spec("domain", "source", "destination"),
    # causal spans (written only by repro.simkernel.spans; SL008 enforces)
    "span.begin": _spec("span", "parent", "name", "actor", "detail"),
    "span.end": _spec("span"),
    # workloads and monitoring
    "tcp.session.closed": _spec("session", "outcome", "service"),
    "probe.up": _spec("prober", "downtime"),
    "probe.down": _spec("prober"),
    "watchdog.detected": _spec("host"),
    "aging.threshold.trigger": _spec("utilization"),
    "control.decision": _spec(
        "cycle", "action", "target", "outcome",
        # "span" is the id of the enclosing control.action (or, for
        # deferred actions, control.cycle) span — the deterministic join
        # key decision-timeline reconstruction pivots on.
        optional=["vm", "source", "reason", "span"],
    ),
}
"""Declared payload columns per trace kind.

This is the contract ``repro.devtools.simlint`` rule SL006 enforces
statically: every ``record()`` call with a literal kind must name a kind
declared here and pass exactly the required payload keys (plus any of the
optional ones).  Keeping the declaration next to the columnar engine makes
the schema the single source of truth for both the linter and readers
asking "what fields does this kind carry?".
"""

_MISSING = object()
"""Sentinel for 'this record has no such payload field' inside columns."""

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class TraceRecord:
    """One recorded occurrence (immutable by convention).

    This is a *view*: the engine stores columns, not record objects, and
    builds a ``TraceRecord`` only when a query matches or a subscriber
    must be called.  A plain ``__slots__`` class rather than a frozen
    dataclass: the frozen-dataclass ``__init__`` (one
    ``object.__setattr__`` per field) costs several times a direct
    attribute store.

    Attributes
    ----------
    time:
        Simulated time of the record.
    kind:
        Dotted event-kind string, e.g. ``"vmm.reboot.start"``,
        ``"service.up"`` — dots give a cheap namespace for prefix queries.
    fields:
        Arbitrary payload (domain id, service name, byte counts, ...).
    """

    __slots__ = ("time", "sequence", "kind", "fields")

    def __init__(
        self,
        time: float,
        sequence: int,
        kind: str,
        fields: dict[str, typing.Any],
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.kind = kind
        self.fields = fields

    def __getitem__(self, key: str) -> typing.Any:
        return self.fields[key]

    def get(self, key: str, default: typing.Any = None) -> typing.Any:
        """Field lookup with a default (dict.get semantics)."""
        return self.fields.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceRecord(time={self.time!r}, sequence={self.sequence!r}, "
            f"kind={self.kind!r}, fields={self.fields!r})"
        )


class _Chunk:
    """One sealed block of records in struct-of-arrays layout.

    ``cols`` maps field name -> ``(values, is_object)``:

    * typed columns: ``values`` is an ``int64``/``float64`` array paired
      with a presence mask (``None`` when the field is on every record);
    * object columns: ``values`` is a plain list holding the original
      Python objects, with :data:`_MISSING` where a record lacks the field.

    Only fields whose present values are *uniformly* ``int`` or uniformly
    ``float`` get a typed column — mixed ``int``/``float`` (and ``bool``,
    which is an ``int`` subclass but semantically distinct) fall back to
    the object column so reconstructed payloads round-trip exactly.
    """

    __slots__ = ("times", "kids", "seq0", "keys", "cols")

    def __init__(
        self,
        times: np.ndarray,
        kids: np.ndarray,
        seq0: int,
        payloads: list[dict[str, typing.Any]],
    ) -> None:
        self.times = times
        self.kids = kids
        self.seq0 = seq0
        keys: list[str] = []
        for fields in payloads:
            for key in fields:
                if key not in keys:
                    keys.append(key)
        self.keys = keys
        cols: dict[str, tuple[typing.Any, typing.Any]] = {}
        for key in keys:
            values = [fields.get(key, _MISSING) for fields in payloads]
            all_int = True
            all_float = True
            missing = False
            for value in values:
                if value is _MISSING:
                    missing = True
                    continue
                cls = type(value)
                if cls is not int:
                    all_int = False
                if cls is not float:
                    all_float = False
                if not (all_int or all_float):
                    break
            if all_int or all_float:
                present = (
                    np.array([v is not _MISSING for v in values])
                    if missing
                    else None
                )
                filled = (
                    [0 if v is _MISSING else v for v in values]
                    if missing
                    else values
                )
                try:
                    arr = np.array(
                        filled, dtype=np.int64 if all_int else np.float64
                    )
                except OverflowError:  # ints beyond int64: keep as objects
                    cols[key] = (values, True)
                else:
                    cols[key] = ((arr, present), False)
            else:
                cols[key] = (values, True)
        self.cols = cols

    def __len__(self) -> int:
        return len(self.kids)

    def fields_at(self, i: int) -> dict[str, typing.Any]:
        """Rebuild the i-th record's payload dict from the columns."""
        fields: dict[str, typing.Any] = {}
        for key in self.keys:
            values, is_object = self.cols[key]
            if is_object:
                value = values[i]
                if value is not _MISSING:
                    fields[key] = value
            else:
                arr, present = values
                if present is None or present[i]:
                    fields[key] = arr[i].item()
        return fields

    def filter_indices(
        self, idx: np.ndarray, filters: list[tuple[str, typing.Any]]
    ) -> np.ndarray | None:
        """Narrow candidate row indices by field-equality filters."""
        for key, wanted in filters:
            if len(idx) == 0:
                return None
            col = self.cols.get(key)
            if col is None:  # no record in this chunk has the field
                return None
            values, is_object = col
            if is_object:
                keep = [
                    j
                    for j, i in enumerate(idx)
                    if values[i] is not _MISSING and values[i] == wanted
                ]
                if not keep:
                    return None
                idx = idx[keep]
            else:
                arr, present = values
                if not isinstance(wanted, (bool, int, float)):
                    return None  # a numeric column never equals a non-number
                mask = arr[idx] == wanted
                if present is not None:
                    mask &= present[idx]
                idx = idx[mask]
                if len(idx) == 0:
                    return None
        return idx


class Tracer:
    """Collects trace records for one simulation, columnar-style.

    Subscribers are bucketed by the first dotted segment of their prefix
    (``"vmm.save."`` lives in the ``"vmm"`` bucket), so recording touches
    only the handful of subscriptions that could possibly match instead of
    scanning every registered prefix.  Prefixes without a dot (including
    ``""``) cannot be bucketed soundly — ``"ne"`` matches ``"net.tx"`` —
    and go to a catch-all list scanned on every record.
    """

    __slots__ = (
        "_sim",
        "_sequence",
        "_seq_base",
        "_kind_ids",
        "_kind_names",
        "_prefix_cache",
        "_chunks",
        "_sealed_len",
        "_times",
        "_kids",
        "_payloads",
        "_tappend",
        "_kappend",
        "_pappend",
        "_tail_cache",
        "_buckets",
        "_scan_all",
        "_nsubs",
        "_schema",
    )

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._schema: dict[str, TraceKindSpec] | None = None
        self._sequence = 0
        self._seq_base = 0
        self._kind_ids: dict[str, int] = {}
        self._kind_names: list[str] = []
        self._prefix_cache: dict[str, np.ndarray | None] = {}
        self._chunks: list[_Chunk] = []
        self._sealed_len = 0
        self._new_active()
        self._buckets: dict[
            str, list[tuple[str, typing.Callable[[TraceRecord], None]]]
        ] = {}
        self._scan_all: list[tuple[str, typing.Callable[[TraceRecord], None]]] = []
        self._nsubs = 0

    def _new_active(self) -> None:
        """Fresh list-backed columns for the active chunk; the bound
        ``append`` methods are cached so ``record()`` pays no attribute
        lookups on them."""
        self._times: list[float] = []
        self._kids: list[int] = []
        self._payloads: list[dict[str, typing.Any]] = []
        self._tappend = self._times.append
        self._kappend = self._kids.append
        self._pappend = self._payloads.append
        self._tail_cache: tuple[np.ndarray, np.ndarray, int] | None = None

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, **fields: typing.Any) -> None:
        """Append a record stamped with the current simulated time.

        One array store per column — no per-record object is allocated
        unless a live subscription matches ``kind`` (then a single
        :class:`TraceRecord` view is built and shared by all callbacks).
        Unlike the pre-columnar engine this returns ``None``; use
        :meth:`last` to inspect what was just recorded.
        """
        if self._schema is not None:
            self._check_schema(kind, fields)
        self._sequence = seq = self._sequence + 1
        kid = self._kind_ids.get(kind)
        if kid is None:
            kid = self._intern(kind)
        now = self._sim._now
        self._tappend(now)
        self._kappend(kid)
        self._pappend(fields)
        if self._nsubs:
            rec = None
            dot = kind.find(".")
            matches = self._buckets.get(kind if dot < 0 else kind[:dot])
            if matches:
                for prefix, callback in matches:
                    if kind.startswith(prefix):
                        if rec is None:
                            rec = TraceRecord(now, seq, kind, fields)
                        callback(rec)
            for prefix, callback in self._scan_all:
                if kind.startswith(prefix):
                    if rec is None:
                        rec = TraceRecord(now, seq, kind, fields)
                    callback(rec)
        if len(self._kids) >= CHUNK_RECORDS:
            self._seal()

    def enable_schema_validation(self) -> None:
        """Check every future record's payload against :data:`TRACE_SCHEMA`.

        Turned on by the simulator when the determinism sanitizer is
        attached — the runtime complement of simlint rule SL006 for call
        sites the static check cannot see (``**kwargs`` expansion,
        computed kinds).  Off by default so the unvalidated hot path
        costs a single ``is not None`` test.
        """
        self._schema = TRACE_SCHEMA

    def _check_schema(self, kind: str, fields: dict[str, typing.Any]) -> None:
        """Declared kinds must carry required ⊆ fields ⊆ allowed.

        Undeclared kinds pass — ad-hoc kinds are legitimate in tests and
        exploratory scripts; SL006 already bars them from ``src/``.
        """
        spec = self._schema.get(kind)  # type: ignore[union-attr]
        if spec is None:
            return
        keys = fields.keys()
        if not spec.required <= keys:
            missing = sorted(spec.required - keys)
            raise SimulationError(
                f"trace record {kind!r} is missing required fields {missing}"
            )
        if not keys <= spec.allowed:
            extra = sorted(keys - spec.allowed)
            raise SimulationError(
                f"trace record {kind!r} carries undeclared fields {extra}"
            )

    def _intern(self, kind: str) -> int:
        kid = self._kind_ids[kind] = len(self._kind_names)
        self._kind_names.append(kind)
        self._prefix_cache.clear()  # a new kind may extend any prefix set
        return kid

    def _seal(self) -> None:
        """Convert the active chunk's list columns into a sealed
        struct-of-arrays chunk and start a fresh active chunk."""
        self._chunks.append(
            _Chunk(
                np.asarray(self._times, dtype=np.float64),
                np.asarray(self._kids, dtype=np.int32),
                self._seq_base + self._sealed_len + 1,
                self._payloads,
            )
        )
        self._sealed_len += len(self._kids)
        self._new_active()

    def subscribe(
        self, prefix: str, callback: typing.Callable[[TraceRecord], None]
    ) -> None:
        """Invoke ``callback`` for every future record whose kind starts
        with ``prefix`` (live monitoring, e.g. the downtime prober).

        Callback order per record is deterministic: bucketed
        subscriptions in subscription order, then catch-all (dotless
        prefix) subscriptions in subscription order.
        """
        dot = prefix.find(".")
        if dot < 0:
            # "vmm" (or "") could match kinds in any bucket: scan always.
            self._scan_all.append((prefix, callback))
        else:
            self._buckets.setdefault(prefix[:dot], []).append((prefix, callback))
        self._nsubs += 1

    # -- columnar internals ----------------------------------------------------

    def _prefix_kids(self, prefix: str) -> np.ndarray | None:
        """Kind-ids whose names start with ``prefix`` (``None`` = all)."""
        try:
            return self._prefix_cache[prefix]
        except KeyError:
            pass
        names = self._kind_names
        if not prefix:
            kids = None
        else:
            matched = [
                kid for kid, name in enumerate(names) if name.startswith(prefix)
            ]
            kids = None if len(matched) == len(names) else np.asarray(
                matched, dtype=np.int32
            )
        self._prefix_cache[prefix] = kids
        return kids

    def _tail_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Array view of the active chunk, rebuilt only after appends."""
        n = len(self._kids)
        cache = self._tail_cache
        if cache is None or cache[2] != n:
            cache = (
                np.asarray(self._times, dtype=np.float64),
                np.asarray(self._kids, dtype=np.int32),
                n,
            )
            self._tail_cache = cache
        return cache[0], cache[1]

    def _blocks(self) -> typing.Iterator[tuple[np.ndarray, np.ndarray, int, typing.Any]]:
        """Yield ``(times, kids, seq0, chunk_or_None)`` per storage block,
        oldest first; ``None`` marks the active (list-backed) tail."""
        for chunk in self._chunks:
            yield chunk.times, chunk.kids, chunk.seq0, chunk
        if self._kids:
            times, kids = self._tail_arrays()
            yield times, kids, self._seq_base + self._sealed_len + 1, None

    def _candidates(
        self,
        times: np.ndarray,
        kids: np.ndarray,
        wanted: np.ndarray | None,
        since: float,
        until: float,
    ) -> np.ndarray | None:
        """Row indices inside one block matching kind set and window."""
        lo, hi = 0, len(times)
        if since != _NEG_INF:
            lo = int(np.searchsorted(times, since, side="left"))
        if until != _POS_INF:
            hi = int(np.searchsorted(times, until, side="right"))
        if lo >= hi:
            return None
        if wanted is None:
            return np.arange(lo, hi)
        window = kids[lo:hi]
        if len(wanted) == 0:
            return None
        if len(wanted) == 1:
            mask = window == wanted[0]
        else:
            mask = np.isin(window, wanted)
        idx = np.flatnonzero(mask)
        if len(idx) == 0:
            return None
        idx += lo
        return idx

    def _tail_filter(
        self, idx: np.ndarray, filters: list[tuple[str, typing.Any]]
    ) -> list[int]:
        """Field-equality filtering over the active chunk's payload dicts."""
        payloads = self._payloads
        out = []
        for i in idx:
            fields = payloads[i]
            for key, wanted in filters:
                got = fields.get(key, _MISSING)
                if got is _MISSING or got != wanted:
                    break
            else:
                out.append(int(i))
        return out

    def _matches(
        self,
        prefix: str,
        since: float,
        until: float,
        filters: list[tuple[str, typing.Any]],
    ) -> typing.Iterator[tuple[np.ndarray, np.ndarray, int, typing.Any, typing.Any]]:
        """Yield ``(times, kids, seq0, block, matched_indices)`` per block
        that has at least one matching row."""
        wanted = self._prefix_kids(prefix)
        for times, kids, seq0, chunk in self._blocks():
            idx = self._candidates(times, kids, wanted, since, until)
            if idx is None:
                continue
            if filters:
                if chunk is None:
                    idx = self._tail_filter(idx, filters)
                else:
                    idx = chunk.filter_indices(idx, filters)
                if idx is None or len(idx) == 0:
                    continue
            yield times, kids, seq0, chunk, idx

    def _materialize(
        self,
        times: np.ndarray,
        kids: np.ndarray,
        seq0: int,
        chunk: typing.Any,
        i: int,
    ) -> TraceRecord:
        fields = self._payloads[i] if chunk is None else chunk.fields_at(i)
        return TraceRecord(
            times[i].item(), seq0 + i, self._kind_names[kids[i]], fields
        )

    # -- querying -------------------------------------------------------------

    def __len__(self) -> int:
        return self._sealed_len + len(self._kids)

    def __iter__(self) -> typing.Iterator[TraceRecord]:
        for times, kids, seq0, chunk in self._blocks():
            for i in range(len(kids)):
                yield self._materialize(times, kids, seq0, chunk, i)

    def select(
        self,
        prefix: str = "",
        since: float = _NEG_INF,
        until: float = _POS_INF,
        **field_filters: typing.Any,
    ) -> list[TraceRecord]:
        """Return records matching a kind prefix, time window and fields.

        ``field_filters`` keep only records where each named field equals
        the given value (missing fields never match).  The kind and time
        predicates are evaluated as vector operations over the columns;
        a :class:`TraceRecord` is materialized per *matching* row only.
        """
        filters = list(field_filters.items())
        out: list[TraceRecord] = []
        materialize = self._materialize
        for times, kids, seq0, chunk, idx in self._matches(
            prefix, since, until, filters
        ):
            for i in idx:
                out.append(materialize(times, kids, seq0, chunk, i))
        return out

    def first(
        self,
        prefix: str,
        since: float = _NEG_INF,
        until: float = _POS_INF,
        **field_filters: typing.Any,
    ) -> TraceRecord | None:
        """The earliest record matching prefix, window and fields, or None."""
        filters = list(field_filters.items())
        for times, kids, seq0, chunk, idx in self._matches(
            prefix, since, until, filters
        ):
            return self._materialize(times, kids, seq0, chunk, idx[0])
        return None

    def last(
        self,
        prefix: str,
        since: float = _NEG_INF,
        until: float = _POS_INF,
        **field_filters: typing.Any,
    ) -> TraceRecord | None:
        """The latest record matching prefix, window and fields, or None."""
        filters = list(field_filters.items())
        hit = None
        for times, kids, seq0, chunk, idx in self._matches(
            prefix, since, until, filters
        ):
            hit = (times, kids, seq0, chunk, idx[-1])
        if hit is None:
            return None
        return self._materialize(*hit)

    def times(
        self,
        prefix: str,
        since: float = _NEG_INF,
        until: float = _POS_INF,
        **field_filters: typing.Any,
    ) -> list[float]:
        """Times of all matching records (vectorized; no record views)."""
        filters = list(field_filters.items())
        out: list[float] = []
        for times, _, _, _, idx in self._matches(prefix, since, until, filters):
            out.extend(times[idx].tolist())
        return out

    def clear(self) -> None:
        """Drop all records (subscribers stay).

        Invariant: the sequence counter is **not** reset — it keeps
        growing monotonically across clears, so records made after a
        ``clear()`` always carry strictly larger sequences than anything
        recorded (or observed by a subscriber) before it.  Resumable
        analyses rely on this to order observations across windows
        without keeping the records themselves.
        """
        self._chunks = []
        self._sealed_len = 0
        self._seq_base = self._sequence
        self._new_active()
