"""Trace instrumentation for simulations.

Experiments need to observe *when* things happened — when a service went
down, when the VMM finished reloading, how throughput evolved.  Rather than
sprinkling ad-hoc lists everywhere, every simulator carries a
:class:`Tracer`; components record typed :class:`TraceRecord` entries and
analyses query them afterwards.

Records are cheap (a dataclass with a dict payload) and strictly ordered by
(time, sequence), matching the deterministic event order of the kernel.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One recorded occurrence.

    Attributes
    ----------
    time:
        Simulated time of the record.
    kind:
        Dotted event-kind string, e.g. ``"vmm.reboot.start"``,
        ``"service.up"`` — dots give a cheap namespace for prefix queries.
    fields:
        Arbitrary payload (domain id, service name, byte counts, ...).
    """

    time: float
    sequence: int
    kind: str
    fields: dict[str, typing.Any]

    def __getitem__(self, key: str) -> typing.Any:
        return self.fields[key]

    def get(self, key: str, default: typing.Any = None) -> typing.Any:
        """Field lookup with a default (dict.get semantics)."""
        return self.fields.get(key, default)


class Tracer:
    """Collects :class:`TraceRecord` entries for one simulation."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._records: list[TraceRecord] = []
        self._sequence = 0
        self._subscribers: dict[str, list[typing.Callable[[TraceRecord], None]]] = {}

    def record(self, kind: str, **fields: typing.Any) -> TraceRecord:
        """Append a record stamped with the current simulated time."""
        self._sequence += 1
        rec = TraceRecord(self._sim.now, self._sequence, kind, fields)
        self._records.append(rec)
        for prefix, callbacks in self._subscribers.items():
            if kind.startswith(prefix):
                for callback in callbacks:
                    callback(rec)
        return rec

    def subscribe(
        self, prefix: str, callback: typing.Callable[[TraceRecord], None]
    ) -> None:
        """Invoke ``callback`` for every future record whose kind starts
        with ``prefix`` (live monitoring, e.g. the downtime prober)."""
        self._subscribers.setdefault(prefix, []).append(callback)

    # -- querying -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> typing.Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        prefix: str = "",
        since: float = float("-inf"),
        until: float = float("inf"),
        **field_filters: typing.Any,
    ) -> list[TraceRecord]:
        """Return records matching a kind prefix, time window and fields.

        ``field_filters`` keep only records where each named field equals
        the given value (missing fields never match).
        """
        out = []
        for rec in self._records:
            if not rec.kind.startswith(prefix):
                continue
            if not (since <= rec.time <= until):
                continue
            sentinel = object()
            if any(
                rec.fields.get(key, sentinel) != value
                for key, value in field_filters.items()
            ):
                continue
            out.append(rec)
        return out

    def first(self, prefix: str, **field_filters: typing.Any) -> TraceRecord | None:
        """The earliest matching record, or None."""
        matches = self.select(prefix, **field_filters)
        return matches[0] if matches else None

    def last(self, prefix: str, **field_filters: typing.Any) -> TraceRecord | None:
        """The latest matching record, or None."""
        matches = self.select(prefix, **field_filters)
        return matches[-1] if matches else None

    def times(self, prefix: str, **field_filters: typing.Any) -> list[float]:
        """Times of all matching records."""
        return [rec.time for rec in self.select(prefix, **field_filters)]

    def clear(self) -> None:
        """Drop all records (subscribers stay)."""
        self._records.clear()
