"""Trace instrumentation for simulations.

Experiments need to observe *when* things happened — when a service went
down, when the VMM finished reloading, how throughput evolved.  Rather than
sprinkling ad-hoc lists everywhere, every simulator carries a
:class:`Tracer`; components record typed :class:`TraceRecord` entries and
analyses query them afterwards.

Records are cheap (a dataclass with a dict payload) and strictly ordered by
(time, sequence), matching the deterministic event order of the kernel.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator


class TraceRecord:
    """One recorded occurrence (immutable by convention).

    A plain ``__slots__`` class rather than a frozen dataclass: records
    are the single most-allocated object in a traced simulation, and the
    frozen-dataclass ``__init__`` (one ``object.__setattr__`` per field)
    costs several times a direct attribute store.

    Attributes
    ----------
    time:
        Simulated time of the record.
    kind:
        Dotted event-kind string, e.g. ``"vmm.reboot.start"``,
        ``"service.up"`` — dots give a cheap namespace for prefix queries.
    fields:
        Arbitrary payload (domain id, service name, byte counts, ...).
    """

    __slots__ = ("time", "sequence", "kind", "fields")

    def __init__(
        self,
        time: float,
        sequence: int,
        kind: str,
        fields: dict[str, typing.Any],
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.kind = kind
        self.fields = fields

    def __getitem__(self, key: str) -> typing.Any:
        return self.fields[key]

    def get(self, key: str, default: typing.Any = None) -> typing.Any:
        """Field lookup with a default (dict.get semantics)."""
        return self.fields.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceRecord(time={self.time!r}, sequence={self.sequence!r}, "
            f"kind={self.kind!r}, fields={self.fields!r})"
        )


class Tracer:
    """Collects :class:`TraceRecord` entries for one simulation.

    Subscribers are bucketed by the first dotted segment of their prefix
    (``"vmm.save."`` lives in the ``"vmm"`` bucket), so recording touches
    only the handful of subscriptions that could possibly match instead of
    scanning every registered prefix.  Prefixes without a dot (including
    ``""``) cannot be bucketed soundly — ``"ne"`` matches ``"net.tx"`` —
    and go to a catch-all list scanned on every record.
    """

    __slots__ = ("_sim", "_records", "_sequence", "_buckets", "_scan_all", "_nsubs")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._records: list[TraceRecord] = []
        self._sequence = 0
        self._buckets: dict[
            str, list[tuple[str, typing.Callable[[TraceRecord], None]]]
        ] = {}
        self._scan_all: list[tuple[str, typing.Callable[[TraceRecord], None]]] = []
        self._nsubs = 0

    def record(self, kind: str, **fields: typing.Any) -> TraceRecord:
        """Append a record stamped with the current simulated time."""
        self._sequence += 1
        rec = TraceRecord(self._sim._now, self._sequence, kind, fields)
        self._records.append(rec)
        if self._nsubs:
            dot = kind.find(".")
            head = kind if dot < 0 else kind[:dot]
            matches = self._buckets.get(head)
            if matches:
                for prefix, callback in matches:
                    if kind.startswith(prefix):
                        callback(rec)
            for prefix, callback in self._scan_all:
                if kind.startswith(prefix):
                    callback(rec)
        return rec

    def subscribe(
        self, prefix: str, callback: typing.Callable[[TraceRecord], None]
    ) -> None:
        """Invoke ``callback`` for every future record whose kind starts
        with ``prefix`` (live monitoring, e.g. the downtime prober)."""
        dot = prefix.find(".")
        if dot < 0:
            # "vmm" (or "") could match kinds in any bucket: scan always.
            self._scan_all.append((prefix, callback))
        else:
            self._buckets.setdefault(prefix[:dot], []).append((prefix, callback))
        self._nsubs += 1

    # -- querying -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> typing.Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        prefix: str = "",
        since: float = float("-inf"),
        until: float = float("inf"),
        **field_filters: typing.Any,
    ) -> list[TraceRecord]:
        """Return records matching a kind prefix, time window and fields.

        ``field_filters`` keep only records where each named field equals
        the given value (missing fields never match).
        """
        sentinel = object()
        filters = list(field_filters.items())
        out = []
        for rec in self._records:
            if not rec.kind.startswith(prefix):
                continue
            if not (since <= rec.time <= until):
                continue
            if any(
                rec.fields.get(key, sentinel) != value for key, value in filters
            ):
                continue
            out.append(rec)
        return out

    def first(self, prefix: str, **field_filters: typing.Any) -> TraceRecord | None:
        """The earliest matching record, or None."""
        matches = self.select(prefix, **field_filters)
        return matches[0] if matches else None

    def last(self, prefix: str, **field_filters: typing.Any) -> TraceRecord | None:
        """The latest matching record, or None."""
        matches = self.select(prefix, **field_filters)
        return matches[-1] if matches else None

    def times(self, prefix: str, **field_filters: typing.Any) -> list[float]:
        """Times of all matching records."""
        return [rec.time for rec in self.select(prefix, **field_filters)]

    def clear(self) -> None:
        """Drop all records (subscribers stay)."""
        self._records.clear()
