"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock and the pending-event heap, and is
the factory for all kernel primitives (events, timeouts, processes).  Its
API deliberately mirrors well-known DES libraries so the higher layers read
naturally::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3.0)
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done" and sim.now == 3.0

Determinism: at equal timestamps events are processed in (priority,
insertion) order, so a simulation with fixed seeds is exactly repeatable —
a property the test suite and the paper-reproduction experiments rely on.
"""

from __future__ import annotations

import heapq
import os
import typing

from repro.errors import SimulationError
from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    PROCESSED,
    Timeout,
)
from repro.simkernel.process import Process, ProcessGenerator

_observers: list[typing.Callable[["Simulator"], None]] = []
"""Callbacks invoked with each newly constructed :class:`Simulator`.

Normally empty; :func:`repro.analysis.obs.capture_simulators` registers
one so CLI trace export can reach simulators built deep inside
experiment runners.  Construction-time only — observers never see run
events and cannot perturb anything.
"""


class TimerHandle:
    """A cancellable scheduled callback (see :meth:`Simulator.call_at`).

    Timer handles sit directly in the simulator's heap — no Event or
    closure is allocated per timer, which matters because fluid-sharing
    pools reschedule (cancel + re-arm) a timer on every membership
    change.  A cancelled handle is dropped by the event loop without any
    callback bookkeeping when its deadline is reached, and the simulator
    compacts the heap if cancelled handles ever dominate it.
    """

    # _san_origin is set only by the determinism sanitizer and stays unset
    # otherwise — readers must use getattr(handle, "_san_origin", None).
    __slots__ = ("_cancelled", "_san_origin", "_sim", "callback", "time")

    def __init__(
        self,
        time: float,
        callback: typing.Callable[[], None] | None = None,
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self._sim = sim
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (safe after it ran)."""
        if self._cancelled:
            return
        self._cancelled = True
        self.callback = None  # release closure references promptly
        if self._sim is not None:
            self._sim._note_timer_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0).
    trace:
        Optional :class:`~repro.simkernel.tracing.Tracer`; if omitted a fresh
        one is created so instrumentation is always available.
    sanitize:
        ``True`` attaches a
        :class:`~repro.simkernel.sanitizer.DeterminismSanitizer` (exposed as
        ``sim.sanitizer``) that observes the run for determinism hazards
        without perturbing it, and turns on runtime trace-schema
        validation (:meth:`~repro.simkernel.tracing.Tracer
        .enable_schema_validation`).  ``None`` (the default) consults the
        ``REPRO_SANITIZE`` environment variable.
    metrics:
        ``True`` enables the :class:`~repro.simkernel.metrics
        .MetricsRegistry` exposed as ``sim.metrics`` (instruments
        accumulate and keep sample series).  ``False`` keeps it in
        no-op mode.  ``None`` (the default) consults ``REPRO_METRICS``.
        Enabled or not, metrics never perturb the simulation.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        trace: typing.Any = None,
        sanitize: bool | None = None,
        metrics: bool | None = None,
    ) -> None:
        from repro.simkernel.metrics import MetricsRegistry
        from repro.simkernel.spans import SpanTracker
        from repro.simkernel.tracing import Tracer  # local import: cycle guard

        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, typing.Any]] = []
        self._sequence = 0
        self._cancelled_timers = 0
        self._active_process: Process | None = None
        # Columnar: record() appends to typed column buffers and allocates
        # no per-record object unless a live subscription matches, so
        # always-on tracing stays off the event hot path's flamegraph.
        self.trace = trace if trace is not None else Tracer(self)
        self.spans = SpanTracker(self)
        if metrics is None:
            metrics = os.environ.get("REPRO_METRICS", "") not in ("", "0")
        self.metrics = MetricsRegistry(self, enabled=bool(metrics))
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        if sanitize:
            from repro.simkernel.sanitizer import DeterminismSanitizer

            self.sanitizer: typing.Any = DeterminismSanitizer(self)
            # caller-supplied trace objects may predate schema validation
            enable = getattr(self.trace, "enable_schema_validation", None)
            if enable is not None:
                enable()
        else:
            self.sanitizer = None
        if _observers:
            for observer in _observers:
                observer(self)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- primitive factories -------------------------------------------------

    def event(self, name: str | None = None) -> Event:
        """Create an untriggered event."""
        return Event(self, name=name)

    def timeout(
        self, delay: float, value: typing.Any = None, name: str | None = None
    ) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def spawn(
        self, generator: ProcessGenerator, name: str | None = None
    ) -> Process:
        """Start a new process from a generator and return it."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """Event that fires when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """Event that fires when any given event has fired."""
        return AnyOf(self, events)

    def call_at(
        self, time: float, callback: typing.Callable[[], None]
    ) -> TimerHandle:
        """Run ``callback()`` at absolute simulated ``time``; cancellable.

        Used by fluid-sharing resources that must reschedule their next
        completion whenever membership changes.
        """
        if time < self._now:
            raise SimulationError(f"call_at({time}) is in the past (now={self._now})")
        handle = TimerHandle(time, callback, self)
        if self.sanitizer is not None:
            self.sanitizer.note_timer(handle)
        self._sequence += 1
        heapq.heappush(self._heap, (time, PRIORITY_NORMAL, self._sequence, handle))
        return handle

    def call_in(
        self, delay: float, callback: typing.Callable[[], None]
    ) -> TimerHandle:
        """Run ``callback()`` after ``delay`` seconds; cancellable."""
        return self.call_at(self._now + delay, callback)

    def _call_soon_urgent(self, callback: typing.Callable[[], None]) -> None:
        """Schedule ``callback()`` at the current instant, urgently.

        Used by :class:`~repro.simkernel.process.Process` start-up; cheaper
        than a full Event because nothing ever waits on it.
        """
        self._sequence += 1
        heapq.heappush(
            self._heap,
            (self._now, PRIORITY_URGENT, self._sequence, TimerHandle(self._now, callback)),
        )

    # -- scheduling internals -------------------------------------------------

    def _enqueue(self, event: Event, priority: int) -> None:
        # "Now" can never be in the past: skip _enqueue_at's guard.
        self._sequence += 1
        heapq.heappush(self._heap, (self._now, priority, self._sequence, event))

    def _enqueue_at(self, time: float, event: Event, priority: int) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (time, priority, self._sequence, event))

    def _note_timer_cancel(self) -> None:
        """Account a cancelled timer still sitting in the heap.

        When cancelled handles outnumber live entries (and are numerous
        enough to matter), the heap is compacted in one pass so that
        cancel-heavy workloads — fluid-sharing pools re-arm a timer on
        every membership change — cannot grow the heap unboundedly.
        """
        self._cancelled_timers += 1
        if self._cancelled_timers > 64 and self._cancelled_timers * 2 > len(self._heap):
            # In-place: the run() loops hold a local reference to the list.
            self._heap[:] = [
                entry
                for entry in self._heap
                if not (type(entry[3]) is TimerHandle and entry[3]._cancelled)
            ]
            heapq.heapify(self._heap)
            self._cancelled_timers = 0

    # -- event loop ------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        heap = self._heap
        while heap:
            head = heap[0][3]
            if type(head) is TimerHandle and head._cancelled:
                heapq.heappop(heap)
                self._cancelled_timers -= 1
                continue
            return heap[0][0]
        return float("inf")

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock.

        Cancelled timers encountered on the way are discarded without any
        callback bookkeeping (they count as no event at all).
        """
        heap = self._heap
        if not heap:
            raise SimulationError("step() with an empty event queue")
        san = self.sanitizer
        while heap:
            time, priority, _, item = heapq.heappop(heap)
            if type(item) is TimerHandle:
                if item._cancelled:
                    self._cancelled_timers -= 1
                    continue
                if san is not None:
                    san.on_execute(time, priority, item)
                self._now = time
                item.callback()
            else:
                if san is not None:
                    san.on_execute(time, priority, item)
                self._now = time
                item._process()
            return

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time (the clock is
          advanced to exactly ``until`` even if no event fires then);
        * an :class:`Event` — run until that event has been processed, and
          return its value (re-raising its exception on failure).
        """
        # The loops below inline step() — one dynamic dispatch per event is
        # measurable at millions of events per experiment.  The sanitized
        # variant lives in _run_sanitized so these loops carry no per-event
        # branch when the sanitizer is off.
        if self.sanitizer is not None:
            return self._run_sanitized(until)
        heap = self._heap
        heappop = heapq.heappop

        if isinstance(until, Event):
            stop = until
            while stop._state != PROCESSED:
                if not heap:
                    raise SimulationError(
                        f"event queue exhausted before {stop!r} fired"
                    )
                time, _, _, item = heappop(heap)
                if type(item) is TimerHandle:
                    if item._cancelled:
                        self._cancelled_timers -= 1
                        continue
                    self._now = time
                    item.callback()
                else:
                    self._now = time
                    item._process()
            if not stop._ok:
                stop.defuse()
                raise stop.value
            return stop._value

        if until is None:
            while heap:
                time, _, _, item = heappop(heap)
                if type(item) is TimerHandle:
                    if item._cancelled:
                        self._cancelled_timers -= 1
                        continue
                    self._now = time
                    item.callback()
                else:
                    self._now = time
                    item._process()
            return None

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past")
        while heap and heap[0][0] <= deadline:
            time, _, _, item = heappop(heap)
            if type(item) is TimerHandle:
                if item._cancelled:
                    self._cancelled_timers -= 1
                    continue
                self._now = time
                item.callback()
            else:
                self._now = time
                item._process()
        self._now = deadline
        return None

    def _run_sanitized(self, until: float | Event | None) -> typing.Any:
        """The :meth:`run` semantics with sanitizer observation hooks.

        Kept as a separate loop so the unsanitized hot loops in
        :meth:`run` never pay for the hooks.  The observable simulation —
        pop order, clock advances, callback execution — is identical.
        """
        heap = self._heap
        heappop = heapq.heappop
        san = self.sanitizer

        try:
            if isinstance(until, Event):
                stop = until
                while stop._state != PROCESSED:
                    if not heap:
                        raise SimulationError(
                            f"event queue exhausted before {stop!r} fired"
                        )
                    time, priority, _, item = heappop(heap)
                    if type(item) is TimerHandle:
                        if item._cancelled:
                            self._cancelled_timers -= 1
                            continue
                        san.on_execute(time, priority, item)
                        self._now = time
                        item.callback()
                    else:
                        san.on_execute(time, priority, item)
                        self._now = time
                        item._process()
                if not stop._ok:
                    stop.defuse()
                    raise stop.value
                return stop._value

            if until is None:
                while heap:
                    time, priority, _, item = heappop(heap)
                    if type(item) is TimerHandle:
                        if item._cancelled:
                            self._cancelled_timers -= 1
                            continue
                        san.on_execute(time, priority, item)
                        self._now = time
                        item.callback()
                    else:
                        san.on_execute(time, priority, item)
                        self._now = time
                        item._process()
                san.on_queue_exhausted()
                return None

            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(f"run(until={deadline}) is in the past")
            while heap and heap[0][0] <= deadline:
                time, priority, _, item = heappop(heap)
                if type(item) is TimerHandle:
                    if item._cancelled:
                        self._cancelled_timers -= 1
                        continue
                    san.on_execute(time, priority, item)
                    self._now = time
                    item.callback()
                else:
                    san.on_execute(time, priority, item)
                    self._now = time
                    item._process()
            self._now = deadline
            return None
        finally:
            san.on_run_exit()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self._now:.6g} pending={len(self._heap)}>"
