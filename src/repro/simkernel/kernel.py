"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock and the pending-event heap, and is
the factory for all kernel primitives (events, timeouts, processes).  Its
API deliberately mirrors well-known DES libraries so the higher layers read
naturally::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3.0)
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done" and sim.now == 3.0

Determinism: at equal timestamps events are processed in (priority,
insertion) order, so a simulation with fixed seeds is exactly repeatable —
a property the test suite and the paper-reproduction experiments rely on.
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    Timeout,
)
from repro.simkernel.process import Process, ProcessGenerator


class TimerHandle:
    """A cancellable scheduled callback (see :meth:`Simulator.call_at`)."""

    __slots__ = ("_cancelled", "time")

    def __init__(self, time: float) -> None:
        self.time = time
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (safe after it ran)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0).
    trace:
        Optional :class:`~repro.simkernel.tracing.Tracer`; if omitted a fresh
        one is created so instrumentation is always available.
    """

    def __init__(self, start_time: float = 0.0, trace: typing.Any = None) -> None:
        from repro.simkernel.tracing import Tracer  # local import: cycle guard

        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_process: Process | None = None
        self.trace = trace if trace is not None else Tracer(self)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- primitive factories -------------------------------------------------

    def event(self, name: str | None = None) -> Event:
        """Create an untriggered event."""
        return Event(self, name=name)

    def timeout(
        self, delay: float, value: typing.Any = None, name: str | None = None
    ) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def spawn(
        self, generator: ProcessGenerator, name: str | None = None
    ) -> Process:
        """Start a new process from a generator and return it."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """Event that fires when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """Event that fires when any given event has fired."""
        return AnyOf(self, events)

    def call_at(
        self, time: float, callback: typing.Callable[[], None]
    ) -> TimerHandle:
        """Run ``callback()`` at absolute simulated ``time``; cancellable.

        Used by fluid-sharing resources that must reschedule their next
        completion whenever membership changes.
        """
        if time < self._now:
            raise SimulationError(f"call_at({time}) is in the past (now={self._now})")
        handle = TimerHandle(time)
        event = Event(self, name="timer")
        event._ok = True
        event._state = "triggered"

        def run(_: Event) -> None:
            if not handle.cancelled:
                callback()

        event.callbacks.append(run)
        self._enqueue_at(time, event, PRIORITY_NORMAL)
        return handle

    def call_in(
        self, delay: float, callback: typing.Callable[[], None]
    ) -> TimerHandle:
        """Run ``callback()`` after ``delay`` seconds; cancellable."""
        return self.call_at(self._now + delay, callback)

    # -- scheduling internals -------------------------------------------------

    def _enqueue(self, event: Event, priority: int) -> None:
        self._enqueue_at(self._now, event, priority)

    def _enqueue_at(self, time: float, event: Event, priority: int) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (time, priority, self._sequence, event))

    # -- event loop ------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one scheduled event, advancing the clock."""
        if not self._heap:
            raise SimulationError("step() with an empty event queue")
        time, _, _, event = heapq.heappop(self._heap)
        self._now = time
        event._process()

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time (the clock is
          advanced to exactly ``until`` even if no event fires then);
        * an :class:`Event` — run until that event has been processed, and
          return its value (re-raising its exception on failure).
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._heap:
                    raise SimulationError(
                        f"event queue exhausted before {stop!r} fired"
                    )
                self.step()
            if not stop.ok:
                stop.defuse()
                raise stop.value
            return stop.value

        if until is None:
            while self._heap:
                self.step()
            return None

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self._now:.6g} pending={len(self._heap)}>"
