"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock and the dispatch semantics, and
is the factory for all kernel primitives (events, timeouts, processes).
Where pending entries live — heap layout, timer tiers, lazy deletion — is
delegated to a pluggable :class:`~repro.simkernel.backends.SchedulerBackend`
(``Simulator(backend="batched")`` or ``REPRO_KERNEL_BACKEND=batched``);
the API deliberately mirrors well-known DES libraries so the higher
layers read naturally::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3.0)
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done" and sim.now == 3.0

Determinism: at equal timestamps events are processed in (priority,
insertion) order, so a simulation with fixed seeds is exactly repeatable —
a property the test suite and the paper-reproduction experiments rely on.
Backend choice never changes results, only wall-clock time: every backend
pops the global ``(time, priority, sequence)`` minimum (see
:mod:`repro.simkernel.backends` for the contract and the fuzzed proof).
"""

from __future__ import annotations

import heapq
import os
import sys
import typing

from repro.errors import SimulationError
from repro.simkernel.backends import (
    BatchedBackend,
    ReferenceBackend,
    resolve_backend,
)
from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    PROCESSED,
    TRIGGERED,
    Timeout,
)
from repro.simkernel.process import Process, ProcessGenerator

_observers: list[typing.Callable[["Simulator"], None]] = []
"""Callbacks invoked with each newly constructed :class:`Simulator`.

Normally empty; :func:`repro.analysis.obs.capture_simulators` registers
one so CLI trace export can reach simulators built deep inside
experiment runners.  Construction-time only — observers never see run
events and cannot perturb anything.
"""

_getrefcount = sys.getrefcount

#: Freelists never hold more than this many recycled objects per kind.
_POOL_CAP = 1024

#: ``sys.getrefcount(item)`` for an entry payload referenced only by its
#: entry tuple, the dispatch local, and the getrefcount argument — i.e.
#: an object nobody outside the event loop can observe.  Recycling is
#: gated on exactly this count, so a handle or timeout the user (or a
#: waiting process frame) still references is never reused.
_UNREFERENCED = 3


class TimerHandle:
    """A cancellable scheduled callback (see :meth:`Simulator.call_at`).

    Timer handles sit directly in the scheduler backend — no Event or
    closure is allocated per timer, which matters because fluid-sharing
    pools reschedule (cancel + re-arm) a timer on every membership
    change.  A cancelled handle is dropped by the event loop without any
    callback bookkeeping when its deadline is reached, and the backend
    compacts its structures if cancelled handles ever dominate them.
    """

    # _san_origin is set only by the determinism sanitizer and stays unset
    # otherwise — readers must use getattr(handle, "_san_origin", None).
    __slots__ = ("_cancelled", "_popped", "_san_origin", "_sim", "callback", "time")

    def __init__(
        self,
        time: float,
        callback: typing.Callable[[], None] | None = None,
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self._sim = sim
        self._cancelled = False
        self._popped = False

    def cancel(self) -> None:
        """Prevent the callback from running (safe after it ran)."""
        if self._cancelled:
            return
        self._cancelled = True
        self.callback = None  # release closure references promptly
        # Only a handle still sitting in the backend needs accounting; a
        # cancel after the loop already popped it (fired, or discarded by
        # an earlier cancel pass) must not inflate the lazy-delete
        # counters — phantom counts trigger pointless whole-structure
        # compaction scans.
        if self._sim is not None and not self._popped:
            self._sim._backend.note_cancel(self)

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0).
    trace:
        Optional :class:`~repro.simkernel.tracing.Tracer`; if omitted a fresh
        one is created so instrumentation is always available.
    sanitize:
        ``True`` attaches a
        :class:`~repro.simkernel.sanitizer.DeterminismSanitizer` (exposed as
        ``sim.sanitizer``) that observes the run for determinism hazards
        without perturbing it, and turns on runtime trace-schema
        validation (:meth:`~repro.simkernel.tracing.Tracer
        .enable_schema_validation`).  ``None`` (the default) consults the
        ``REPRO_SANITIZE`` environment variable.
    metrics:
        ``True`` enables the :class:`~repro.simkernel.metrics
        .MetricsRegistry` exposed as ``sim.metrics`` (instruments
        accumulate and keep sample series).  ``False`` keeps it in
        no-op mode.  ``None`` (the default) consults ``REPRO_METRICS``.
        Enabled or not, metrics never perturb the simulation.
    backend:
        Scheduler backend: a registry name (``"reference"`` or
        ``"batched"``), a :class:`~repro.simkernel.backends
        .SchedulerBackend` class, or a fresh instance.  ``None`` (the
        default) consults ``REPRO_KERNEL_BACKEND`` and falls back to the
        reference heap.  Backend choice never changes simulated results,
        only wall-clock speed.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        trace: typing.Any = None,
        sanitize: bool | None = None,
        metrics: bool | None = None,
        backend: typing.Any = None,
    ) -> None:
        from repro.simkernel.metrics import MetricsRegistry
        from repro.simkernel.spans import SpanTracker
        from repro.simkernel.tracing import Tracer  # local import: cycle guard

        self._now = float(start_time)
        self._backend = resolve_backend(
            backend,
            start_time=self._now,
            env=os.environ.get("REPRO_KERNEL_BACKEND"),
        )
        self._schedule = self._backend.schedule
        self._active_process: Process | None = None
        self._timeout_pool: list[Timeout] = []
        self._timer_pool: list[TimerHandle] = []
        # Columnar: record() appends to typed column buffers and allocates
        # no per-record object unless a live subscription matches, so
        # always-on tracing stays off the event hot path's flamegraph.
        self.trace = trace if trace is not None else Tracer(self)
        self.spans = SpanTracker(self)
        if metrics is None:
            metrics = os.environ.get("REPRO_METRICS", "") not in ("", "0")
        self.metrics = MetricsRegistry(self, enabled=bool(metrics))
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        if sanitize:
            from repro.simkernel.sanitizer import DeterminismSanitizer

            self.sanitizer: typing.Any = DeterminismSanitizer(self)
            # caller-supplied trace objects may predate schema validation
            enable = getattr(self.trace, "enable_schema_validation", None)
            if enable is not None:
                enable()
        else:
            self.sanitizer = None
        if _observers:
            for observer in _observers:
                observer(self)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def backend(self) -> typing.Any:
        """The :class:`~repro.simkernel.backends.SchedulerBackend` in use."""
        return self._backend

    # -- primitive factories -------------------------------------------------

    def event(self, name: str | None = None) -> Event:
        """Create an untriggered event."""
        return Event(self, name=name)

    def timeout(
        self, delay: float, value: typing.Any = None, name: str | None = None
    ) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        pool = self._timeout_pool
        if pool and delay >= 0:
            # Reset a recycled instance in place; the stores mirror
            # Timeout.__init__ exactly (a timeout is born triggered).
            # Negative (and NaN) delays fall through to the constructor,
            # which owns the error path.
            timeout = pool.pop()
            timeout.name = name
            timeout.delay = delay
            timeout._value = value
            timeout._ok = True
            timeout._state = TRIGGERED
            timeout._defused = False
            self._schedule(self._now + delay, PRIORITY_NORMAL, timeout)
            return timeout
        return Timeout(self, delay, value=value, name=name)

    def spawn(
        self, generator: ProcessGenerator, name: str | None = None
    ) -> Process:
        """Start a new process from a generator and return it."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """Event that fires when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """Event that fires when any given event has fired."""
        return AnyOf(self, events)

    def call_at(
        self, time: float, callback: typing.Callable[[], None]
    ) -> TimerHandle:
        """Run ``callback()`` at absolute simulated ``time``; cancellable.

        Used by fluid-sharing resources that must reschedule their next
        completion whenever membership changes.
        """
        if time < self._now:
            raise SimulationError(f"call_at({time}) is in the past (now={self._now})")
        pool = self._timer_pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.callback = callback
            handle._cancelled = False
            handle._popped = False
        else:
            handle = TimerHandle(time, callback, self)
        if self.sanitizer is not None:
            self.sanitizer.note_timer(handle)
        self._backend.schedule_timer(handle)
        return handle

    def call_in(
        self, delay: float, callback: typing.Callable[[], None]
    ) -> TimerHandle:
        """Run ``callback()`` after ``delay`` seconds; cancellable."""
        return self.call_at(self._now + delay, callback)

    def rearm_timer(
        self,
        handle: TimerHandle | None,
        time: float,
        callback: typing.Callable[[], None],
    ) -> TimerHandle:
        """Cancel ``handle`` (if any) and arm a fresh timer at ``time``.

        Semantically identical to ``handle.cancel()`` followed by
        :meth:`call_at` — the replacement takes a *new* scheduling
        sequence number, so same-instant ordering is exactly what the
        two separate calls would produce.  One entry point lets the
        cancel/re-arm churn of fluid-sharing pools flow through the
        backend's lazy-delete accounting and the handle freelist in a
        single call.
        """
        if handle is not None:
            handle.cancel()
        return self.call_at(time, callback)

    def _call_soon_urgent(self, callback: typing.Callable[[], None]) -> None:
        """Schedule ``callback()`` at the current instant, urgently.

        Used by :class:`~repro.simkernel.process.Process` start-up; cheaper
        than a full Event because nothing ever waits on it.
        """
        pool = self._timer_pool
        if pool:
            handle = pool.pop()
            handle.time = self._now
            handle.callback = callback
            handle._cancelled = False
            handle._popped = False
        else:
            handle = TimerHandle(self._now, callback, self)
        self._schedule(self._now, PRIORITY_URGENT, handle)

    # -- scheduling internals -------------------------------------------------

    def _enqueue(self, event: Event, priority: int) -> None:
        # "Now" can never be in the past: skip _enqueue_at's guard.
        self._schedule(self._now, priority, event)

    def _enqueue_at(self, time: float, event: Event, priority: int) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._schedule(time, priority, event)

    def _recycle_timer(self, handle: TimerHandle) -> None:
        """Return a dead, externally-unreferenced handle to the freelist."""
        pool = self._timer_pool
        if len(pool) < _POOL_CAP:
            handle.callback = None
            pool.append(handle)

    # -- event loop ------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._backend.peek()

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock.

        Cancelled timers encountered on the way are discarded without any
        callback bookkeeping (they count as no event at all).
        """
        entry = self._backend.pop_next()
        if entry is None:
            raise SimulationError("step() with an empty event queue")
        time, priority, _, item = entry
        san = self.sanitizer
        if san is not None:
            san.on_execute(time, priority, item)
        self._now = time
        if type(item) is TimerHandle:
            item._popped = True
            item.callback()
        else:
            item._process()

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time (the clock is
          advanced to exactly ``until`` even if no event fires then);
        * an :class:`Event` — run until that event has been processed, and
          return its value (re-raising its exception on failure).
        """
        # Dispatch is specialized per backend: the two fast paths below
        # inline the backend's pop logic — one dynamic dispatch per event
        # is measurable at millions of events per experiment.  Sanitized
        # runs (any backend) share the generic loop so the fast paths
        # carry no per-event hook branch.
        backend = self._backend
        if self.sanitizer is not None or type(backend) not in (
            ReferenceBackend,
            BatchedBackend,
        ):
            return self._run_generic(until)
        if type(backend) is BatchedBackend:
            return self._run_batched(until)
        return self._run_reference(until)

    def _run_reference(self, until: float | Event | None) -> typing.Any:
        """The :meth:`run` semantics inlined over the reference heap."""
        backend = self._backend
        heap = backend._heap
        heappop = heapq.heappop

        if isinstance(until, Event):
            stop = until
            while stop._state != PROCESSED:
                if not heap:
                    raise SimulationError(
                        f"event queue exhausted before {stop!r} fired"
                    )
                time, _, _, item = heappop(heap)
                if type(item) is TimerHandle:
                    if item._cancelled:
                        backend._cancelled -= 1
                        continue
                    item._popped = True
                    self._now = time
                    item.callback()
                else:
                    self._now = time
                    item._process()
            if not stop._ok:
                stop.defuse()
                raise stop.value
            return stop._value

        if until is None:
            while heap:
                time, _, _, item = heappop(heap)
                if type(item) is TimerHandle:
                    if item._cancelled:
                        backend._cancelled -= 1
                        continue
                    item._popped = True
                    self._now = time
                    item.callback()
                else:
                    self._now = time
                    item._process()
            return None

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past")
        while heap and heap[0][0] <= deadline:
            time, _, _, item = heappop(heap)
            if type(item) is TimerHandle:
                if item._cancelled:
                    backend._cancelled -= 1
                    continue
                item._popped = True
                self._now = time
                item.callback()
            else:
                self._now = time
                item._process()
        self._now = deadline
        return None

    def _run_batched(self, until: float | Event | None) -> typing.Any:
        """The :meth:`run` semantics inlined over the batched backend.

        The batched structures (monotone run list, near/far heaps) are
        mutated in place by the backend, never rebound, so the local
        references below stay valid across compactions and migrations.
        Beyond the cheaper pop/schedule, this loop recycles dead
        timeouts and fired timer handles into per-simulator freelists —
        an object is reused only when ``sys.getrefcount`` proves the
        event loop holds the sole references, so anything a process or
        caller still observes is left alone.
        """
        backend = self._backend
        run = backend._run
        heap = backend._heap
        far = backend._far
        heappop = heapq.heappop
        timeout_pool = self._timeout_pool
        until_event: Event | None = None
        deadline = float("inf")
        if isinstance(until, Event):
            until_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(f"run(until={deadline}) is in the past")

        if until is None:
            # Run-to-exhaustion — the overwhelmingly common mode — gets a
            # loop with no stop-event or deadline test per event.
            while True:
                idx = backend._idx
                if idx < len(run):
                    entry = run[idx]
                    if heap and heap[0] < entry:
                        entry = heappop(heap)
                    else:
                        run[idx] = None  # free the tuple for the freelists
                        idx += 1
                        backend._idx = idx
                        if idx > 4096 and idx * 2 > len(run):
                            backend._trim_run()
                elif heap:
                    entry = heappop(heap)
                elif far:
                    backend._migrate()
                    continue
                else:
                    break

                item = entry[3]
                if type(item) is TimerHandle:
                    if item._cancelled:
                        backend._cancelled -= 1
                        if _getrefcount(item) == _UNREFERENCED:
                            self._recycle_timer(item)
                        continue
                    item._popped = True
                    self._now = entry[0]
                    item.callback()
                    if (
                        not item._cancelled
                        and _getrefcount(item) == _UNREFERENCED
                    ):
                        self._recycle_timer(item)
                else:
                    self._now = entry[0]
                    item._process()
                    if (
                        type(item) is Timeout
                        and not item.callbacks
                        and _getrefcount(item) == _UNREFERENCED
                        and len(timeout_pool) < _POOL_CAP
                    ):
                        timeout_pool.append(item)
            return None

        while True:
            if until_event is not None and until_event._state == PROCESSED:
                break
            idx = backend._idx
            if idx < len(run):
                entry = run[idx]
                if heap and heap[0] < entry:
                    if heap[0][0] > deadline:
                        break
                    entry = heappop(heap)
                elif entry[0] > deadline:
                    break
                else:
                    run[idx] = None  # free the tuple for the freelists
                    backend._idx = idx + 1
                    if backend._idx > 4096 and backend._idx * 2 > len(run):
                        backend._trim_run()
            elif heap:
                if heap[0][0] > deadline:
                    break
                entry = heappop(heap)
            elif far:
                if far[0][0] > deadline:
                    break
                backend._migrate()
                continue
            else:
                break

            item = entry[3]
            if type(item) is TimerHandle:
                if item._cancelled:
                    backend._cancelled -= 1
                    if _getrefcount(item) == _UNREFERENCED:
                        self._recycle_timer(item)
                    continue
                item._popped = True
                self._now = entry[0]
                item.callback()
                if (
                    not item._cancelled
                    and _getrefcount(item) == _UNREFERENCED
                ):
                    self._recycle_timer(item)
            else:
                self._now = entry[0]
                item._process()
                if (
                    type(item) is Timeout
                    and not item.callbacks
                    and _getrefcount(item) == _UNREFERENCED
                    and len(timeout_pool) < _POOL_CAP
                ):
                    timeout_pool.append(item)

        if until_event is not None:
            if until_event._state != PROCESSED:
                raise SimulationError(
                    f"event queue exhausted before {until_event!r} fired"
                )
            if not until_event._ok:
                until_event.defuse()
                raise until_event.value
            return until_event._value
        if until is not None:
            self._now = deadline
        return None

    def _run_generic(self, until: float | Event | None) -> typing.Any:
        """The :meth:`run` semantics over the abstract backend interface.

        Used for sanitized runs (any backend) and for third-party
        backends; the observable simulation — pop order, clock advances,
        callback execution — is identical to the fast paths.  Sanitizer
        hooks fire just before each entry executes, exactly as the old
        inlined sanitized loops did.
        """
        backend = self._backend
        pop_next = backend.pop_next
        san = self.sanitizer

        until_event: Event | None = None
        deadline = float("inf")
        if isinstance(until, Event):
            until_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(f"run(until={deadline}) is in the past")

        try:
            while True:
                if until_event is not None and until_event._state == PROCESSED:
                    break
                entry = pop_next(deadline)
                if entry is None:
                    break
                time, priority, _, item = entry
                if san is not None:
                    san.on_execute(time, priority, item)
                self._now = time
                if type(item) is TimerHandle:
                    item._popped = True
                    item.callback()
                else:
                    item._process()

            if until_event is not None:
                if until_event._state != PROCESSED:
                    raise SimulationError(
                        f"event queue exhausted before {until_event!r} fired"
                    )
                if not until_event._ok:
                    until_event.defuse()
                    raise until_event.value
                return until_event._value
            if san is not None and until is None:
                san.on_queue_exhausted()
            if until is not None:
                self._now = deadline
            return None
        finally:
            if san is not None:
                san.on_run_exit()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Simulator t={self._now:.6g} "
            f"pending={self._backend.pending()} "
            f"backend={self._backend.name}>"
        )
