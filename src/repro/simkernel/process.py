"""Generator-based simulated processes.

A *process* is a Python generator that yields :class:`~repro.simkernel.events.Event`
objects; the kernel resumes the generator with the event's value when it
fires (or throws the event's exception into it).  A :class:`Process` is
itself an event: it succeeds with the generator's return value, so processes
can wait for each other simply by yielding them.

Interrupts follow simpy semantics: :meth:`Process.interrupt` causes an
:class:`~repro.simkernel.events.Interrupt` to be thrown into the generator at
the current simulation time, detaching it from whatever event it was
waiting on (that event stays valid and may be re-yielded later).
"""

from __future__ import annotations

import typing

from repro.errors import ProcessKilled, SimulationError
from repro.simkernel.events import (
    Event,
    Interrupt,
    PENDING,
    PRIORITY_URGENT,
    PROCESSED,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class _StartTrigger:
    """Shared successful pseudo-event that kicks off every process.

    Only the attributes :meth:`Process._resume` reads are provided; using
    one immortal instance avoids allocating a real start Event (plus its
    callback list) per spawn.
    """

    __slots__ = ()

    _ok = True
    ok = True
    value = None
    _value = None


_START = _StartTrigger()


class Process(Event):
    """A running simulated activity wrapping a generator.

    Do not instantiate directly; use :meth:`Simulator.spawn`.
    """

    __slots__ = ("generator", "_target", "_interrupts")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you forget a yield in the process function?"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target: Event | None = None
        self._interrupts: list[Interrupt] = []
        # Kick off the generator at the current time, urgently so that a
        # freshly spawned process starts before ordinary events at this
        # instant are processed.
        sim._call_soon_urgent(self._start)
        if sim.sanitizer is not None:
            sim.sanitizer.register_process(self)

    # -- public API --------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process that
        has not yet started is allowed (the interrupt is delivered at its
        first resumption point).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt = Interrupt(cause)
        self._interrupts.append(interrupt)
        if self._target is not None:
            # Detach from the waited-on event; it stays valid.
            self._target.remove_callback(self._resume)
            self._target = None
            carrier = Event(self.sim, name=f"interrupt:{self.name}")
            carrier._ok = False
            carrier._value = interrupt
            carrier._state = "triggered"
            carrier._defused = True
            carrier.callbacks.append(self._resume)
            self.sim._enqueue(carrier, PRIORITY_URGENT)
        # If _target is None the process is mid-resume or about to start; the
        # queued interrupt is delivered by _resume before the next wait.

    def kill(self) -> None:
        """Terminate the process immediately with :class:`ProcessKilled`.

        The process event *fails*, but pre-defused: a kill is an intentional
        act by the caller, not an unobserved error.
        """
        if not self.is_alive:
            return
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        self.generator.close()
        self.defuse()
        self.fail(ProcessKilled(self.name))

    def _start(self) -> None:
        """Timer callback that performs the first resumption."""
        self._resume(_START)

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the outcome of ``trigger``."""
        sim = self.sim
        generator = self.generator
        interrupts = self._interrupts
        sim._active_process = self
        self._target = None
        event: Event = trigger
        while True:
            try:
                if interrupts:
                    next_event = generator.throw(interrupts.pop(0))
                elif event._ok:
                    # _value, not the .value property: the trigger is always
                    # past PENDING here, so the property's guard is dead
                    # weight on the hottest resume path.
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                sim._active_process = None
                if self._state == PENDING:  # not already killed
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active_process = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                if self._state == PENDING:
                    self.fail(exc)
                return

            if not isinstance(next_event, Event):
                sim._active_process = None
                error = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, not an Event"
                )
                self.fail(error)
                return
            if next_event.sim is not sim:
                sim._active_process = None
                self.fail(SimulationError("yielded event belongs to another simulator"))
                return

            if interrupts:
                # A queued interrupt beats waiting: loop and deliver it now,
                # leaving next_event un-waited (the process may re-yield it).
                event = next_event
                continue
            if next_event._state == PROCESSED:
                # Already done: consume its outcome synchronously.
                event = next_event
                continue
            self._target = next_event
            next_event.callbacks.append(self._resume)
            sim._active_process = None
            return
