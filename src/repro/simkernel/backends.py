"""Pluggable scheduler backends for the simulation kernel.

The :class:`~repro.simkernel.kernel.Simulator` owns the clock and the
dispatch semantics; *where pending entries live and how the next one is
found* is delegated to a :class:`SchedulerBackend`.  Two implementations
ship:

:class:`ReferenceBackend`
    The pure-python binary heap the kernel has always used, extracted
    verbatim.  It is the semantic reference: every other backend must
    reproduce its execution order bit-for-bit.

:class:`BatchedBackend`
    An optimized backend for fleet-scale runs.  Three structures replace
    the single heap:

    * a **monotone run** — a sorted list consumed by index.  Discrete-event
      workloads schedule overwhelmingly forward in time, so most entries
      append to the tail in already-sorted order (same-instant bursts at
      one ``(time, priority)`` frontier are the extreme case: they arrive
      in sequence order and cost one ``list.append`` each, with no
      per-event sift);
    * a **near heap** for the rare out-of-order arrival inside the
      horizon (urgent same-instant wakeups, a timer armed behind the run
      tail);
    * a **far heap** for timers beyond the horizon (watchdog periods,
      rejuvenation schedules).  Far entries migrate into the run in bulk
      — one filter + sort — when the near tier drains, so cancelled far
      timers are dropped wholesale without ever touching a heap.

    Cancellation is lazy everywhere: :meth:`note_cancel` only counts, and
    dead entries are skipped on pop or removed in bulk by
    :meth:`compact` when they dominate their tier.

Determinism contract
--------------------
Backends order entries strictly by ``(time, priority, sequence)`` with the
sequence number assigned in :meth:`SchedulerBackend.schedule` call order.
Because every backend assigns sequences identically and pops the global
minimum, a simulation produces the same execution order — and therefore
bit-identical results — on any backend; only wall-clock time may differ.
``tests/simkernel/test_backends.py`` fuzzes this equivalence and the
golden experiment rows pin it end to end.

Entries are ``(time, priority, sequence, item)`` tuples, where ``item``
is an :class:`~repro.simkernel.events.Event` (or subclass) or a
:class:`~repro.simkernel.kernel.TimerHandle`.  The sequence field makes
keys unique, so tuple comparison never reaches the item.
"""

from __future__ import annotations

import heapq
import os
import typing

from repro.errors import SimulationError
from repro.simkernel.events import PRIORITY_NORMAL

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.kernel import TimerHandle

_INF = float("inf")

#: Cancelled entries trigger an automatic compaction only past this count
#: *and* once they outnumber live entries — small queues never pay.
COMPACT_MIN = 64


def _is_dead(item: typing.Any) -> bool:
    """True for a lazily-deleted (cancelled timer) entry payload."""
    return getattr(item, "_cancelled", False) is True


class SchedulerBackend:
    """The narrow interface between the kernel and its pending-entry store.

    Implementations must order entries by ``(time, priority, sequence)``
    and assign the sequence themselves, monotonically, one per
    :meth:`schedule` call — the tiebreaker every determinism guarantee in
    this codebase rests on.
    """

    __slots__ = ()

    #: Registry name (``Simulator(backend="...")`` / ``REPRO_KERNEL_BACKEND``).
    name = "abstract"

    def schedule(self, time: float, priority: int, item: typing.Any) -> None:
        """Enqueue ``item`` at ``(time, priority)``, assigning a sequence."""
        raise NotImplementedError

    def schedule_timer(self, handle: "TimerHandle") -> None:
        """Enqueue a timer handle at ``handle.time``, normal priority."""
        raise NotImplementedError

    def pop_next(self, deadline: float = _INF) -> tuple | None:
        """Remove and return the earliest live entry, or ``None``.

        Entries after ``deadline`` are left queued; lazily-cancelled
        timers encountered on the way are discarded and accounted.
        """
        raise NotImplementedError

    def peek(self) -> float:
        """Time of the earliest live entry, or ``inf`` when empty."""
        raise NotImplementedError

    def note_cancel(self, handle: "TimerHandle") -> None:
        """Account one lazily-cancelled handle still queued here."""
        raise NotImplementedError

    def compact(self) -> None:
        """Physically remove every lazily-cancelled entry."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of live (non-cancelled) queued entries."""
        raise NotImplementedError

    def storage_size(self) -> int:
        """Entries physically retained, including lazily-cancelled ones."""
        raise NotImplementedError


class ReferenceBackend(SchedulerBackend):
    """The classic single binary heap — the semantic reference.

    Extracted from the pre-backend ``Simulator`` unchanged: one
    ``heapq``-managed list, lazy deletion of cancelled timers, and a
    whole-heap compaction once cancelled entries dominate.
    """

    __slots__ = ("_cancelled", "_heap", "_seq")

    name = "reference"

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self._cancelled = 0

    def schedule(self, time: float, priority: int, item: typing.Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, item))

    def schedule_timer(self, handle: "TimerHandle") -> None:
        self._seq += 1
        heapq.heappush(
            self._heap, (handle.time, PRIORITY_NORMAL, self._seq, handle)
        )

    def pop_next(self, deadline: float = _INF) -> tuple | None:
        heap = self._heap
        while heap:
            if heap[0][0] > deadline:
                return None
            entry = heapq.heappop(heap)
            if _is_dead(entry[3]):
                self._cancelled -= 1
                continue
            return entry
        return None

    def peek(self) -> float:
        heap = self._heap
        while heap:
            if _is_dead(heap[0][3]):
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return heap[0][0]
        return _INF

    def note_cancel(self, handle: "TimerHandle") -> None:
        self._cancelled += 1
        if self._cancelled > COMPACT_MIN and self._cancelled * 2 > len(self._heap):
            self.compact()

    def compact(self) -> None:
        # In-place: the kernel's run loops hold a local reference to the list.
        self._heap[:] = [e for e in self._heap if not _is_dead(e[3])]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def pending(self) -> int:
        return len(self._heap) - self._cancelled

    def storage_size(self) -> int:
        return len(self._heap)


class BatchedBackend(SchedulerBackend):
    """Monotone-run + two-level-timer backend; see the module docstring.

    Structure invariants (all keys are ``(time, priority, sequence)``):

    * ``_run[_idx:]`` is sorted ascending; slots before ``_idx`` have
      been consumed and overwritten with ``None`` (releasing the entry
      tuple promptly — the freelists key off refcounts) until trimming
      drops the prefix;
    * ``_tail`` is the largest key ever appended to the run since it was
      last rebuilt — an upper bound on ``run[-1]`` that is valid even
      when the tail slots have been consumed and nulled;
    * ``_heap`` is a binary heap of in-horizon entries that arrived out
      of order (behind the run tail);
    * ``_far`` is a binary heap of entries with ``time >= _far_horizon``;
      the horizon only advances, so membership never needs revisiting;
    * every entry in ``_run``/``_heap`` sorts strictly below every entry
      in ``_far`` — the near tier fully drains before migration.

    The three lists are mutated in place (never rebound) so the kernel's
    inlined run loop can hold local references across compactions.
    """

    __slots__ = (
        "_cancelled",
        "_far",
        "_far_cancelled",
        "_far_horizon",
        "_heap",
        "_idx",
        "_run",
        "_seq",
        "_span",
        "_tail",
    )

    name = "batched"

    #: Width of the near-time window, in simulated seconds.  Timers due
    #: beyond ``now + span`` land in the far heap.  Purely a performance
    #: knob: any positive value yields identical execution order.  The
    #: default suits per-request cadences (sub-second event spacing);
    #: fleet-scale runs whose dominant cadence is coarse aggregation
    #: ticks may prefer a wider horizon — pass ``horizon=`` or set
    #: ``REPRO_KERNEL_HORIZON`` (see :func:`resolve_backend` and the
    #: horizon-sweep note in DESIGN.md).
    DEFAULT_SPAN = 64.0

    def __init__(
        self,
        start_time: float = 0.0,
        span: float | None = None,
        horizon: float | None = None,
    ) -> None:
        if span is not None and horizon is not None and span != horizon:
            raise SimulationError(
                f"span={span} and horizon={horizon} are the same knob "
                "spelled two ways; pass only one"
            )
        if span is None:
            span = horizon if horizon is not None else self.DEFAULT_SPAN
        if span <= 0:
            raise SimulationError(f"horizon span must be positive, got {span}")
        self._run: list[tuple] = []
        self._idx = 0
        self._tail: tuple | None = None
        self._heap: list[tuple] = []
        self._far: list[tuple] = []
        self._far_horizon = start_time + span
        self._span = span
        self._seq = 0
        self._cancelled = 0  # lazily-dead entries in _run/_heap
        self._far_cancelled = 0  # lazily-dead entries in _far

    # -- write side --------------------------------------------------------

    def schedule(self, time: float, priority: int, item: typing.Any) -> None:
        self._seq += 1
        entry = (time, priority, self._seq, item)
        if time >= self._far_horizon:
            heapq.heappush(self._far, entry)
            return
        tail = self._tail
        # Monotone tail append: comparing against the largest key ever
        # appended (consumed or not) is stricter than the sortedness of
        # the live suffix requires, but keeps the check O(1) and valid
        # after consumed slots are nulled.  The sequence field makes
        # ties impossible, so >= is exact; a "miss" here only routes the
        # entry through the near heap — order is unaffected.
        if tail is None or entry >= tail:
            self._run.append(entry)
            self._tail = entry
        else:
            heapq.heappush(self._heap, entry)

    def schedule_timer(self, handle: "TimerHandle") -> None:
        # schedule() with time=handle.time, priority=PRIORITY_NORMAL
        # inlined: fluid-sharing churn arms hundreds of thousands of
        # timers per experiment and the extra frame is measurable.
        self._seq += 1
        time = handle.time
        entry = (time, PRIORITY_NORMAL, self._seq, handle)
        if time >= self._far_horizon:
            heapq.heappush(self._far, entry)
            return
        tail = self._tail
        if tail is None or entry >= tail:
            self._run.append(entry)
            self._tail = entry
        else:
            heapq.heappush(self._heap, entry)

    # -- read side ---------------------------------------------------------

    def pop_next(self, deadline: float = _INF) -> tuple | None:
        run, heap = self._run, self._heap
        while True:
            idx = self._idx
            if idx < len(run):
                entry = run[idx]
                if heap and heap[0] < entry:
                    if heap[0][0] > deadline:
                        return None
                    entry = heapq.heappop(heap)
                elif entry[0] > deadline:
                    return None
                else:
                    run[idx] = None  # release the tuple for the freelists
                    self._idx = idx + 1
                    if self._idx > 4096 and self._idx * 2 > len(run):
                        self._trim_run()
            elif heap:
                if heap[0][0] > deadline:
                    return None
                entry = heapq.heappop(heap)
            elif self._far:
                if self._far[0][0] > deadline:
                    return None
                self._migrate()
                continue
            else:
                return None
            if _is_dead(entry[3]):
                self._cancelled -= 1
                continue
            return entry

    def peek(self) -> float:
        while True:
            run, heap = self._run, self._heap
            idx = self._idx
            while idx < len(run) and _is_dead(run[idx][3]):
                idx += 1
                self._cancelled -= 1
            self._idx = idx
            while heap and _is_dead(heap[0][3]):
                heapq.heappop(heap)
                self._cancelled -= 1
            head = _INF
            if idx < len(run):
                head = run[idx][0]
            if heap and heap[0][0] < head:
                head = heap[0][0]
            if head != _INF:
                return head
            if self._far:
                self._migrate()
                continue
            return _INF

    # -- cancellation ------------------------------------------------------

    def note_cancel(self, handle: "TimerHandle") -> None:
        # The horizon only advances, so time >= horizon <=> still in _far.
        if handle.time >= self._far_horizon:
            self._far_cancelled += 1
            if (
                self._far_cancelled > COMPACT_MIN
                and self._far_cancelled * 2 > len(self._far)
            ):
                self._compact_far()
        else:
            self._cancelled += 1
            # Near size computed inside the condition: the COMPACT_MIN
            # short-circuit spares the common low-churn cancel the len
            # arithmetic.
            if self._cancelled > COMPACT_MIN and self._cancelled * 2 > (
                len(self._run) - self._idx + len(self._heap)
            ):
                self._compact_near()

    def compact(self) -> None:
        self._compact_near()
        self._compact_far()

    # -- sizes -------------------------------------------------------------

    def pending(self) -> int:
        return (
            (len(self._run) - self._idx)
            + len(self._heap)
            + len(self._far)
            - self._cancelled
            - self._far_cancelled
        )

    def storage_size(self) -> int:
        return (len(self._run) - self._idx) + len(self._heap) + len(self._far)

    # -- internals ---------------------------------------------------------

    def _trim_run(self) -> None:
        """Drop the consumed prefix (in place: loops hold references)."""
        del self._run[: self._idx]
        self._idx = 0

    def _compact_near(self) -> None:
        run = self._run
        live = [e for e in run[self._idx :] if not _is_dead(e[3])]
        run[:] = live
        self._idx = 0
        if live:
            self._tail = live[-1]
        self._heap[:] = [e for e in self._heap if not _is_dead(e[3])]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def _compact_far(self) -> None:
        self._far[:] = [e for e in self._far if not _is_dead(e[3])]
        heapq.heapify(self._far)
        self._far_cancelled = 0

    def _migrate(self) -> None:
        """Advance the horizon and pull due far entries into the run.

        Called only when the near tier is fully drained, so the pulled
        batch *is* the new run after one bulk sort.  Cancelled far
        entries are dropped here without individual heap operations.
        """
        far = self._far
        base = far[0][0]
        if base == _INF:
            horizon = _INF
            pulled = far[:]
            del far[:]
        else:
            horizon = base + self._span
            pulled = []
            while far and far[0][0] < horizon:
                pulled.append(heapq.heappop(far))
        live = [e for e in pulled if not _is_dead(e[3])]
        self._far_cancelled -= len(pulled) - len(live)
        live.sort()
        self._run[:] = live
        self._idx = 0
        self._tail = live[-1] if live else None
        self._far_horizon = horizon


#: Name -> backend class, for ``Simulator(backend=...)`` and the
#: ``REPRO_KERNEL_BACKEND`` environment variable.
BACKENDS: dict[str, type[SchedulerBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    BatchedBackend.name: BatchedBackend,
}

DEFAULT_BACKEND = ReferenceBackend.name


def resolve_horizon(env_value: str | None = None) -> float | None:
    """The far-horizon override from ``REPRO_KERNEL_HORIZON``, if any.

    ``env_value`` defaults to the live environment variable.  Returns
    ``None`` when unset (the backend then uses its built-in default);
    raises :class:`SimulationError` for unparsable or non-positive
    values rather than silently running on a garbage horizon.
    """
    if env_value is None:
        env_value = os.environ.get("REPRO_KERNEL_HORIZON")
    if not env_value:
        return None
    try:
        horizon = float(env_value)
    except ValueError:
        raise SimulationError(
            f"REPRO_KERNEL_HORIZON={env_value!r} is not a number"
        ) from None
    if horizon <= 0:
        raise SimulationError(
            f"REPRO_KERNEL_HORIZON={env_value} must be positive"
        )
    return horizon


def resolve_backend(
    spec: "str | SchedulerBackend | type[SchedulerBackend] | None",
    start_time: float = 0.0,
    env: str | None = None,
) -> SchedulerBackend:
    """Turn a backend spec into a fresh backend instance.

    ``spec`` may be a registry name, a backend class, an already-built
    instance (which must be fresh — backends are stateful and owned by
    exactly one simulator), or ``None`` to consult ``env`` (the
    ``REPRO_KERNEL_BACKEND`` value) and fall back to the reference.

    When a :class:`BatchedBackend` is constructed here (by name or
    class), its far horizon honours ``REPRO_KERNEL_HORIZON``; an
    explicitly pre-built instance keeps whatever horizon it was built
    with.
    """
    if spec is None:
        spec = env if env else DEFAULT_BACKEND
    if isinstance(spec, str):
        try:
            cls = BACKENDS[spec]
        except KeyError:
            known = ", ".join(sorted(BACKENDS))
            raise SimulationError(
                f"unknown scheduler backend {spec!r} (known: {known})"
            ) from None
        if cls is BatchedBackend:
            return BatchedBackend(start_time=start_time, horizon=resolve_horizon())
        return cls()
    if isinstance(spec, type) and issubclass(spec, SchedulerBackend):
        if spec is BatchedBackend:
            return BatchedBackend(start_time=start_time, horizon=resolve_horizon())
        return spec()
    if isinstance(spec, SchedulerBackend):
        return spec
    raise SimulationError(
        f"backend must be a name, SchedulerBackend class or instance, "
        f"got {spec!r}"
    )
