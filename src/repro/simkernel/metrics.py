"""Metrics registry: counters, gauges and histograms for simulations.

Trace records capture *events*; metrics capture *levels and totals* —
disk queue depth, hypercall counts by type, request-latency
distributions.  Every :class:`~repro.simkernel.kernel.Simulator` carries
a :class:`MetricsRegistry` as ``sim.metrics``; components create their
instruments once (or look them up per label set — lookups are a dict
get) and bump them on the paths they already execute.

Two properties are load-bearing:

* **Zero-overhead when disabled.**  Metrics are off by default (enable
  with ``Simulator(metrics=True)`` or ``REPRO_METRICS=1``).  A disabled
  registry hands out the shared :data:`NULL` instrument whose methods
  are empty — no name validation, no label hashing, no allocation — so
  the hot paths the perf harness guards pay a single no-op call at most.
* **Zero perturbation when enabled.**  Instruments only accumulate
  Python numbers; they never schedule events, draw randomness, or touch
  component state, so experiment rows are bit-identical with metrics on
  or off (the determinism contract; pinned by the golden-rows tests).

When enabled, every counter/gauge update also appends an
``(time, value)`` sample pair, which is what the Perfetto exporter in
:mod:`repro.analysis.obs` turns into counter tracks.  Histograms keep
bucket counts only — their Prometheus exposition does not need a time
series.

Metric names form a closed registry (:data:`METRIC_SCHEMA`), mirroring
``TRACE_SCHEMA`` for trace kinds: creation validates the name and
instrument kind, and simlint rule SL008 enforces the same statically.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator


class MetricSpec(typing.NamedTuple):
    """Declared shape of one metric (see :data:`METRIC_SCHEMA`)."""

    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    unit: str = ""
    buckets: tuple[float, ...] = ()


LATENCY_BUCKETS_S = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)
"""Request-latency histogram bounds: sub-ms page-cache hits up to
multi-second outage-straddling requests (plus the implicit +Inf)."""


METRIC_SCHEMA: dict[str, MetricSpec] = {
    # hardware layer
    "disk.queue_depth": MetricSpec(
        "gauge", "In-flight transfer count per disk", "requests"
    ),
    "disk.busy_seconds": MetricSpec(
        "counter", "Cumulative disk service time", "seconds"
    ),
    "nic.tx_bytes": MetricSpec("counter", "Bytes sent on a link", "bytes"),
    "cpu.runnable": MetricSpec(
        "gauge", "Jobs sharing a CPU pool", "jobs"
    ),
    # hypervisor layer
    "vmm.hypercalls": MetricSpec(
        "counter", "Hypercalls served, labelled by type", "calls"
    ),
    "vmm.event_channel_sends": MetricSpec(
        "counter", "Event-channel notifications sent", "notifications"
    ),
    "vmm.xenstore_used_bytes": MetricSpec(
        "gauge", "Xenstore daemon heap in use (live + leaked)", "bytes"
    ),
    "vmm.xenstore_leaked_bytes": MetricSpec(
        "gauge", "Xenstore heap lost to the aging leak", "bytes"
    ),
    "vmm.heap_used_bytes": MetricSpec(
        "gauge", "VMM heap in use (live + leaked)", "bytes"
    ),
    "vmm.heap_leaked_bytes": MetricSpec(
        "gauge", "VMM heap lost to the aging leak", "bytes"
    ),
    # guest layer
    "guest.page_cache_hit_bytes": MetricSpec(
        "counter", "File-read bytes served from the page cache", "bytes"
    ),
    "guest.page_cache_miss_bytes": MetricSpec(
        "counter", "File-read bytes that went to disk", "bytes"
    ),
    "guest.tcp_retransmits": MetricSpec(
        "counter", "TCP probe retransmissions while a peer was down", "probes"
    ),
    # workload layer
    "httperf.request_latency": MetricSpec(
        "histogram",
        "End-to-end HTTP request latency",
        "seconds",
        LATENCY_BUCKETS_S,
    ),
    "httperf.errors": MetricSpec(
        "counter", "HTTP requests that exhausted their retries", "requests"
    ),
    "fluid.completed_requests": MetricSpec(
        "counter", "Fluid-model request completions (fractional)", "requests"
    ),
    "fluid.failed_requests": MetricSpec(
        "counter", "Fluid-model failed requests while unreachable", "requests"
    ),
    # fleet tier: measured per-row SLIs published by run_fleet_shard so a
    # merged telemetry bundle carries exactly the values a FleetReport
    # reports (the zero-deviation agreement obs-check asserts)
    "fleet.downtime_seconds": MetricSpec(
        "gauge", "Measured workload downtime over the observation window",
        "seconds",
    ),
    "fleet.availability": MetricSpec(
        "gauge", "Measured workload availability over the observation window",
        "ratio",
    ),
}
"""The registered metric names — the only ones an enabled registry will
instantiate.  SL008 rejects unregistered literal names statically."""


class _NullInstrument:
    """Shared do-nothing instrument handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL = _NullInstrument()
"""The disabled-path singleton; all no-op, safe to share everywhere."""


class Counter:
    """Monotonic accumulator with an update-time sample series."""

    __slots__ = ("name", "labels", "value", "_sim", "series_times", "series_values")

    def __init__(self, sim: "Simulator", name: str, labels: dict[str, str]) -> None:
        self._sim = sim
        self.name = name
        self.labels = labels
        self.value: float = 0
        self.series_times: list[float] = []
        self.series_values: list[float] = []

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (>= 0) and record an ``(now, total)`` sample."""
        if amount < 0:
            raise SimulationError(f"counter {self.name} decremented by {amount}")
        self.value += amount
        self.series_times.append(self._sim._now)
        self.series_values.append(self.value)


class Gauge:
    """Last-write-wins level with an update-time sample series."""

    __slots__ = ("name", "labels", "value", "_sim", "series_times", "series_values")

    def __init__(self, sim: "Simulator", name: str, labels: dict[str, str]) -> None:
        self._sim = sim
        self.name = name
        self.labels = labels
        self.value: float = 0
        self.series_times: list[float] = []
        self.series_values: list[float] = []

    def set(self, value: float) -> None:
        """Overwrite the level and record an ``(now, value)`` sample."""
        self.value = value
        self.series_times.append(self._sim._now)
        self.series_values.append(value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` bounds)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        labels: dict[str, str],
        bounds: tuple[float, ...],
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)  # non-cumulative per bound
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its (non-cumulative) bucket."""
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        # beyond the last bound: lands only in the implicit +Inf bucket

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, +Inf last (== ``count``)."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


Instrument = typing.Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """Per-simulator instrument registry; see the module docstring.

    Instruments are keyed by ``(name, sorted labels)`` so repeated
    factory calls (e.g. ``vmm.hypercalls`` looked up per hypercall type)
    return the same object.
    """

    __slots__ = ("_sim", "enabled", "_instruments")

    def __init__(self, sim: "Simulator", enabled: bool) -> None:
        self._sim = sim
        self.enabled = enabled
        self._instruments: dict[
            tuple[str, tuple[tuple[str, str], ...]], Instrument
        ] = {}

    # -- instrument factories ----------------------------------------------------

    def counter(self, name: str, **labels: str) -> "Counter | _NullInstrument":
        """The counter for ``(name, labels)`` (:data:`NULL` when disabled)."""
        if not self.enabled:
            return NULL
        return self._get(name, "counter", labels)

    def gauge(self, name: str, **labels: str) -> "Gauge | _NullInstrument":
        """The gauge for ``(name, labels)`` (:data:`NULL` when disabled)."""
        if not self.enabled:
            return NULL
        return self._get(name, "gauge", labels)

    def histogram(self, name: str, **labels: str) -> "Histogram | _NullInstrument":
        """The histogram for ``(name, labels)`` (:data:`NULL` when disabled)."""
        if not self.enabled:
            return NULL
        return self._get(name, "histogram", labels)

    def _get(self, name: str, kind: str, labels: dict[str, str]) -> Instrument:
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is not None:
            return instrument
        spec = METRIC_SCHEMA.get(name)
        if spec is None:
            raise SimulationError(
                f"metric {name!r} is not registered in METRIC_SCHEMA"
            )
        if spec.kind != kind:
            raise SimulationError(
                f"metric {name!r} is declared a {spec.kind}, requested as {kind}"
            )
        if kind == "counter":
            instrument = Counter(self._sim, name, dict(labels))
        elif kind == "gauge":
            instrument = Gauge(self._sim, name, dict(labels))
        else:
            instrument = Histogram(self._sim, name, dict(labels), spec.buckets)
        self._instruments[key] = instrument
        return instrument

    # -- inspection ---------------------------------------------------------------

    def instruments(self) -> list[Instrument]:
        """All live instruments, ordered by (name, labels) for determinism."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> dict[str, list[dict[str, typing.Any]]]:
        """Plain-data dump: name -> per-label-set sample dicts.

        JSON-friendly and picklable, so it can travel through the
        parallel sweep engine's content-addressed cache inside a
        :class:`~repro.scenario.runner.ScenarioReport`.
        """
        out: dict[str, list[dict[str, typing.Any]]] = {}
        for instrument in self.instruments():
            entry: dict[str, typing.Any] = {"labels": dict(instrument.labels)}
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
                # the +Inf bound travels as the Prometheus string "+Inf"
                # so snapshots stay strict-JSON (json's Infinity is not)
                entry["buckets"] = [
                    ["+Inf" if le == float("inf") else le, n]
                    for le, n in instrument.cumulative_buckets()
                ]
            else:
                entry["value"] = instrument.value
            out.setdefault(instrument.name, []).append(entry)
        return out

    def series_snapshot(self) -> dict[str, list[dict[str, typing.Any]]]:
        """Like :meth:`snapshot` but with full sample series.

        Counter/gauge entries additionally carry their ``(time, value)``
        sample series as parallel ``times``/``values`` lists; histogram
        entries are identical to :meth:`snapshot`'s (they keep no series).
        This is the per-shard telemetry blob format: plain data, strict
        JSON, deterministic order — what :mod:`repro.obs` merges across
        shards into fleet-wide Perfetto/Prometheus documents.
        """
        out: dict[str, list[dict[str, typing.Any]]] = {}
        for instrument in self.instruments():
            entry: dict[str, typing.Any] = {"labels": dict(instrument.labels)}
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
                entry["buckets"] = [
                    ["+Inf" if le == float("inf") else le, n]
                    for le, n in instrument.cumulative_buckets()
                ]
            else:
                entry["value"] = instrument.value
                entry["times"] = list(instrument.series_times)
                entry["values"] = list(instrument.series_values)
            out.setdefault(instrument.name, []).append(entry)
        return out
