"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-scheduling world view: an
:class:`Event` is a one-shot occurrence with an outcome (a value or an
exception).  Processes (see :mod:`repro.simkernel.process`) are generators
that ``yield`` events to wait for them.

Events move through three states:

``PENDING``
    Created but not yet triggered; waiting for someone to call
    :meth:`Event.succeed` or :meth:`Event.fail`.
``TRIGGERED``
    An outcome has been decided and the event is queued for callback
    processing by the simulator.
``PROCESSED``
    Callbacks have run; the outcome is final and readable.

A failed event whose exception nobody observed would silently swallow an
error, so the simulator raises it out of :meth:`Simulator.run` unless the
event was explicitly :meth:`Event.defuse`-d.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.kernel import Simulator

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"

# Scheduling priorities: lower runs first at equal simulation times.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

Callback = typing.Callable[["Event"], None]


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.simkernel.kernel.Simulator`.
    name:
        Optional label used in ``repr`` and traces.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, sim: "Simulator", name: str | None = None) -> None:
        self.sim = sim
        self.name = name
        self.callbacks: list[Callback] = []
        self._value: typing.Any = None
        self._ok: bool | None = None
        self._state = PENDING
        self._defused = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once an outcome has been decided."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run and the outcome is final."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has no outcome yet")
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The event's outcome value (or exception object if it failed)."""
        if self._state == PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure outcome no longer needs an observer."""
        return self._defused

    # -- outcome ----------------------------------------------------------

    def succeed(self, value: typing.Any = None) -> "Event":
        """Decide a successful outcome and queue callback processing."""
        if self._state != PENDING:
            self._note_double_trigger("succeed")
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        # sim._schedule is the backend's bound schedule() — one call,
        # no Simulator._enqueue hop; succeed() runs once per completed
        # unit of simulated work, everywhere.
        sim = self.sim
        sim._schedule(sim._now, PRIORITY_NORMAL, self)
        return self

    def succeed_at(self, time: float, value: typing.Any = None) -> "Event":
        """Decide a successful outcome now, delivering it at ``time``.

        Equivalent to arming a timer whose callback calls :meth:`succeed`
        at ``time``, minus the timer: the event is enqueued directly at
        the deadline, the same way :class:`Timeout` schedules itself.
        Fixed-latency completions (e.g. NIC wire delay after the
        bandwidth share is paid) use this on their hot path.
        """
        if self._state != PENDING:
            self._note_double_trigger("succeed_at")
            raise SimulationError(f"{self!r} already triggered")
        sim = self.sim
        if time < sim._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={sim._now}"
            )
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        sim._schedule(time, PRIORITY_NORMAL, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Decide a failure outcome and queue callback processing."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._state != PENDING:
            self._note_double_trigger("fail")
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        sim = self.sim
        sim._schedule(sim._now, PRIORITY_NORMAL, self)
        return self

    def trigger_from(self, other: "Event") -> None:
        """Adopt the (already decided) outcome of ``other``."""
        if not other.triggered:
            raise SimulationError(f"{other!r} has no outcome to copy")
        if other.ok:
            self.succeed(other.value)
        else:
            self.fail(other.value)

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator will not re-raise it."""
        self._defused = True

    def _note_double_trigger(self, method: str) -> None:
        """Tell the sanitizer (if any) before the already-triggered raise."""
        sanitizer = getattr(self.sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.on_double_trigger(self, method)

    # -- callbacks ---------------------------------------------------------

    def add_callback(self, callback: Callback) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately, which makes waiting on completed events race-free.
        """
        if self._state == PROCESSED:
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callback) -> None:
        """Remove a previously added callback (no-op if absent)."""
        try:
            self.callbacks.remove(callback)
        except ValueError:
            pass

    def _process(self) -> None:
        """Run callbacks; called by the simulator's event loop."""
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        elif not self._ok and not self._defused:
            # Nobody is watching a failure: surface it from Simulator.run().
            raise self._value

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        return f"<{label} {self._state} at t={self.sim.now:.6g}>"

    # Events compose with & and | like simpy's.
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: typing.Any = None,
        name: str | None = None,
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__: timeouts are the kernel's hottest
        # allocation, and the label is built lazily in __repr__.
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self._defused = False
        self.delay = delay
        # The delay check above already rules out scheduling in the past,
        # so this skips _enqueue_at's guard.
        sim._schedule(sim._now + delay, PRIORITY_NORMAL, self)

    def __repr__(self) -> str:
        label = self.name or f"Timeout({self.delay:.6g})"
        return f"<{label} {self._state} at t={self.sim.now:.6g}>"


class Condition(Event):
    """Base for events that fire when some of several events have fired.

    The condition's value is a dict mapping each *fired* constituent event
    to its value, in firing order (insertion-ordered dict).
    """

    __slots__ = ("events", "_matched")

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._matched: dict[Event, typing.Any] = {}
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if self._check(0, len(self.events)):
            self.succeed(dict(self._matched))
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _check(self, fired: int, total: int) -> bool:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._matched[event] = event.value
        if self._check(len(self._matched), len(self.events)):
            self.succeed(dict(self._matched))


class AllOf(Condition):
    """Fires when all constituent events have fired successfully."""

    __slots__ = ()

    def _check(self, fired: int, total: int) -> bool:
        return fired == total


class AnyOf(Condition):
    """Fires when at least one constituent event has fired successfully."""

    __slots__ = ()

    def _check(self, fired: int, total: int) -> bool:
        return fired >= 1 or total == 0


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    ``cause`` carries arbitrary context from the interrupter (e.g. the
    suspend request that preempted a service loop).
    """

    @property
    def cause(self) -> typing.Any:
        return self.args[0] if self.args else None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
