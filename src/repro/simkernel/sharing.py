"""Fluid-flow processor-sharing pools.

A :class:`SharedPool` models a resource whose total capacity is divided
*simultaneously* among all active jobs — the right model for CPU cores
executing many runnable vCPUs, or a bus shared by several DMA streams.
Unlike :class:`~repro.simkernel.resources.Resource`, jobs do not queue: all
active jobs progress at once, each at::

    rate = min(per_job_cap, total_capacity / active_jobs)

which for CPU means "a single-threaded boot cannot use more than one core,
and with more runnable contexts than cores everyone slows down equally" —
exactly the contention behaviour that makes parallel guest boot time grow
with the number of VMs in the paper's Figure 5.

The implementation keeps per-job *remaining work* and, whenever membership
changes, advances everyone's progress and reschedules the single pending
completion timer.  This is exact for piecewise-constant rates (no numerical
integration error beyond float arithmetic).
"""

from __future__ import annotations

import itertools
import typing
from repro.errors import SimulationError
from repro.simkernel.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator, TimerHandle

_EPSILON = 1e-9


class _Job:
    __slots__ = ("job_id", "remaining", "event", "weight", "cap")

    def __init__(
        self,
        job_id: int,
        work: float,
        event: Event,
        weight: float,
        cap: float | None,
    ) -> None:
        self.job_id = job_id
        self.remaining = work
        self.event = event
        self.weight = weight
        self.cap = cap


class SharedPool:
    """Capacity shared fluidly among active jobs, with a per-job cap.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Total work units per second the pool can deliver (e.g. number of
        CPU cores when work is measured in core-seconds, or bytes/second
        when work is bytes).
    per_job_cap:
        Maximum rate a single job can consume (e.g. ``1.0`` core for a
        single-threaded job).  ``None`` means a job may use the whole pool.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: float,
        per_job_cap: float | None = 1.0,
        name: str = "pool",
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if per_job_cap is not None and per_job_cap <= 0:
            raise SimulationError(f"per_job_cap must be positive, got {per_job_cap}")
        self.sim = sim
        self.capacity = float(capacity)
        self.per_job_cap = per_job_cap
        self.name = name
        self._work_name = "work:" + name
        self._jobs: dict[int, _Job] = {}
        self._ids = itertools.count(1)
        self._last_update = sim.now
        self._timer: "TimerHandle | None" = None
        self._total_weight = 0.0
        """Sum of active jobs' weights, recomputed on membership change so
        the per-event hot paths need no per-call ``sum()``."""
        self._nonunit_jobs = 0
        """How many active jobs have weight != 1.0 — when zero (the common
        case) the total weight is exactly ``len(self._jobs)``."""
        self.on_jobs_change: typing.Callable[[int], None] | None = None
        """Observer called with ``active_jobs`` after every membership
        change (submit, completion, cancel, drain).  Synchronous and
        schedule-neutral: it must not submit work or touch the event
        queue.  The CPU pool uses it to keep its runnable-jobs gauge
        honest on job *completion*, not just submission."""

    # -- public API ----------------------------------------------------------

    def _notify(self) -> None:
        if self.on_jobs_change is not None:
            self.on_jobs_change(len(self._jobs))

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently consuming capacity."""
        return len(self._jobs)

    def current_rate(self) -> float:
        """Per-job progress rate right now (0 if idle)."""
        return self._rate(len(self._jobs)) if self._jobs else 0.0

    def execute(
        self, work: float, weight: float = 1.0, cap: float | None = None
    ) -> Event:
        """Submit ``work`` units; the returned event fires on completion.

        ``weight`` scales this job's share relative to others (default
        equal shares); ``cap`` further limits this job's rate (e.g. a
        scheduler cap of half a core), on top of the pool's global
        ``per_job_cap``.  Zero work completes immediately (at this
        instant, via the normal event queue, preserving determinism).
        """
        if work < 0:
            raise SimulationError(f"negative work {work!r}")
        if weight <= 0:
            raise SimulationError(f"weight must be positive, got {weight}")
        if cap is not None and cap <= 0:
            raise SimulationError(f"cap must be positive, got {cap}")
        event = Event(self.sim, name=self._work_name)
        if work == 0:
            event.succeed()
            return event
        jobs = self._jobs
        if not jobs and self._timer is None:
            # Empty-pool fast path (roughly half of all submissions in the
            # request-serving workloads): there is nothing to advance or
            # reschedule, the sole job's rate is known immediately.
            sim = self.sim
            now = sim._now
            self._last_update = now
            job = _Job(next(self._ids), float(work), event, float(weight), cap)
            jobs[job.job_id] = job
            if job.weight != 1.0:
                self._nonunit_jobs += 1
            self._total_weight = job.weight
            self._notify()
            share = self.capacity
            if self.per_job_cap is not None and share > self.per_job_cap:
                share = self.per_job_cap
            if cap is not None and share > cap:
                share = cap
            dt = job.remaining / share
            deadline = now + dt
            if deadline > now:
                self._timer = sim.call_at(deadline, self._on_timer)
            else:
                self._reschedule()
            return event
        per_job_cap = self.per_job_cap
        timer = self._timer
        if (
            timer is not None
            and per_job_cap is not None
            and self._nonunit_jobs == 0
            and weight == 1.0
            and self.capacity >= per_job_cap * (len(jobs) + 1)
        ):
            # Saturated-uncontended shortcut (CPU-style pools with spare
            # capacity): every job, old and new, runs at its per-job cap,
            # so existing deadlines are unaffected by the newcomer and the
            # pending timer stays valid unless the new job finishes first.
            # The share arithmetic mirrors the clamps in :meth:`_job_rate`
            # exactly, so the computed deadline is bit-identical.
            self._advance()
            job = _Job(next(self._ids), float(work), event, 1.0, cap)
            jobs[job.job_id] = job
            self._total_weight = float(len(jobs))
            self._notify()
            share = per_job_cap
            if cap is not None and share > cap:
                share = cap
            now = self.sim._now
            deadline = now + job.remaining / share
            if deadline >= timer.time and deadline > now:
                return event
            self._reschedule()
            return event
        self._advance()
        job = _Job(next(self._ids), float(work), event, float(weight), cap)
        jobs[job.job_id] = job
        if job.weight != 1.0:
            self._nonunit_jobs += 1
        self._recount_weight()
        self._notify()
        self._reschedule()
        return event

    def set_capacity(self, capacity: float) -> None:
        """Change total capacity mid-flight (e.g. a NIC degrading).

        Progress so far is charged at the old rate; active jobs continue at
        the new one.
        """
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self._advance()
        self.capacity = float(capacity)
        self._reschedule()

    def cancel(self, event: Event) -> None:
        """Abort the job whose completion event is ``event`` (if active).

        The event is failed with :class:`SimulationError`; callers that
        cancel deliberately should be waiting with try/except or not at all.
        """
        for job_id, job in list(self._jobs.items()):
            if job.event is event:
                self._advance()
                del self._jobs[job_id]
                if job.weight != 1.0:
                    self._nonunit_jobs -= 1
                self._recount_weight()
                self._notify()
                error = SimulationError(f"job cancelled on {self.name}")
                job.event.defuse()
                job.event.fail(error)
                self._reschedule()
                return

    def drain(self) -> None:
        """Cancel every active job (used when a machine loses power)."""
        self._advance()
        jobs, self._jobs = list(self._jobs.values()), {}
        self._total_weight = 0.0
        self._nonunit_jobs = 0
        self._notify()
        for job in jobs:
            job.event.defuse()
            job.event.fail(SimulationError(f"{self.name} drained"))
        self._reschedule()

    # -- fluid-model internals -------------------------------------------------

    def _recount_weight(self) -> None:
        """Refresh the cached total weight after a membership change.

        All-unit-weight pools (the common case) cost O(1): a sum of 1.0s
        is exactly ``float(len(jobs))``.  Otherwise a fresh ``sum`` (not an
        incremental +=/-=) so the cached value is bit-identical to what
        recomputing on every use would give.
        """
        if self._nonunit_jobs:
            self._total_weight = sum(job.weight for job in self._jobs.values())
        else:
            self._total_weight = float(len(self._jobs))

    def _rate(self, n: int, weight: float = 1.0, total_weight: float | None = None) -> float:
        """Progress rate for one uncapped job of ``weight`` among ``n``."""
        if n == 0:
            return 0.0
        if total_weight is None:
            total_weight = self._total_weight or weight
        share = self.capacity * (weight / total_weight)
        if self.per_job_cap is not None:
            share = min(share, self.per_job_cap)
        return share

    def _job_rate(self, job: _Job, total_weight: float) -> float:
        """Progress rate of one specific job (weight share, both caps)."""
        share = self.capacity * (job.weight / total_weight)
        if self.per_job_cap is not None:
            share = min(share, self.per_job_cap)
        if job.cap is not None:
            share = min(share, job.cap)
        return share

    def _advance(self) -> None:
        """Charge elapsed wall time against every active job's work."""
        now = self.sim._now
        dt = now - self._last_update
        self._last_update = now
        jobs = self._jobs
        if dt <= 0 or not jobs:
            return
        total_weight = self._total_weight
        capacity = self.capacity
        per_job_cap = self.per_job_cap
        for job in jobs.values():
            share = capacity * (job.weight / total_weight)
            if per_job_cap is not None and share > per_job_cap:
                share = per_job_cap
            cap = job.cap
            if cap is not None and share > cap:
                share = cap
            job.remaining -= share * dt

    def _reschedule(self) -> None:
        """Re-plan the single next-completion timer after any change.

        Guards against float underflow: when a job's residual work is so
        small that ``now + remaining/rate == now`` (common once work is
        measured in bytes and rates in hundreds of MB/s), the job is
        numerically complete and finishing it *now* is the only way the
        clock can make progress.
        """
        # The pending timer is handed to rearm_timer() below so cancel +
        # re-arm flow through the backend's lazy-delete accounting (and
        # handle freelist) in one call; if no job remains it is cancelled
        # on the way out.  Deferring the cancel is order-neutral: cancels
        # take no scheduling sequence number.
        old_timer, self._timer = self._timer, None
        jobs = self._jobs
        capacity = self.capacity
        per_job_cap = self.per_job_cap
        while True:
            # One pass: collect numerically-finished jobs and find the
            # next completion among the rest.
            finished = None
            nearest = None
            nearest_dt = float("inf")
            total_weight = self._total_weight
            for job in jobs.values():
                if job.remaining <= _EPSILON:
                    if finished is None:
                        finished = [job]
                    else:
                        finished.append(job)
                    continue
                share = capacity * (job.weight / total_weight)
                if per_job_cap is not None and share > per_job_cap:
                    share = per_job_cap
                cap = job.cap
                if cap is not None and share > cap:
                    share = cap
                dt = job.remaining / share
                if dt < nearest_dt:
                    nearest_dt = dt
                    nearest = job
            if finished:
                for job in finished:
                    del jobs[job.job_id]
                    if job.weight != 1.0:
                        self._nonunit_jobs -= 1
                self._recount_weight()
                self._notify()
                for job in finished:
                    job.event.succeed()
                if jobs:
                    # Weights changed: recompute the nearest completion.
                    continue
            if nearest is None:
                if old_timer is not None:
                    old_timer.cancel()
                return
            sim = self.sim
            now = sim._now
            deadline = now + nearest_dt
            if deadline > now:
                self._timer = sim.rearm_timer(old_timer, deadline, self._on_timer)
                return
            # No representable time advance is possible: finish it now.
            nearest.remaining = 0.0

    def _on_timer(self) -> None:
        self._timer = None
        jobs = self._jobs
        if len(jobs) == 1:
            # Single-job fast path (the dominant case for bus/NIC/disk
            # style pools): the timer nearly always fires exactly when its
            # sole job completes, so charge it and finish without the
            # generic advance/reschedule double pass.  The share arithmetic
            # mirrors :meth:`_advance` operation-for-operation so the float
            # results are bit-identical.
            sim = self.sim
            now = sim._now
            dt = now - self._last_update
            self._last_update = now
            job = next(iter(jobs.values()))
            if dt > 0:
                share = self.capacity * (job.weight / self._total_weight)
                per_job_cap = self.per_job_cap
                if per_job_cap is not None and share > per_job_cap:
                    share = per_job_cap
                cap = job.cap
                if cap is not None and share > cap:
                    share = cap
                job.remaining -= share * dt
            if job.remaining <= _EPSILON:
                del jobs[job.job_id]
                if job.weight != 1.0:
                    self._nonunit_jobs -= 1
                self._recount_weight()
                self._notify()
                job.event.succeed()
                return
            self._reschedule()
            return
        self._advance()
        self._reschedule()
