"""Fluid-flow processor-sharing pools.

A :class:`SharedPool` models a resource whose total capacity is divided
*simultaneously* among all active jobs — the right model for CPU cores
executing many runnable vCPUs, or a bus shared by several DMA streams.
Unlike :class:`~repro.simkernel.resources.Resource`, jobs do not queue: all
active jobs progress at once, each at::

    rate = min(per_job_cap, total_capacity / active_jobs)

which for CPU means "a single-threaded boot cannot use more than one core,
and with more runnable contexts than cores everyone slows down equally" —
exactly the contention behaviour that makes parallel guest boot time grow
with the number of VMs in the paper's Figure 5.

The implementation keeps per-job *remaining work* and, whenever membership
changes, advances everyone's progress and reschedules the single pending
completion timer.  This is exact for piecewise-constant rates (no numerical
integration error beyond float arithmetic).
"""

from __future__ import annotations

import itertools
import typing

from repro.errors import SimulationError
from repro.simkernel.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.kernel import Simulator, TimerHandle

_EPSILON = 1e-9


class _Job:
    __slots__ = ("job_id", "remaining", "event", "weight", "cap")

    def __init__(
        self,
        job_id: int,
        work: float,
        event: Event,
        weight: float,
        cap: float | None,
    ) -> None:
        self.job_id = job_id
        self.remaining = work
        self.event = event
        self.weight = weight
        self.cap = cap


class SharedPool:
    """Capacity shared fluidly among active jobs, with a per-job cap.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Total work units per second the pool can deliver (e.g. number of
        CPU cores when work is measured in core-seconds, or bytes/second
        when work is bytes).
    per_job_cap:
        Maximum rate a single job can consume (e.g. ``1.0`` core for a
        single-threaded job).  ``None`` means a job may use the whole pool.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: float,
        per_job_cap: float | None = 1.0,
        name: str = "pool",
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if per_job_cap is not None and per_job_cap <= 0:
            raise SimulationError(f"per_job_cap must be positive, got {per_job_cap}")
        self.sim = sim
        self.capacity = float(capacity)
        self.per_job_cap = per_job_cap
        self.name = name
        self._jobs: dict[int, _Job] = {}
        self._ids = itertools.count(1)
        self._last_update = sim.now
        self._timer: "TimerHandle | None" = None

    # -- public API ----------------------------------------------------------

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently consuming capacity."""
        return len(self._jobs)

    def current_rate(self) -> float:
        """Per-job progress rate right now (0 if idle)."""
        return self._rate(len(self._jobs)) if self._jobs else 0.0

    def execute(
        self, work: float, weight: float = 1.0, cap: float | None = None
    ) -> Event:
        """Submit ``work`` units; the returned event fires on completion.

        ``weight`` scales this job's share relative to others (default
        equal shares); ``cap`` further limits this job's rate (e.g. a
        scheduler cap of half a core), on top of the pool's global
        ``per_job_cap``.  Zero work completes immediately (at this
        instant, via the normal event queue, preserving determinism).
        """
        if work < 0:
            raise SimulationError(f"negative work {work!r}")
        if weight <= 0:
            raise SimulationError(f"weight must be positive, got {weight}")
        if cap is not None and cap <= 0:
            raise SimulationError(f"cap must be positive, got {cap}")
        event = Event(self.sim, name=f"work:{self.name}")
        if work == 0:
            event.succeed()
            return event
        self._advance()
        job = _Job(next(self._ids), float(work), event, float(weight), cap)
        self._jobs[job.job_id] = job
        self._reschedule()
        return event

    def set_capacity(self, capacity: float) -> None:
        """Change total capacity mid-flight (e.g. a NIC degrading).

        Progress so far is charged at the old rate; active jobs continue at
        the new one.
        """
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self._advance()
        self.capacity = float(capacity)
        self._reschedule()

    def cancel(self, event: Event) -> None:
        """Abort the job whose completion event is ``event`` (if active).

        The event is failed with :class:`SimulationError`; callers that
        cancel deliberately should be waiting with try/except or not at all.
        """
        for job_id, job in list(self._jobs.items()):
            if job.event is event:
                self._advance()
                del self._jobs[job_id]
                error = SimulationError(f"job cancelled on {self.name}")
                job.event.defuse()
                job.event.fail(error)
                self._reschedule()
                return

    def drain(self) -> None:
        """Cancel every active job (used when a machine loses power)."""
        self._advance()
        jobs, self._jobs = list(self._jobs.values()), {}
        for job in jobs:
            job.event.defuse()
            job.event.fail(SimulationError(f"{self.name} drained"))
        self._reschedule()

    # -- fluid-model internals -------------------------------------------------

    def _rate(self, n: int, weight: float = 1.0, total_weight: float | None = None) -> float:
        """Progress rate for one uncapped job of ``weight`` among ``n``."""
        if n == 0:
            return 0.0
        if total_weight is None:
            total_weight = sum(job.weight for job in self._jobs.values()) or weight
        share = self.capacity * (weight / total_weight)
        if self.per_job_cap is not None:
            share = min(share, self.per_job_cap)
        return share

    def _job_rate(self, job: _Job, total_weight: float) -> float:
        """Progress rate of one specific job (weight share, both caps)."""
        share = self.capacity * (job.weight / total_weight)
        if self.per_job_cap is not None:
            share = min(share, self.per_job_cap)
        if job.cap is not None:
            share = min(share, job.cap)
        return share

    def _advance(self) -> None:
        """Charge elapsed wall time against every active job's work."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._jobs:
            return
        total_weight = sum(job.weight for job in self._jobs.values())
        for job in self._jobs.values():
            job.remaining -= self._job_rate(job, total_weight) * dt

    def _reschedule(self) -> None:
        """Re-plan the single next-completion timer after any change.

        Guards against float underflow: when a job's residual work is so
        small that ``now + remaining/rate == now`` (common once work is
        measured in bytes and rates in hundreds of MB/s), the job is
        numerically complete and finishing it *now* is the only way the
        clock can make progress.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        while True:
            finished = [
                job for job in self._jobs.values() if job.remaining <= _EPSILON
            ]
            for job in finished:
                del self._jobs[job.job_id]
            for job in finished:
                job.event.succeed()
            if not self._jobs:
                return
            total_weight = sum(job.weight for job in self._jobs.values())
            nearest = min(
                self._jobs.values(),
                key=lambda job: job.remaining / self._job_rate(job, total_weight),
            )
            next_dt = nearest.remaining / self._job_rate(nearest, total_weight)
            if self.sim.now + next_dt > self.sim.now:
                self._timer = self.sim.call_in(next_dt, self._on_timer)
                return
            # No representable time advance is possible: finish it now.
            nearest.remaining = 0.0

    def _on_timer(self) -> None:
        self._timer = None
        self._advance()
        self._reschedule()
