"""Opt-in runtime determinism sanitizer for the simulation kernel.

``Simulator(sanitize=True)`` (or ``REPRO_SANITIZE=1`` in the environment)
attaches a :class:`DeterminismSanitizer` that *observes* the event loop and
reports latent repeatability hazards that static analysis (simlint) cannot
see:

``unpinned-order``
    Two live ``call_at`` timers fired at the same ``(time, priority)``
    instant, armed at the same simulated moment by *different* execution
    contexts, with callbacks bound to the same receiver object.  Their
    relative order is decided solely by the insertion sequence —
    deterministic today, but any refactor that reorders the arming sites
    silently reorders the callbacks.  Pairs that cannot race are not
    reported: timers armed at different simulated times are causally
    pinned (the later armer could already observe the earlier timer),
    same-context pairs are pinned by program order, and bound methods of
    *different* receivers (e.g. per-host ``SharedPool`` timers in a
    symmetric cluster) mutate disjoint state.  Unbound callables share
    one bucket — independence cannot be proven for them.
``double-trigger``
    ``succeed()``/``fail()`` on an already-triggered event.  The kernel
    raises either way; the sanitizer records a structured report first so
    test harnesses see *which* event raced even when the exception is
    swallowed by a process.
``unfinished-process``
    After a run-to-exhaustion (``run(until=None)``) a process is still
    alive — it waits on an event nobody will ever trigger (a deadlock).
    Runs bounded by ``until=`` end with live processes by design and are
    not checked.
``undrained-waiters``
    After a run-to-exhaustion a :class:`~repro.simkernel.resources.Resource`
    still has queued requests or a :class:`~repro.simkernel.resources.Store`
    still has blocked getters.

The sanitizer never perturbs the simulation: it draws no randomness,
records nothing to the trace, and schedules nothing — a sanitized run
produces rows bit-identical to an unsanitized one.  Findings surface as
:class:`DeterminismWarning` warnings (so ``pytest.warns`` and ``-W error``
work) and accumulate on ``sim.sanitizer.reports``;
:meth:`DeterminismSanitizer.assert_clean` turns them into a hard failure
for tests.
"""

from __future__ import annotations

import typing
import warnings

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.events import Event
    from repro.simkernel.kernel import Simulator, TimerHandle


class DeterminismWarning(UserWarning):
    """A determinism hazard observed by the runtime sanitizer."""


class SanitizerReport(typing.NamedTuple):
    """One structured sanitizer finding."""

    code: str
    time: float
    message: str

    def render(self) -> str:
        """One-line human-readable form (used for warning text)."""
        return f"[{self.code}] t={self.time:.6g}: {self.message}"


_TOP_CONTEXT = ("main", "top-level")


def _callback_label(callback: typing.Any) -> str:
    """A stable, address-free description of a timer callback."""
    owner = getattr(callback, "__self__", None)
    name = getattr(callback, "__name__", repr(callback))
    if owner is None:
        return name
    label = f"{type(owner).__name__}.{name}"
    owner_name = getattr(owner, "name", None)
    if isinstance(owner_name, str):
        label += f"({owner_name})"
    return label


class DeterminismSanitizer:
    """Observes one :class:`Simulator`; see the module docstring."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.reports: list[SanitizerReport] = []
        self._processes: list[typing.Any] = []
        self._waitables: list[typing.Any] = []
        self._ctx: tuple[typing.Any, str] = _TOP_CONTEXT
        self._batch_key: tuple[float, int] | None = None
        # Entries: (receiver-identity, armed-at, arming-context, label).
        self._batch: list[
            tuple[typing.Any, float, tuple[typing.Any, str], str]
        ] = []

    # -- registration hooks (called by the kernel when sanitizing) ---------

    def note_timer(self, handle: "TimerHandle") -> None:
        """Record who armed a ``call_at`` timer, and when."""
        process = self.sim._active_process
        if process is not None:
            ctx: tuple[typing.Any, str] = (id(process), f"process {process.name!r}")
        else:
            ctx = self._ctx
        handle._san_origin = (ctx, self.sim._now)

    def register_process(self, process: typing.Any) -> None:
        """Track a Process for the end-of-run unfinished check."""
        self._processes.append(process)

    def register_waitable(self, waitable: typing.Any) -> None:
        """Track a Resource/Store for end-of-run drain checks."""
        self._waitables.append(waitable)

    # -- event-loop hooks --------------------------------------------------

    def on_execute(self, time: float, priority: int, item: typing.Any) -> None:
        """Called just before the loop executes a popped entry."""
        key = (time, priority)
        if key != self._batch_key:
            self._flush_batch()
            self._batch_key = key
        origin = getattr(item, "_san_origin", None)
        if origin is not None:
            ctx, armed_at = origin
            callback = item.callback
            owner = getattr(callback, "__self__", None)
            receiver = id(owner) if owner is not None else None
            self._batch.append(
                (receiver, armed_at, ctx, _callback_label(callback))
            )
        self._ctx = (id(item), _callback_label(getattr(item, "callback", None) or item))

    def on_double_trigger(self, event: "Event", method: str) -> None:
        """An already-triggered event was triggered again (kernel raises
        right after this hook)."""
        self._report(
            "double-trigger",
            f"{method}() on already-{event._state} event {event.name or 'event'!r}",
        )

    def on_run_exit(self) -> None:
        """A ``run()`` call returned: close the open same-instant batch."""
        self._flush_batch()
        self._batch_key = None
        self._ctx = _TOP_CONTEXT

    def on_queue_exhausted(self) -> None:
        """A ``run(until=None)`` drained the queue: deadlock checks."""
        for process in self._processes:
            if process.is_alive:
                target = process.target
                waiting = (
                    f" (waiting on {target!r})" if target is not None else ""
                )
                self._report(
                    "unfinished-process",
                    f"process {process.name!r} never finished{waiting}",
                )
        for waitable in self._waitables:
            queued = len(getattr(waitable, "_queue", ()))
            getters = len(getattr(waitable, "_getters", ()))
            if queued or getters:
                kind = type(waitable).__name__
                pending = queued or getters
                self._report(
                    "undrained-waiters",
                    f"{kind} {waitable.name!r} ended the run with "
                    f"{pending} blocked waiter(s)",
                )

    # -- reporting ---------------------------------------------------------

    def _flush_batch(self) -> None:
        batch = self._batch
        if len(batch) >= 2:
            groups: dict[
                tuple[typing.Any, float],
                list[tuple[tuple[typing.Any, str], str]],
            ] = {}
            for receiver, armed_at, ctx, label in batch:
                groups.setdefault((receiver, armed_at), []).append((ctx, label))
            for (_, armed_at), entries in groups.items():
                contexts = {ctx for ctx, _ in entries}
                if len(contexts) < 2:
                    continue
                who = " vs ".join(
                    sorted({f"{label} armed by {ctx[1]}" for ctx, label in entries})
                )
                self._report(
                    "unpinned-order",
                    f"{len(entries)} timers fired at the same instant, armed "
                    f"at t={armed_at:.6g} by independent contexts ({who}); "
                    "their order is pinned only by insertion sequence",
                )
        if batch:
            self._batch = []

    def _report(self, code: str, message: str) -> None:
        report = SanitizerReport(code, self.sim._now, message)
        self.reports.append(report)
        warnings.warn(report.render(), DeterminismWarning, stacklevel=3)

    # -- test API ----------------------------------------------------------

    def assert_clean(self) -> None:
        """Raise :class:`SimulationError` if any hazard was reported."""
        if self.reports:
            details = "\n  ".join(r.render() for r in self.reports)
            raise SimulationError(
                f"determinism sanitizer found {len(self.reports)} hazard(s):"
                f"\n  {details}"
            )
