"""Sequential file-read benchmark (Figure 8(a)).

§5.5 measures "the time needed to read a file of 512 MB" before and after
each kind of reboot, for first- and second-time accesses.  The benchmark
returns throughput in bytes/second so degradation percentages can be
computed exactly the way the paper reports them.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ReproError
from repro.guest.kernel import GuestKernel


@dataclasses.dataclass(frozen=True)
class ReadMeasurement:
    """One timed sequential read."""

    path: str
    nbytes: int
    duration: float

    @property
    def throughput(self) -> float:
        """Bytes per second."""
        if self.duration <= 0:
            raise ReproError(f"degenerate measurement of {self.path!r}")
        return self.nbytes / self.duration


def timed_read(guest: GuestKernel, path: str) -> typing.Generator:
    """Read ``path`` fully; returns a :class:`ReadMeasurement`."""
    sim = guest.sim
    started = sim.now
    nbytes = yield from guest.read_file(path)
    return ReadMeasurement(path, nbytes, sim.now - started)


def first_and_second_read(guest: GuestKernel, path: str) -> typing.Generator:
    """The paper's first-access / second-access pair."""
    first = yield from timed_read(guest, path)
    second = yield from timed_read(guest, path)
    return first, second


def degradation(before: float, after: float) -> float:
    """Fractional throughput loss, e.g. 0.91 for the paper's '91 %'."""
    if before <= 0:
        raise ReproError("before-throughput must be positive")
    return 1.0 - after / before
