"""Client-side downtime prober.

The paper measures downtime by "repeat[ing] sending packets from a client
host to the VMs in a server host" (§5.3).  :class:`PingProber` does the
same: it polls a service's reachability at a fixed interval and records
down/up transitions.  It exists alongside the exact trace-based
measurement (:mod:`repro.analysis.downtime`) so tests can confirm the two
agree to within probe quantization — i.e. that the simulated measurement
methodology matches the paper's.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ReproError
from repro.guest.services import Service
from repro.simkernel import Process, Simulator


@dataclasses.dataclass(frozen=True)
class ProbedOutage:
    """One observed outage (probe-quantized)."""

    down_at: float
    up_at: float

    @property
    def duration(self) -> float:
        return self.up_at - self.down_at


class PingProber:
    """Polls one service's reachability from the client side."""

    def __init__(
        self,
        sim: Simulator,
        lookup: typing.Callable[[], Service],
        interval_s: float = 0.5,
        name: str = "prober",
    ) -> None:
        if interval_s <= 0:
            raise ReproError("probe interval must be positive")
        self.sim = sim
        self.lookup = lookup
        self.interval_s = interval_s
        self.name = name
        self.outages: list[ProbedOutage] = []
        self._down_since: float | None = None
        self._process: Process | None = None

    def start(self) -> "PingProber":
        """Begin probing; returns self for chaining."""
        if self._process is not None:
            raise ReproError(f"{self.name} already started")
        self._process = self.sim.spawn(self._run(), name=self.name)
        return self

    def stop(self) -> None:
        """Stop probing (an open outage stays open)."""
        if self._process is not None and self._process.is_alive:
            self._process.kill()

    def _reachable(self) -> bool:
        try:
            return self.lookup().reachable
        except ReproError:
            return False  # domain currently doesn't exist (mid-reboot)

    def _run(self) -> typing.Generator:
        while True:
            reachable = self._reachable()
            if reachable and self._down_since is not None:
                self.outages.append(ProbedOutage(self._down_since, self.sim.now))
                self.sim.trace.record(
                    "probe.up", prober=self.name, downtime=self.outages[-1].duration
                )
                self._down_since = None
            elif not reachable and self._down_since is None:
                self._down_since = self.sim.now
                self.sim.trace.record("probe.down", prober=self.name)
            yield self.sim.timeout(self.interval_s)

    @property
    def currently_down(self) -> bool:
        return self._down_since is not None

    def total_downtime(self) -> float:
        """Sum of all closed outage durations."""
        return sum(o.duration for o in self.outages)

    def longest_outage(self) -> float:
        """Duration of the worst closed outage (0 if none)."""
        return max((o.duration for o in self.outages), default=0.0)
