"""Client workloads: httperf-style HTTP load, downtime probing, file reads.

These reproduce the paper's measurement methodology: windowed throughput
(Fig. 7), packet probing for downtime (§5.3), and timed first/second file
accesses (Fig. 8).
"""

from repro.workloads.fileread import (
    ReadMeasurement,
    degradation,
    first_and_second_read,
    timed_read,
)
from repro.workloads.httperf import Completion, Httperf
from repro.workloads.prober import PingProber, ProbedOutage

__all__ = [
    "Completion",
    "Httperf",
    "PingProber",
    "ProbedOutage",
    "ReadMeasurement",
    "degradation",
    "first_and_second_read",
    "timed_read",
]
