"""An httperf-like HTTP workload generator (Mosberger & Jin, as cited).

Used two ways in the paper's evaluation:

* **Figure 7**: a stream of requests against one VM's Apache while the VMM
  reboots, plotting the moving average throughput of 50 requests;
* **Figure 8(b)**: 10 concurrent client processes requesting 10 000
  512 KB files exactly once each, before and after the reboot.

The client resolves its target service *per request* through a lookup
callable, because a cold reboot replaces the service object; requests
against an unreachable or missing service count as failures and are
retried after a short back-off — which is exactly how a real client's
throughput collapses to zero during downtime and recovers after it.

Completions are stored columnar (parallel times/paths/nbytes/latency
lists), mirroring the trace engine: the serving loop allocates no
per-request object, analyses read :attr:`Httperf.completion_times`
directly, and the classic list-of-:class:`Completion` view is
materialized lazily on first access.
"""

from __future__ import annotations

import typing
from bisect import bisect_left, bisect_right

from repro.errors import ReproError, ServiceError
from repro.guest.services import Service
from repro.simkernel import Process, Simulator


class Completion:
    """One successfully served request (immutable by convention).

    A plain ``__slots__`` class: views are materialized lazily from the
    columnar store, and the frozen-dataclass ``__init__`` costs several
    times a direct store.
    """

    __slots__ = ("time", "path", "nbytes", "latency")

    def __init__(self, time: float, path: str, nbytes: int, latency: float) -> None:
        self.time = time
        self.path = path
        self.nbytes = nbytes
        self.latency = latency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Completion(time={self.time!r}, path={self.path!r}, "
            f"nbytes={self.nbytes!r}, latency={self.latency!r})"
        )


class Httperf:
    """A concurrent HTTP client against one (re-resolvable) service."""

    def __init__(
        self,
        sim: Simulator,
        lookup: typing.Callable[[], Service],
        paths: typing.Iterable[str],
        concurrency: int = 10,
        retry_interval_s: float = 0.25,
        each_path_once: bool = False,
        name: str = "httperf",
    ) -> None:
        if concurrency < 1:
            raise ReproError("concurrency must be >= 1")
        if retry_interval_s <= 0:
            raise ReproError("retry interval must be positive")
        self.sim = sim
        self.lookup = lookup
        self.name = name
        self.concurrency = concurrency
        self.retry_interval_s = retry_interval_s
        self.each_path_once = each_path_once
        self._paths = list(paths)
        if not self._paths:
            raise ReproError("httperf needs at least one path")
        self._cursor = 0
        self._stopped = False
        self._workers: list[Process] = []
        # Columnar completion log.  Times are non-decreasing: workers
        # append at the simulated instant the reply lands, and the clock
        # never runs backwards — which is what lets the window queries
        # below use bisect instead of a full scan.
        self._times: list[float] = []
        self._req_paths: list[str] = []
        self._nbytes: list[int] = []
        self._latency: list[float] = []
        self._view: list[Completion] = []
        self.failures = 0
        self._metric_latency = sim.metrics.histogram(
            "httperf.request_latency", client=name
        )
        self._metric_errors = sim.metrics.counter("httperf.errors", client=name)

    # -- control ----------------------------------------------------------------

    def start(self) -> "Httperf":
        """Launch the worker processes; returns self for chaining."""
        if self._workers:
            raise ReproError(f"{self.name} already started")
        self._workers = [
            self.sim.spawn(self._worker(), name=f"{self.name}.w{i}")
            for i in range(self.concurrency)
        ]
        return self

    def stop(self) -> None:
        """Kill all workers (pending requests are abandoned)."""
        self._stopped = True
        for worker in self._workers:
            if worker.is_alive:
                worker.kill()

    @property
    def done(self) -> bool:
        """True when every worker has finished (each-path-once mode)."""
        return bool(self._workers) and all(not w.is_alive for w in self._workers)

    def wait(self) -> typing.Any:
        """An event that fires when all workers finish."""
        return self.sim.all_of(self._workers)

    # -- the client loop -----------------------------------------------------------

    def _next_path(self) -> str | None:
        if self.each_path_once:
            if self._cursor >= len(self._paths):
                return None
            path = self._paths[self._cursor]
            self._cursor += 1
            return path
        path = self._paths[self._cursor % len(self._paths)]
        self._cursor += 1
        return path

    def _worker(self) -> typing.Generator:
        sim = self.sim
        lookup = self.lookup
        tappend = self._times.append
        pappend = self._req_paths.append
        nappend = self._nbytes.append
        lappend = self._latency.append
        while not self._stopped:
            path = self._next_path()
            if path is None:
                return
            while not self._stopped:
                issued = sim._now
                try:
                    nbytes = yield from lookup().handle_request(path=path)
                except (ServiceError, ReproError):
                    self.failures += 1
                    self._metric_errors.inc()
                    yield sim.timeout(self.retry_interval_s)
                    continue
                now = sim._now
                tappend(now)
                pappend(path)
                nappend(nbytes)
                lappend(now - issued)
                self._metric_latency.observe(now - issued)
                break

    # -- measurement -----------------------------------------------------------------

    @property
    def completions(self) -> list[Completion]:
        """The served requests as :class:`Completion` views.

        Materialized lazily from the columnar log and cached by length;
        treat the returned list as read-only.
        """
        view = self._view
        missing = len(self._times) - len(view)
        if missing:
            start = len(view)
            times, paths = self._times, self._req_paths
            nbytes, latency = self._nbytes, self._latency
            view.extend(
                Completion(times[i], paths[i], nbytes[i], latency[i])
                for i in range(start, len(times))
            )
        return view

    @property
    def completion_times(self) -> list[float]:
        """Raw non-decreasing completion timestamps (read-only)."""
        return self._times

    @property
    def bytes_served(self) -> int:
        return sum(self._nbytes)

    def _window(self, since: float, until: float) -> tuple[int, int]:
        """Index range [lo, hi) of completions with since <= time <= until."""
        return bisect_left(self._times, since), bisect_right(self._times, until)

    def mean_rate(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Mean completions/second over a window."""
        lo, hi = self._window(since, until)
        if hi - lo < 2:
            return 0.0
        span = self._times[hi - 1] - self._times[lo]
        return (hi - lo - 1) / span if span > 0 else float("inf")

    def mean_byte_rate(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Mean payload bytes/second over a window."""
        lo, hi = self._window(since, until)
        if hi - lo < 2:
            return 0.0
        span = self._times[hi - 1] - self._times[lo]
        return sum(self._nbytes[lo : hi - 1]) / span if span > 0 else float("inf")

    def throughput_timeline(self, window: int = 50) -> list[tuple[float, float]]:
        """The paper's Figure 7 series: at each completion, the average
        throughput (req/s) of the last ``window`` completions."""
        points: list[tuple[float, float]] = []
        times = self._times
        for i in range(window, len(times)):
            span = times[i] - times[i - window]
            if span > 0:
                points.append((times[i], window / span))
        return points
