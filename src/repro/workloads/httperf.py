"""An httperf-like HTTP workload generator (Mosberger & Jin, as cited).

Used two ways in the paper's evaluation:

* **Figure 7**: a stream of requests against one VM's Apache while the VMM
  reboots, plotting the moving average throughput of 50 requests;
* **Figure 8(b)**: 10 concurrent client processes requesting 10 000
  512 KB files exactly once each, before and after the reboot.

The client resolves its target service *per request* through a lookup
callable, because a cold reboot replaces the service object; requests
against an unreachable or missing service count as failures and are
retried after a short back-off — which is exactly how a real client's
throughput collapses to zero during downtime and recovers after it.

Completions are stored columnar (parallel times/paths/nbytes/latency
lists), mirroring the trace engine: the serving loop allocates no
per-request object, analyses read :attr:`Httperf.completion_times`
directly, and the classic list-of-:class:`Completion` view is
materialized lazily on first access.

Two client models live here:

* :class:`Httperf` — **exact** mode, one simulated event chain per
  request; the semantic reference.
* :class:`FluidHttperf` + :class:`FluidCoordinator` — **fluid** mode:
  ``sessions`` closed-loop clients are a single number, advanced at
  aggregation ticks by a per-simulator coordinator that solves a
  processor-sharing rate model (numpy-vectorized across clients) against
  the live hardware objects.  A million concurrent sessions is one array
  slot; cross-validated against exact mode in
  ``tests/workloads/test_fluid.py``.
"""

from __future__ import annotations

import math
import typing
from bisect import bisect_left, bisect_right

import numpy

from repro.errors import ReproError, ServiceError
from repro.guest.services import Service
from repro.simkernel import Process, Simulator


class Completion:
    """One successfully served request (immutable by convention).

    A plain ``__slots__`` class: views are materialized lazily from the
    columnar store, and the frozen-dataclass ``__init__`` costs several
    times a direct store.
    """

    __slots__ = ("time", "path", "nbytes", "latency")

    def __init__(self, time: float, path: str, nbytes: int, latency: float) -> None:
        self.time = time
        self.path = path
        self.nbytes = nbytes
        self.latency = latency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Completion(time={self.time!r}, path={self.path!r}, "
            f"nbytes={self.nbytes!r}, latency={self.latency!r})"
        )


class Httperf:
    """A concurrent HTTP client against one (re-resolvable) service."""

    def __init__(
        self,
        sim: Simulator,
        lookup: typing.Callable[[], Service],
        paths: typing.Iterable[str],
        concurrency: int = 10,
        retry_interval_s: float = 0.25,
        each_path_once: bool = False,
        name: str = "httperf",
    ) -> None:
        if concurrency < 1:
            raise ReproError("concurrency must be >= 1")
        if retry_interval_s <= 0:
            raise ReproError("retry interval must be positive")
        self.sim = sim
        self.lookup = lookup
        self.name = name
        self.concurrency = concurrency
        self.retry_interval_s = retry_interval_s
        self.each_path_once = each_path_once
        self._paths = list(paths)
        if not self._paths:
            raise ReproError("httperf needs at least one path")
        self._cursor = 0
        self._stopped = False
        self._workers: list[Process] = []
        # Columnar completion log.  Times are non-decreasing: workers
        # append at the simulated instant the reply lands, and the clock
        # never runs backwards — which is what lets the window queries
        # below use bisect instead of a full scan.
        self._times: list[float] = []
        self._req_paths: list[str] = []
        self._nbytes: list[int] = []
        self._latency: list[float] = []
        self._view: list[Completion] = []
        self.failures = 0
        self._metric_latency = sim.metrics.histogram(
            "httperf.request_latency", client=name
        )
        self._metric_errors = sim.metrics.counter("httperf.errors", client=name)

    # -- control ----------------------------------------------------------------

    def start(self) -> "Httperf":
        """Launch the worker processes; returns self for chaining."""
        if self._workers:
            raise ReproError(f"{self.name} already started")
        self._workers = [
            self.sim.spawn(self._worker(), name=f"{self.name}.w{i}")
            for i in range(self.concurrency)
        ]
        return self

    def stop(self) -> None:
        """Kill all workers (pending requests are abandoned)."""
        self._stopped = True
        for worker in self._workers:
            if worker.is_alive:
                worker.kill()

    @property
    def done(self) -> bool:
        """True when every worker has finished (each-path-once mode)."""
        return bool(self._workers) and all(not w.is_alive for w in self._workers)

    def wait(self) -> typing.Any:
        """An event that fires when all workers finish."""
        return self.sim.all_of(self._workers)

    # -- the client loop -----------------------------------------------------------

    def _next_path(self) -> str | None:
        if self.each_path_once:
            if self._cursor >= len(self._paths):
                return None
            path = self._paths[self._cursor]
            self._cursor += 1
            return path
        path = self._paths[self._cursor % len(self._paths)]
        self._cursor += 1
        return path

    def _worker(self) -> typing.Generator:
        sim = self.sim
        lookup = self.lookup
        tappend = self._times.append
        pappend = self._req_paths.append
        nappend = self._nbytes.append
        lappend = self._latency.append
        while not self._stopped:
            path = self._next_path()
            if path is None:
                return
            while not self._stopped:
                issued = sim._now
                try:
                    nbytes = yield from lookup().handle_request(path=path)
                except (ServiceError, ReproError):
                    self.failures += 1
                    self._metric_errors.inc()
                    yield sim.timeout(self.retry_interval_s)
                    continue
                now = sim._now
                tappend(now)
                pappend(path)
                nappend(nbytes)
                lappend(now - issued)
                self._metric_latency.observe(now - issued)
                break

    # -- measurement -----------------------------------------------------------------

    @property
    def completions(self) -> list[Completion]:
        """The served requests as :class:`Completion` views.

        Materialized lazily from the columnar log and cached by length;
        treat the returned list as read-only.
        """
        view = self._view
        missing = len(self._times) - len(view)
        if missing:
            start = len(view)
            times, paths = self._times, self._req_paths
            nbytes, latency = self._nbytes, self._latency
            view.extend(
                Completion(times[i], paths[i], nbytes[i], latency[i])
                for i in range(start, len(times))
            )
        return view

    @property
    def completion_times(self) -> list[float]:
        """Raw non-decreasing completion timestamps (read-only)."""
        return self._times

    @property
    def bytes_served(self) -> int:
        return sum(self._nbytes)

    def _window(self, since: float, until: float) -> tuple[int, int]:
        """Index range [lo, hi) of completions with since <= time <= until."""
        return bisect_left(self._times, since), bisect_right(self._times, until)

    def mean_rate(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Mean completions/second over a window."""
        lo, hi = self._window(since, until)
        if hi - lo < 2:
            return 0.0
        span = self._times[hi - 1] - self._times[lo]
        return (hi - lo - 1) / span if span > 0 else float("inf")

    def mean_byte_rate(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Mean payload bytes/second over a window."""
        lo, hi = self._window(since, until)
        if hi - lo < 2:
            return 0.0
        span = self._times[hi - 1] - self._times[lo]
        return sum(self._nbytes[lo : hi - 1]) / span if span > 0 else float("inf")

    def throughput_timeline(self, window: int = 50) -> list[tuple[float, float]]:
        """The paper's Figure 7 series: at each completion, the average
        throughput (req/s) of the last ``window`` completions."""
        points: list[tuple[float, float]] = []
        times = self._times
        for i in range(window, len(times)):
            span = times[i] - times[i - window]
            if span > 0:
                points.append((times[i], window / span))
        return points


# -- fluid mode --------------------------------------------------------------------

_RESOURCES = 4
"""Waterfill resource axes: CPU (core-seconds), memory bus (bytes), disk
(bytes), NIC (bytes) — the four pools one Apache request touches."""


class FluidHttperf:
    """``sessions`` closed-loop HTTP clients as one fluid quantity.

    Instead of simulating each request, the client's throughput over each
    aggregation tick is the closed-loop asymptote ``sessions / L1``
    (``L1`` = one request's unloaded latency read off the live hardware
    objects), throttled by the owning machine's resource capacities when
    several clients share it (see :meth:`FluidCoordinator._account`).
    Reachability is sampled once per tick through the same ``lookup``
    exact mode resolves per request, so downtime shows up as zero-rate
    ticks and retry-paced failures, quantized to the tick length.

    Everything is accounted in plain float rate * dt arithmetic from
    simulation state only — runs are bit-deterministic for a fixed seed,
    and identical no matter which process (or shard) hosts the client.
    """

    def __init__(
        self,
        coordinator: "FluidCoordinator",
        lookup: typing.Callable[[], Service],
        paths: typing.Iterable[str],
        sessions: int,
        retry_interval_s: float = 0.25,
        name: str = "fluid",
    ) -> None:
        if sessions < 1:
            raise ReproError("sessions must be >= 1")
        if retry_interval_s <= 0:
            raise ReproError("retry interval must be positive")
        self.coordinator = coordinator
        self.sim = coordinator.sim
        self.lookup = lookup
        self.name = name
        self.sessions = sessions
        self.retry_interval_s = retry_interval_s
        self._paths = list(paths)
        if not self._paths:
            raise ReproError("fluid httperf needs at least one path")
        self._since = self.sim.now
        # Columnar tick log: row k covers [t[k] - dt[k], t[k]].
        self._tick_t: list[float] = []
        self._tick_dt: list[float] = []
        self._tick_rate: list[float] = []
        self._tick_fail: list[float] = []
        self._tick_up: list[bool] = []
        self._completed = 0.0
        self._bytes = 0.0
        self.failures = 0.0
        self.downtime_s = 0.0
        self._warm_cursor = 0
        self._probe_ctx: tuple[typing.Any, float, float] | None = None
        self._metric_completed = self.sim.metrics.counter(
            "fluid.completed_requests", client=name
        )
        self._metric_errors = self.sim.metrics.counter(
            "fluid.failed_requests", client=name
        )
        coordinator.register(self)

    # -- per-tick model ---------------------------------------------------------

    def _probe(self) -> tuple[typing.Any, float, list[float], list[float]] | None:
        """Resolve the service and read the rate model's inputs.

        Returns ``(machine, demand, per_request_costs, capacities)`` or
        ``None`` when the service is unreachable this tick.  Costs and
        capacities are per :data:`_RESOURCES` axis.
        """
        try:
            service = self.lookup()
        except ReproError:
            return None
        guest = service.guest
        if not service.reachable or guest is None:
            return None
        try:
            machine = guest.machine
            filesystem = guest.filesystem
            page_cache = guest.page_cache
            total = 0
            cached = 0
            for path in self._paths:
                size = filesystem.size_of(path)
                total += size
                cached += min(page_cache.cached_bytes(path), size)
        except ReproError:
            return None
        if total <= 0:
            return None
        payload = total / len(self._paths)
        resident = cached / total
        cpu_s = guest.profile.services.request_cpu_s
        nic = machine.nic
        nic_bw = nic.spec.bandwidth * nic.degradation_factor
        mem_bw = machine.membus.capacity
        disk_bw = machine.disk.spec.read_bw
        mem_bytes = resident * payload
        disk_bytes = (1.0 - resident) * payload
        solo_latency = (
            cpu_s
            + mem_bytes / mem_bw
            + disk_bytes / disk_bw
            + payload / nic_bw
            + nic.spec.latency_s
        )
        self._probe_ctx = (guest, payload, resident)
        return (
            machine,
            self.sessions / solo_latency,
            [cpu_s, mem_bytes, disk_bytes, payload],
            [float(machine.cpu.cores), mem_bw, disk_bw, nic_bw],
        )

    def _warm(self, guest: typing.Any, budget_bytes: float) -> None:
        """Re-warm the page cache at the modeled miss rate.

        Exact mode's misses repopulate the cache one request at a time
        (``read_file`` inserts what it fetched from disk); mirror that by
        inserting the tick's modeled disk bytes into the corpus in cursor
        order, so a cache-cold window after a cold reboot recovers instead
        of persisting forever.
        """
        budget = int(budget_bytes)
        paths = self._paths
        filesystem = guest.filesystem
        page_cache = guest.page_cache
        for _ in range(len(paths)):
            if budget <= 0:
                return
            path = paths[self._warm_cursor % len(paths)]
            missing = filesystem.size_of(path) - page_cache.cached_bytes(path)
            if missing > 0:
                take = min(missing, budget)
                page_cache.insert(path, take)
                budget -= take
                if take < missing:
                    return
            self._warm_cursor += 1

    def _commit(self, start: float, end: float, rate: float, up: bool) -> None:
        """Account one tick interval [start, end] at a constant rate."""
        start = max(start, self._since)
        dt = end - start
        if dt <= 0:
            return
        self._tick_t.append(end)
        self._tick_dt.append(dt)
        self._tick_up.append(up)
        if up:
            self._tick_rate.append(rate)
            self._tick_fail.append(0.0)
            done = rate * dt
            self._completed += done
            context = self._probe_ctx
            if context is not None:
                guest, payload, resident = context
                self._bytes += done * payload
                if resident < 1.0:
                    self._warm(guest, done * (1.0 - resident) * payload)
            self._metric_completed.inc(done)
        else:
            fail_rate = self.sessions / self.retry_interval_s
            self._tick_rate.append(0.0)
            self._tick_fail.append(fail_rate)
            self.failures += fail_rate * dt
            self.downtime_s += dt
            self._metric_errors.inc(fail_rate * dt)

    # -- control -----------------------------------------------------------------

    def stop(self) -> None:
        """Account the final partial tick and stop the coordinator."""
        self.coordinator.finalize()

    # -- measurement -------------------------------------------------------------

    @property
    def total_completed(self) -> float:
        """Modeled request completions over the whole run (fractional)."""
        return self._completed

    @property
    def bytes_served(self) -> float:
        return self._bytes

    def _overlaps(
        self, since: float, until: float
    ) -> typing.Iterator[tuple[int, float]]:
        """(row index, overlap seconds) for ticks intersecting a window."""
        ticks = self._tick_t
        lo = bisect_left(ticks, since)
        for i in range(lo, len(ticks)):
            end = ticks[i]
            start = end - self._tick_dt[i]
            if start >= until:
                return
            overlap = min(end, until) - max(start, since)
            if overlap > 0:
                yield i, overlap

    def requests(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Modeled completions inside a window."""
        return sum(self._tick_rate[i] * ov for i, ov in self._overlaps(since, until))

    def failures_in(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Modeled failed requests inside a window."""
        return sum(self._tick_fail[i] * ov for i, ov in self._overlaps(since, until))

    def downtime(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Seconds inside a window the service was unreachable."""
        return sum(
            ov for i, ov in self._overlaps(since, until) if not self._tick_up[i]
        )

    def availability(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Reachable fraction of the accounted window (1.0 if empty)."""
        total = 0.0
        down = 0.0
        for i, overlap in self._overlaps(since, until):
            total += overlap
            if not self._tick_up[i]:
                down += overlap
        return 1.0 - down / total if total > 0 else 1.0

    def mean_rate(
        self, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Mean completions/second over a window (downtime included)."""
        total = 0.0
        done = 0.0
        for i, overlap in self._overlaps(since, until):
            total += overlap
            done += self._tick_rate[i] * overlap
        return done / total if total > 0 else 0.0

    def throughput_timeline(self) -> list[tuple[float, float]]:
        """Per-tick (end time, req/s) points — the fluid Figure 7 series."""
        return list(zip(self._tick_t, self._tick_rate))

    def window_summary(self, since: float, until: float) -> dict[str, float]:
        """The cross-validation row for one observation window."""
        return {
            "requests": self.requests(since, until),
            "failures": self.failures_in(since, until),
            "mean_rate": self.mean_rate(since, until),
            "downtime_s": self.downtime(since, until),
            "availability": self.availability(since, until),
        }


class FluidCoordinator:
    """Advances every registered :class:`FluidHttperf` at aggregation ticks.

    One per simulator.  Ticks land on the **absolute** grid (multiples of
    ``tick_s``), not at offsets from when the coordinator started: two
    simulations that build at different instants (a serial fleet vs. one
    of its shards) therefore account the same wall-aligned intervals, and
    windowed queries over a common span agree bit-for-bit.

    Each tick solves a per-machine waterfill: clients demand their
    closed-loop rate; every machine scales its residents' demands by one
    factor so no resource (CPU, memory bus, disk, NIC) exceeds capacity —
    the fluid analogue of :class:`~repro.simkernel.sharing.SharedPool`'s
    proportional sharing.  The solve is numpy-vectorized across clients;
    summation order is registration order, so results are deterministic.
    """

    def __init__(self, sim: Simulator, tick_s: float = 1.0) -> None:
        if tick_s <= 0:
            raise ReproError("fluid tick must be positive")
        self.sim = sim
        self.tick_s = tick_s
        self._clients: list[FluidHttperf] = []
        self._proc: Process | None = None
        self._last = sim.now
        self._stopped = False

    def register(self, client: FluidHttperf) -> None:
        """Add a client; starts the tick process on the first register."""
        if self._stopped:
            raise ReproError("fluid coordinator already finalized")
        self._clients.append(client)
        if self._proc is None:
            self._last = self.sim.now
            self._proc = self.sim.spawn(self._run(), name="fluid.coordinator")

    def _run(self) -> typing.Generator:
        sim = self.sim
        tick = self.tick_s
        while not self._stopped:
            target = (math.floor(sim.now / tick) + 1) * tick
            yield sim.timeout(target - sim.now)
            self._account(sim.now)

    def _account(self, until: float) -> None:
        start = self._last
        if until <= start:
            return
        self._last = until
        clients = self._clients
        count = len(clients)
        up = numpy.zeros(count, dtype=bool)
        demand = numpy.zeros(count)
        costs = numpy.zeros((_RESOURCES, count))
        machine_index = numpy.zeros(count, dtype=int)
        machine_slots: dict[int, int] = {}
        capacities: list[list[float]] = []
        for i, client in enumerate(clients):
            probe = client._probe()
            if probe is None:
                continue
            machine, client_demand, cost, capacity = probe
            slot = machine_slots.setdefault(id(machine), len(machine_slots))
            if slot == len(capacities):
                capacities.append(capacity)
            machine_index[i] = slot
            up[i] = True
            demand[i] = client_demand
            costs[:, i] = cost
        if machine_slots:
            load = numpy.zeros((_RESOURCES, len(machine_slots)))
            for axis in range(_RESOURCES):
                numpy.add.at(load[axis], machine_index, demand * costs[axis])
            capacity = numpy.array(capacities).T
            # An axis nobody stresses (fully-resident corpus: zero disk
            # bytes) has load 0; the discarded division overflows, so
            # silence it rather than special-case the mask.
            with numpy.errstate(over="ignore", divide="ignore"):
                ratio = numpy.where(
                    load > 0.0, capacity / numpy.maximum(load, 1e-300), numpy.inf
                )
            scale = numpy.minimum(ratio.min(axis=0), 1.0)
            rates = demand * scale[machine_index]
        else:
            rates = demand
        for i, client in enumerate(clients):
            client._commit(start, until, float(rates[i]), bool(up[i]))

    def finalize(self) -> None:
        """Account the trailing partial tick and stop; idempotent."""
        if self._stopped:
            return
        self._account(self.sim.now)
        self._stopped = True
        if self._proc is not None and self._proc.is_alive:
            self._proc.kill()
