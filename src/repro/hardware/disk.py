"""Rotational disk model: FIFO service with stream-switch seeks.

The disk serves requests one at a time.  Long transfers are split into
chunks (``DiskSpec.chunk_bytes``); a chunk pays the seek penalty whenever
the head was last serving a *different* stream.  Two behaviours emerge,
both load-bearing for the paper's results:

* a **single stream** runs at full sequential bandwidth (one initial seek),
  so Xen's suspend of one 11 GB VM takes ~133 s at 85 MB/s — matching
  Figure 4;
* **interleaved streams** pay a seek per chunk, so 11 VMs booting (or
  being saved) in parallel see per-stream cost ``size × (1/bw + seek/chunk)``
  — the linear slopes of Figure 5;
* **small random reads** (512 KB files after a cold reboot) are seek-bound
  at ≈37 MB/s — the 69 % web-server degradation of Figure 8(b).

When the disk is uncontended a stream is served in multi-chunk bursts to
keep simulation event counts low; this does not change timing because
consecutive chunks of one stream pay no seek anyway.
"""

from __future__ import annotations

import typing

from repro.config import DiskSpec
from repro.errors import HardwareError
from repro.simkernel import Resource, Simulator
from repro.simkernel.process import Process

_UNCONTENDED_BURST_CHUNKS = 32


class DiskStats:
    """Lifetime counters for one disk (reset survives nothing)."""

    __slots__ = ("bytes_read", "bytes_written", "seeks", "requests")

    def __init__(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0
        self.requests = 0


class Disk:
    """One physical disk with a FIFO head."""

    def __init__(self, sim: Simulator, spec: DiskSpec, name: str = "disk") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self._head = Resource(sim, capacity=1, name=f"{name}.head")
        self._last_stream: typing.Hashable = None
        self.stats = DiskStats()
        self._metric_queue = sim.metrics.gauge("disk.queue_depth", disk=name)
        self._metric_busy = sim.metrics.counter("disk.busy_seconds", disk=name)

    # -- public API --------------------------------------------------------------

    def read(self, stream: typing.Hashable, nbytes: int) -> Process:
        """Start a read transfer; yield the returned process to wait."""
        return self.transfer(stream, nbytes, op="read")

    def write(self, stream: typing.Hashable, nbytes: int) -> Process:
        """Start a write transfer; yield the returned process to wait."""
        return self.transfer(stream, nbytes, op="write")

    def transfer(
        self, stream: typing.Hashable, nbytes: int, op: str = "read"
    ) -> Process:
        """Start a transfer of ``nbytes`` attributed to ``stream``.

        ``stream`` identifies head locality: consecutive chunks of the same
        stream are sequential on the platter; switching streams seeks.
        """
        if op not in ("read", "write"):
            raise HardwareError(f"unknown disk op {op!r}")
        if nbytes < 0:
            raise HardwareError(f"negative transfer size {nbytes}")
        return self.sim.spawn(
            self._run_transfer(stream, nbytes, op),
            name=f"{self.name}.{op}:{stream}",
        )

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the head (excludes the one being served)."""
        return self._head.queued

    # -- service loop ---------------------------------------------------------------

    def _run_transfer(
        self, stream: typing.Hashable, nbytes: int, op: str
    ) -> typing.Generator:
        bandwidth = self.spec.read_bw if op == "read" else self.spec.write_bw
        remaining = nbytes
        if remaining == 0:
            return None
            yield  # pragma: no cover - keeps this a generator
        while remaining > 0:
            with self._head.request() as grant:
                yield grant
                self._metric_queue.set(self._head.queued)
                contended = self._head.queued > 0
                burst_chunks = 1 if contended else _UNCONTENDED_BURST_CHUNKS
                take = min(remaining, burst_chunks * self.spec.chunk_bytes)
                needs_seek = self._last_stream != stream
                self._last_stream = stream
                service_time = take / bandwidth
                if needs_seek:
                    service_time += self.spec.seek_s
                    self.stats.seeks += 1
                self.stats.requests += 1
                yield self.sim.timeout(service_time)
                self._metric_busy.inc(service_time)
                remaining -= take
                if op == "read":
                    self.stats.bytes_read += take
                else:
                    self.stats.bytes_written += take
        return None

    def sequential_duration(self, nbytes: int, op: str = "read") -> float:
        """Analytic time for an uncontended transfer (for tests/models)."""
        bandwidth = self.spec.read_bw if op == "read" else self.spec.write_bw
        if nbytes == 0:
            return 0.0
        return self.spec.seek_s + nbytes / bandwidth
