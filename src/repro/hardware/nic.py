"""Network interface / link model: fluid bandwidth sharing plus latency.

All concurrent transmissions share the link fluidly (TCP flows on one
gigabit port), each paying a fixed latency on top.  The link supports a
*degradation factor* used to reproduce the Xen 3.0.0 quirk the paper hits
in Figure 7: network throughput sags for ~25 s after many domains are
created simultaneously.
"""

from __future__ import annotations

from repro.config import NicSpec
from repro.errors import HardwareError
from repro.simkernel import Event, SharedPool, Simulator


class NetworkLink:
    """A shared-bandwidth link with per-transfer latency."""

    def __init__(self, sim: Simulator, spec: NicSpec, name: str = "nic") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self._pool = SharedPool(
            sim, capacity=spec.bandwidth, per_job_cap=None, name=f"{name}.bw"
        )
        self._factor = 1.0
        self._up = True
        self._tx_name = name + ".tx"
        self.bytes_sent = 0
        self._metric_tx = sim.metrics.counter("nic.tx_bytes", nic=name)

    # -- link state ----------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self._up

    @property
    def degradation_factor(self) -> float:
        return self._factor

    @property
    def active_transfers(self) -> int:
        return self._pool.active_jobs

    def set_degradation(self, factor: float) -> None:
        """Scale effective bandwidth by ``factor`` (0 < factor <= 1)."""
        if not 0 < factor <= 1:
            raise HardwareError(f"degradation factor must be in (0,1], got {factor}")
        self._factor = factor
        self._pool.set_capacity(self.spec.bandwidth * factor)

    def clear_degradation(self) -> None:
        """Restore full link bandwidth."""
        self.set_degradation(1.0)

    def bring_down(self) -> None:
        """Drop the link (host rebooting): in-flight transfers fail."""
        self._up = False
        self._pool.drain()

    def bring_up(self) -> None:
        """Restore the link after a reboot window."""
        self._up = True

    # -- transfers ---------------------------------------------------------------------

    def transmit(self, nbytes: int) -> Event:
        """Send ``nbytes``; the returned event fires at last-byte delivery.

        Fails with :class:`HardwareError` if the link is (or goes) down.
        """
        if nbytes < 0:
            raise HardwareError(f"negative transmit size {nbytes}")
        sim = self.sim
        done = Event(sim, name=self._tx_name)
        if not self._up:
            done.fail(HardwareError(f"{self.name} is down"))
            return done
        # Chain two plain callbacks instead of spawning a delivery process:
        # transmit is the hottest allocation site in the request-serving
        # experiments, and a generator process costs an extra event, a
        # start timer and three trampoline resumptions per transfer.
        latency = self.spec.latency_s

        def finish(event: Event) -> None:
            if not event._ok:
                event._defused = True
                done.fail(HardwareError(f"{self.name} transfer aborted"))
            else:
                self.bytes_sent += nbytes
                self._metric_tx.inc(nbytes)
                if latency:
                    # Deliver at last-byte time without a timer allocation.
                    done.succeed_at(sim._now + latency, nbytes)
                else:
                    done.succeed(nbytes)

        self._pool.execute(float(nbytes)).callbacks.append(finish)
        return done

    def transfer_duration(self, nbytes: int, concurrent: int = 1) -> float:
        """Analytic duration with ``concurrent`` equal sharers (for models)."""
        rate = self.spec.bandwidth * self._factor / max(concurrent, 1)
        return nbytes / rate + self.spec.latency_s
