"""CPU package model: processor-sharing across runnable contexts.

Work is measured in *core-seconds*.  Each runnable context (a booting
guest, a service handling a request, dom0's shutdown scripts) is a job in
a fluid-sharing pool capped at one core — so four cores run up to four
jobs at full speed and degrade everyone fairly beyond that.  This is the
contention that makes shutting down / booting many guests in parallel
slower per-guest (§2, §5.1).
"""

from __future__ import annotations

from repro.config import CpuSpec
from repro.errors import HardwareError
from repro.simkernel import Event, SharedPool, Simulator


class CpuPool:
    """All cores of one machine."""

    def __init__(self, sim: Simulator, spec: CpuSpec, name: str = "cpu") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self._pool = SharedPool(
            sim, capacity=float(spec.cores), per_job_cap=1.0, name=f"{name}.pool"
        )
        self._metric_runnable = sim.metrics.gauge("cpu.runnable", cpu=name)
        if sim.metrics.enabled:
            # Track membership changes both ways — a submission-only
            # gauge would stick at its last value across idle periods,
            # which is exactly what the control plane's windowed-load
            # detectors must not see.  Observer left out when metrics
            # are off so the pool's hot paths pay nothing.
            self._pool.on_jobs_change = self._metric_runnable.set

    @property
    def cores(self) -> int:
        return self.spec.cores

    @property
    def runnable(self) -> int:
        """Number of contexts currently consuming CPU."""
        return self._pool.active_jobs

    def execute(self, core_seconds: float, weight: float = 1.0) -> Event:
        """Run ``core_seconds`` of single-threaded work; event fires when done."""
        if core_seconds < 0:
            raise HardwareError(f"negative CPU work {core_seconds}")
        return self._pool.execute(core_seconds, weight=weight)

    def execute_shared(
        self, core_seconds: float, weight: float = 1.0, cap: float | None = None
    ) -> Event:
        """Weighted, optionally capped execution (credit-scheduler path)."""
        if core_seconds < 0:
            raise HardwareError(f"negative CPU work {core_seconds}")
        return self._pool.execute(core_seconds, weight=weight, cap=cap)

    def cancel(self, event: Event) -> None:
        """Abort a running job (its event fails, pre-defused)."""
        self._pool.cancel(event)

    def drain(self) -> None:
        """Fail all running jobs (machine reset)."""
        self._pool.drain()

    def busy_fraction(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        return min(1.0, self._pool.active_jobs / self.spec.cores)
