"""The physical machine: CPUs, RAM, disk, NIC, BIOS, power control.

A :class:`PhysicalMachine` assembles the hardware components around one
simulator and owns the two reboot-relevant facts of life:

* :meth:`hardware_reset` — the cold path.  DRAM contents (and with them
  the preserved-image store) are lost, and the BIOS POST charges its full
  duration before software can run again.
* :meth:`quick_reload_window` — the warm path.  No POST; DRAM, including
  the preserved store, is untouched.  The *software* cost of the reload
  (loading/jumping to the new VMM image) is charged by the VMM layer, not
  here — the machine merely doesn't get in the way.

The frame *allocator* is deliberately not owned by the machine: allocation
bookkeeping is VMM software state, so each hypervisor instance builds a
fresh :class:`~repro.memory.FrameAllocator` over ``machine.memory`` at
boot and (on the warm path) replays preserved reservations into it.
"""

from __future__ import annotations

import enum
import typing

from repro.config import DiskSpec, TimingProfile
from repro.errors import PowerError
from repro.hardware.bios import Bios
from repro.hardware.cpu import CpuPool
from repro.hardware.disk import Disk
from repro.hardware.nic import NetworkLink
from repro.memory import MachineMemory, PreservedStore
from repro.simkernel import RandomStreams, SharedPool, Simulator
from repro.units import pages


class PowerState(enum.Enum):
    RUNNING = "running"
    RESETTING = "resetting"
    OFF = "off"


class PhysicalMachine:
    """One consolidated-server box (the paper's Opteron testbed by default)."""

    def __init__(
        self,
        sim: Simulator,
        profile: TimingProfile,
        name: str = "server",
        streams: RandomStreams | None = None,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.name = name
        self.streams = streams if streams is not None else RandomStreams(0)
        self.memory = MachineMemory(pages(profile.memory.total_bytes))
        self.preserved = PreservedStore()
        self.cpu = CpuPool(sim, profile.cpu, name=f"{name}.cpu")
        self.disk = Disk(sim, profile.disk, name=f"{name}.disk")
        self.ramdisk = Disk(
            sim,
            DiskSpec(
                read_bw=profile.ramdisk.bandwidth,
                write_bw=profile.ramdisk.bandwidth,
                seek_s=profile.ramdisk.access_s,
            ),
            name=f"{name}.ramdisk",
        )
        """An i-RAM-like non-volatile RAM disk (§7 related work): fast,
        seek-free, used only by the 'ramdisk' save variant."""
        self.nic = NetworkLink(sim, profile.nic, name=f"{name}.nic")
        self.membus = SharedPool(
            sim,
            capacity=profile.memory.cached_read_bw,
            per_job_cap=None,
            name=f"{name}.membus",
        )
        """Bandwidth for reads served from the file cache (no disk)."""
        self.bios = Bios(profile.bios)
        self.power_state = PowerState.RUNNING
        self.reset_count = 0
        self.disk_store: dict[str, typing.Any] = {}
        """Data persisted *on disk* — survives every kind of reboot.  Used
        by the saved-VM baseline for ``xm save`` images."""

    # -- convenience -------------------------------------------------------------

    @property
    def installed_bytes(self) -> int:
        return self.memory.total_bytes

    def duration(self, stream_name: str, base: float) -> float:
        """A modelled duration with this profile's jitter applied."""
        return self.streams.jitter(stream_name, base, self.profile.jitter_fraction)

    def require_running(self) -> None:
        """Raise :class:`PowerError` unless the machine has power."""
        if self.power_state != PowerState.RUNNING:
            raise PowerError(
                f"{self.name} is {self.power_state.value}, not running"
            )

    # -- power paths ----------------------------------------------------------------

    def hardware_reset(self) -> typing.Generator:
        """The cold path: POST + total DRAM loss.  Yield-from a process.

        Returns the POST duration charged (for breakdown reporting).
        """
        self.require_running()
        self.power_state = PowerState.RESETTING
        self.sim.trace.record("hw.reset.start", machine=self.name)
        # Anything still running on the hardware dies with the reset.
        self.cpu.drain()
        self.nic.bring_down()
        # DRAM is not guaranteed across a reset (§3.1): contents undefined.
        self.memory.lose_contents()
        self.preserved.wipe()
        post = self.duration("bios.post", self.bios.post_duration(self.installed_bytes))
        yield self.sim.timeout(post)
        self.bios.record_post()
        self.reset_count += 1
        self.nic.bring_up()
        self.power_state = PowerState.RUNNING
        self.sim.trace.record("hw.reset.done", machine=self.name, post_s=post)
        return post

    def quick_reload_window(self) -> typing.Generator:
        """The warm path: no POST, DRAM (and preserved store) untouched.

        The brief window where no VMM runs; the NIC flaps but memory does
        not.  Software costs of the reload are charged by the VMM layer.
        """
        self.require_running()
        self.sim.trace.record("hw.quick_reload", machine=self.name)
        self.nic.bring_down()
        # Control transfer is effectively instantaneous at this layer.
        yield self.sim.timeout(0)
        self.nic.bring_up()
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PhysicalMachine {self.name} {self.power_state.value}>"
