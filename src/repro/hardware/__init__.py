"""Physical-hardware substrate: machine, CPU, disk, NIC, BIOS.

Service-time models for the components whose physics drive the paper's
results: a seek-and-bandwidth disk, a fluid-shared NIC, processor-sharing
CPUs, and a BIOS whose POST duration scales with installed memory.
"""

from repro.hardware.bios import Bios
from repro.hardware.cpu import CpuPool
from repro.hardware.disk import Disk, DiskStats
from repro.hardware.machine import PhysicalMachine, PowerState
from repro.hardware.nic import NetworkLink

__all__ = [
    "Bios",
    "CpuPool",
    "Disk",
    "DiskStats",
    "NetworkLink",
    "PhysicalMachine",
    "PowerState",
]
