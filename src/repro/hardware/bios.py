"""BIOS / firmware model: the cost of a hardware reset.

§2 singles out the hardware reset as a major downtime component: power-on
self-test includes a memory check proportional to installed RAM plus SCSI
controller initialization.  :class:`Bios` turns a machine's installed
memory into a POST duration; §5.6's measured ``reset_hw = 47 s`` falls out
of the calibrated :class:`~repro.config.BiosSpec` at 12 GB.
"""

from __future__ import annotations

from repro.config import BiosSpec


class Bios:
    """Firmware of one physical machine."""

    def __init__(self, spec: BiosSpec) -> None:
        self.spec = spec
        self.post_count = 0

    def post_duration(self, installed_bytes: int) -> float:
        """Seconds of power-on self-test for ``installed_bytes`` of RAM."""
        return self.spec.reset_duration(installed_bytes)

    def record_post(self) -> None:
        """Count a completed POST (observability for tests/experiments)."""
        self.post_count += 1
