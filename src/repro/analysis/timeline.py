"""Throughput timelines (Figures 7 and 9).

Turns a stream of request completions into time-bucketed rate series,
merges several hosts' series into a cluster total, and annotates a series
with reboot phases — everything needed to print the paper's two timeline
figures as text.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import AnalysisError

TimePoint = tuple[float, float]


def bucketize(
    completion_times: typing.Sequence[float],
    bucket_s: float,
    start: float | None = None,
    end: float | None = None,
) -> list[TimePoint]:
    """Completions -> [(bucket_start, rate per second)].

    Buckets with no completions are present with rate 0, so outages appear
    as zeros rather than gaps.
    """
    if bucket_s <= 0:
        raise AnalysisError("bucket size must be positive")
    times = sorted(completion_times)
    if start is None:
        start = times[0] if times else 0.0
    if end is None:
        end = times[-1] if times else start
    if end < start:
        raise AnalysisError("end must be >= start")
    buckets: list[TimePoint] = []
    edge = start
    index = 0
    while edge <= end:
        count = 0
        while index < len(times) and times[index] < edge + bucket_s:
            if times[index] >= edge:
                count += 1
            index += 1
        buckets.append((edge, count / bucket_s))
        edge += bucket_s
    return buckets


def sum_series(series: typing.Sequence[list[TimePoint]]) -> list[TimePoint]:
    """Pointwise sum of equally-bucketed series (the cluster total of
    Figure 9).  Series may have different lengths; missing points are 0."""
    if not series:
        return []
    longest = max(series, key=len)
    totals = []
    for i, (t, _) in enumerate(longest):
        total = 0.0
        for s in series:
            if i < len(s):
                if abs(s[i][0] - t) > 1e-6:
                    raise AnalysisError("series are not aligned")
                total += s[i][1]
        totals.append((t, total))
    return totals


def mean_rate(
    series: typing.Sequence[TimePoint],
    since: float = float("-inf"),
    until: float = float("inf"),
) -> float:
    """Average rate over the buckets inside [since, until]."""
    window = [rate for t, rate in series if since <= t <= until]
    if not window:
        raise AnalysisError("no buckets in the requested window")
    return sum(window) / len(window)


@dataclasses.dataclass(frozen=True)
class AnnotatedTimeline:
    """A rate series plus named phase intervals (Figure 7's breakdown)."""

    series: list[TimePoint]
    phases: list[tuple[str, float, float]]

    def render(self, width: int = 60, label_width: int = 8) -> str:
        """ASCII sparkline of the series with phase annotations below."""
        if not self.series:
            return "(empty timeline)"
        peak = max(rate for _, rate in self.series) or 1.0
        blocks = " ▁▂▃▄▅▆▇█"
        line = "".join(
            blocks[min(int(rate / peak * (len(blocks) - 1)), len(blocks) - 1)]
            for _, rate in self.series[:width]
        )
        t0 = self.series[0][0]
        t1 = self.series[min(len(self.series), width) - 1][0]
        out = [f"{'rate':>{label_width}} |{line}|  peak={peak:.3g}/s"]
        out.append(f"{'time':>{label_width}}  {t0:<10.4g}{'':{max(0, width - 20)}}{t1:>10.4g}")
        for name, start, end in self.phases:
            out.append(f"{'':>{label_width}}  {name}: {start:.4g} .. {end:.4g}")
        return "\n".join(out)


def zero_intervals(
    series: typing.Sequence[TimePoint], bucket_s: float
) -> list[tuple[float, float]]:
    """Maximal runs of zero-rate buckets — observed outages."""
    intervals: list[tuple[float, float]] = []
    run_start: float | None = None
    for t, rate in series:
        if rate == 0 and run_start is None:
            run_start = t
        elif rate > 0 and run_start is not None:
            intervals.append((run_start, t))
            run_start = None
    if run_start is not None and series:
        intervals.append((run_start, series[-1][0] + bucket_s))
    return intervals
