"""Exporting experiment results to CSV and JSON.

Downstream users want the reproduced series as data, not just rendered
tables.  These helpers serialize :class:`~repro.experiments.common.ExperimentResult`
comparison rows and arbitrary (x, y...) series to files, with no
third-party dependencies.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import pathlib
import typing

from repro.errors import AnalysisError


def rows_to_csv(rows: typing.Sequence[typing.Any]) -> str:
    """Serialize ComparisonRow-like objects to CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["label", "paper", "measured", "unit", "ratio", "within_tolerance"])
    for row in rows:
        writer.writerow(
            [row.label, row.paper, row.measured, row.unit, row.ratio,
             row.within_tolerance]
        )
    return out.getvalue()


def series_to_csv(
    series: typing.Mapping[str, typing.Sequence[typing.Sequence[float]]],
    x_label: str = "x",
) -> str:
    """Serialize named series of equal-x tuples to one wide CSV.

    ``series`` maps a name to a list of tuples whose first element is the
    shared x value, e.g. ``{"warm": [(1, 42.0), (3, 41.2)], ...}``.
    """
    if not series:
        raise AnalysisError("no series to export")
    xs_reference: list[float] | None = None
    for name, points in series.items():
        xs = [p[0] for p in points]
        if xs_reference is None:
            xs_reference = xs
        elif xs != xs_reference:
            raise AnalysisError(
                f"series {name!r} has a different x-axis; export separately"
            )
    if xs_reference is None:
        raise AnalysisError("no series to export")
    names = list(series)
    widths = {name: len(series[name][0]) - 1 for name in names}
    out = io.StringIO()
    writer = csv.writer(out)
    header = [x_label]
    for name in names:
        if widths[name] == 1:
            header.append(name)
        else:
            header.extend(f"{name}.{i}" for i in range(widths[name]))
    writer.writerow(header)
    for index, x in enumerate(xs_reference):
        row: list[float] = [x]
        for name in names:
            row.extend(series[name][index][1:])
        writer.writerow(row)
    return out.getvalue()


def _jsonable(value: typing.Any) -> typing.Any:
    """Best-effort conversion of experiment data to JSON-safe values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def result_to_json(result: typing.Any, include_data: bool = False) -> str:
    """Serialize an ExperimentResult to JSON text."""
    payload: dict[str, typing.Any] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "shape_reproduced": result.shape_reproduced,
        "rows": [
            {
                "label": row.label,
                "paper": row.paper,
                "measured": row.measured,
                "unit": row.unit,
                "ratio": row.ratio,
                "within_tolerance": row.within_tolerance,
            }
            for row in result.rows
        ],
    }
    if include_data:
        payload["data"] = _jsonable(result.data)
    return json.dumps(payload, indent=2, sort_keys=True)


def write_result(
    result: typing.Any,
    directory: "str | pathlib.Path",
    include_data: bool = False,
) -> list[pathlib.Path]:
    """Write ``<ID>.csv`` and ``<ID>.json`` into ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"{result.experiment_id}.csv"
    json_path = directory / f"{result.experiment_id}.json"
    csv_path.write_text(rows_to_csv(result.rows), encoding="utf-8")
    json_path.write_text(
        result_to_json(result, include_data=include_data), encoding="utf-8"
    )
    return [csv_path, json_path]
