"""The analytic downtime model of §3.2 and its §5.6 instantiation.

Given the measured linear functions

* ``reboot_vmm(n)`` — VMM reboot time with ``n`` VMs suspended/resumed,
* ``resume(n)`` — on-memory suspend + resume of ``n`` VMs,
* ``reboot_os(n)`` — shutdown + boot of ``n`` guests in parallel,
* ``reset_hw`` — the hardware reset,

the model predicts the downtime added by one VMM rejuvenation::

    d_w(n) = reboot_vmm(n) + resume(n)
    d_c(n) = reset_hw + reboot_vmm(0) + reboot_os(n) - reboot_os(1) * alpha
    r(n)   = d_c(n) - d_w(n)

The paper's instantiation gives ``r(n) = 3.9n + 60 - 17α``, positive for
every α ≤ 1 — the warm-VM reboot always wins.  :meth:`DowntimeModel.r_coefficients`
re-derives those three constants from whatever fits are supplied, so the
reproduction can compare coefficient by coefficient.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.fitting import LinearFit
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class DowntimeModel:
    """§3.2's model, parameterized by measured (or paper) fits."""

    reboot_vmm: LinearFit
    resume: LinearFit
    reboot_os: LinearFit
    reset_hw: float

    def __post_init__(self) -> None:
        if self.reset_hw < 0:
            raise AnalysisError("reset_hw must be >= 0")

    # -- the model ----------------------------------------------------------------

    def d_warm(self, n: int) -> float:
        """Downtime increase per VMM rejuvenation, warm-VM reboot."""
        self._check_n(n)
        return self.reboot_vmm(n) + self.resume(n)

    def d_cold(self, n: int, alpha: float = 0.5) -> float:
        """Downtime increase per VMM rejuvenation, cold-VM reboot."""
        self._check_n(n)
        self._check_alpha(alpha)
        return (
            self.reset_hw
            + self.reboot_vmm(0)
            + self.reboot_os(n)
            - self.reboot_os(1) * alpha
        )

    def r(self, n: int, alpha: float = 0.5) -> float:
        """Downtime reduced by using the warm-VM reboot."""
        return self.d_cold(n, alpha) - self.d_warm(n)

    def r_coefficients(self) -> tuple[float, float, float]:
        """(slope, constant, alpha_coefficient) of
        ``r(n) = slope*n + constant + alpha_coefficient*α``.

        The paper reports (3.9, 60, -17).
        """
        slope = -self.reboot_vmm.slope + self.reboot_os.slope - self.resume.slope
        constant = (
            self.reset_hw + self.reboot_os.intercept - self.resume.intercept
        )
        alpha_coefficient = -self.reboot_os.predict(1)
        return slope, constant, alpha_coefficient

    def always_positive(self, max_n: int = 64) -> bool:
        """Is the warm-VM reboot a win for every n >= 1 and α <= 1?"""
        return all(
            self.r(n, alpha) > 0
            for n in range(1, max_n + 1)
            for alpha in (0.01, 0.5, 1.0)
        )

    @staticmethod
    def _check_n(n: int) -> None:
        if n < 0:
            raise AnalysisError(f"VM count must be >= 0, got {n}")

    @staticmethod
    def _check_alpha(alpha: float) -> None:
        if not 0 < alpha <= 1:
            raise AnalysisError(f"alpha must be in (0, 1], got {alpha}")


def paper_model() -> DowntimeModel:
    """§5.6's published instantiation (for comparison with simulated)."""
    return DowntimeModel(
        reboot_vmm=LinearFit(-0.55, 43.0, 1.0),
        resume=LinearFit(0.43, -0.07, 1.0),
        reboot_os=LinearFit(3.8, 13.0, 1.0),
        reset_hw=47.0,
    )
