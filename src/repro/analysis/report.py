"""Report rendering: fixed-width tables and paper-vs-measured comparisons.

Every experiment runner produces :class:`ComparisonRow` entries; the
benchmark harness prints them and EXPERIMENTS.md records them, so the
reproduction's verdict is the same artifact everywhere.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured quantity."""

    label: str
    paper: float
    measured: float
    unit: str = "s"
    tolerance: float = 0.35
    """Relative deviation considered 'matching the paper's shape'."""

    @property
    def ratio(self) -> float:
        if self.paper == 0:
            return math.inf if self.measured else 1.0
        return self.measured / self.paper

    @property
    def within_tolerance(self) -> bool:
        if self.paper == 0:
            return abs(self.measured) < 1e-9
        return abs(self.ratio - 1.0) <= self.tolerance


def render_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[typing.Any]],
) -> str:
    """Fixed-width text table."""
    if any(len(row) != len(headers) for row in rows):
        raise AnalysisError("row width does not match headers")
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(value.rjust(width) for value, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_cell(value: typing.Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_comparison(
    title: str, rows: typing.Sequence[ComparisonRow]
) -> str:
    """The standard experiment verdict block."""
    body = render_table(
        ["quantity", "paper", "measured", "unit", "ratio", "shape ok"],
        [
            (
                row.label,
                row.paper,
                row.measured,
                row.unit,
                row.ratio,
                row.within_tolerance,
            )
            for row in rows
        ],
    )
    verdict = "SHAPE REPRODUCED" if all(r.within_tolerance for r in rows) else (
        "DEVIATIONS PRESENT"
    )
    return f"== {title} ==\n{body}\n-> {verdict}"


def all_within_tolerance(rows: typing.Iterable[ComparisonRow]) -> bool:
    """True when every comparison row matches the paper's shape."""
    return all(row.within_tolerance for row in rows)
