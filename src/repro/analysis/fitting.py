"""Least-squares line fitting for the §5.6 model extraction.

The paper fits linear functions — ``reboot_vmm(n) = -0.55n + 43`` and
friends — to its measured sweeps.  :func:`fit_line` does the same over
simulated sweeps so the reproduced coefficients can be compared term by
term.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class LinearFit:
    """``y = slope * x + intercept`` with goodness-of-fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.slope * x + self.intercept

    def __call__(self, x: float) -> float:
        return self.predict(x)

    def formatted(self, variable: str = "n", decimals: int = 2) -> str:
        """Render like the paper: ``-0.55n + 43``."""
        slope = round(self.slope, decimals)
        intercept = round(self.intercept, decimals)
        sign = "+" if intercept >= 0 else "-"
        return f"{slope:g}{variable} {sign} {abs(intercept):g}"


def fit_line(
    xs: typing.Sequence[float], ys: typing.Sequence[float]
) -> LinearFit:
    """Ordinary least squares fit of a line through (xs, ys)."""
    if len(xs) != len(ys):
        raise AnalysisError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    if len(xs) < 2:
        raise AnalysisError("need at least two points to fit a line")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.allclose(x, x[0]):
        raise AnalysisError("cannot fit a line to a single x value")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LinearFit(float(slope), float(intercept), r_squared)


def fit_constant(ys: typing.Sequence[float]) -> float:
    """Mean of repeated measurements (e.g. ``reset_hw``)."""
    if not ys:
        raise AnalysisError("need at least one measurement")
    return float(np.mean(np.asarray(ys, dtype=float)))
