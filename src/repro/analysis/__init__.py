"""Analysis utilities: downtime extraction, model fitting, timelines.

Turns trace records and phase reports into the paper's reported
quantities: Figure 6 downtimes, §5.6 fitted linear models, §3.2 downtime
algebra, Figure 7 throughput timelines, §5.3 availability.
"""

from repro.analysis.downtime import (
    DowntimeInterval,
    DowntimeSummary,
    downtime_by_domain,
    extract_downtimes,
    reboot_downtime_summary,
)
from repro.analysis.charts import bar_chart, line_plot
from repro.analysis.downtime_model import DowntimeModel, paper_model
from repro.analysis.export import (
    result_to_json,
    rows_to_csv,
    series_to_csv,
    write_result,
)
from repro.analysis.fitting import LinearFit, fit_constant, fit_line
from repro.analysis.report import (
    ComparisonRow,
    all_within_tolerance,
    render_comparison,
    render_table,
)
from repro.analysis.timeline import (
    AnnotatedTimeline,
    bucketize,
    mean_rate,
    sum_series,
    zero_intervals,
)

__all__ = [
    "AnnotatedTimeline",
    "bar_chart",
    "line_plot",
    "ComparisonRow",
    "DowntimeInterval",
    "DowntimeModel",
    "DowntimeSummary",
    "LinearFit",
    "all_within_tolerance",
    "bucketize",
    "downtime_by_domain",
    "extract_downtimes",
    "fit_constant",
    "fit_line",
    "mean_rate",
    "paper_model",
    "reboot_downtime_summary",
    "render_comparison",
    "render_table",
    "result_to_json",
    "rows_to_csv",
    "series_to_csv",
    "sum_series",
    "write_result",
    "zero_intervals",
]
