"""Analysis utilities: downtime extraction, model fitting, timelines.

Turns trace records and phase reports into the paper's reported
quantities: Figure 6 downtimes, §5.6 fitted linear models, §3.2 downtime
algebra, Figure 7 throughput timelines, §5.3 availability.
"""

from repro.analysis.downtime import (
    DowntimeInterval,
    DowntimeSummary,
    downtime_by_domain,
    extract_downtimes,
    reboot_downtime_summary,
)
from repro.analysis.charts import bar_chart, line_plot
from repro.analysis.downtime_model import DowntimeModel, paper_model
from repro.analysis.export import (
    result_to_json,
    rows_to_csv,
    series_to_csv,
    write_result,
)
from repro.analysis.fitting import LinearFit, fit_constant, fit_line
from repro.analysis.obs import (
    CriticalPath,
    CriticalPathEntry,
    SpanNode,
    SpanTree,
    build_span_tree,
    capture_simulators,
    parse_prometheus,
    perfetto_trace,
    prometheus_snapshot,
    reboot_critical_path,
    reconcile,
    render_prometheus,
    write_perfetto,
)
from repro.analysis.report import (
    ComparisonRow,
    all_within_tolerance,
    render_comparison,
    render_table,
)
from repro.analysis.timeline import (
    AnnotatedTimeline,
    bucketize,
    mean_rate,
    sum_series,
    zero_intervals,
)

__all__ = [
    "AnnotatedTimeline",
    "bar_chart",
    "line_plot",
    "ComparisonRow",
    "CriticalPath",
    "CriticalPathEntry",
    "DowntimeInterval",
    "DowntimeModel",
    "DowntimeSummary",
    "LinearFit",
    "SpanNode",
    "SpanTree",
    "all_within_tolerance",
    "bucketize",
    "build_span_tree",
    "capture_simulators",
    "downtime_by_domain",
    "extract_downtimes",
    "fit_constant",
    "fit_line",
    "mean_rate",
    "paper_model",
    "parse_prometheus",
    "perfetto_trace",
    "prometheus_snapshot",
    "reboot_critical_path",
    "reboot_downtime_summary",
    "reconcile",
    "render_comparison",
    "render_prometheus",
    "render_table",
    "result_to_json",
    "rows_to_csv",
    "series_to_csv",
    "sum_series",
    "write_perfetto",
    "write_result",
    "zero_intervals",
]
