"""Observability exports: Perfetto traces, Prometheus text, critical paths.

Three consumers of the span/metric layer live here:

* :func:`perfetto_trace` — converts a simulation's ``span.*`` records and
  metric sample series into Chrome trace-event JSON (the format Perfetto
  and ``chrome://tracing`` load): one thread track per span actor, one
  counter track per metric label set.
* :func:`prometheus_snapshot` / :func:`parse_prometheus` — a
  Prometheus-style text exposition of a
  :class:`~repro.simkernel.metrics.MetricsRegistry` (and its parser, so
  round-trip tests and downstream scrapers need no third-party client).
* :func:`reboot_critical_path` — walks a ``reboot`` span tree back into
  the per-phase breakdown of Figure 7 and :func:`reconcile` asserts that
  the span view and the strategy's
  :class:`~repro.core.strategies.RebootReport` agree — the two are
  recorded by the same ``_PhaseClock`` instants, so any drift means an
  instrumentation bug.

``python -m repro.analysis.obs`` runs a small deterministic scenario and
verifies all three against each other (the ``make obs-check`` gate),
optionally writing the Perfetto JSON and Prometheus text artifacts.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import pathlib
import sys
import typing

from repro.errors import AnalysisError
from repro.simkernel import kernel as _kernel
from repro.simkernel.metrics import METRIC_SCHEMA, Histogram, MetricsRegistry

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.strategies import RebootReport
    from repro.simkernel.kernel import Simulator
    from repro.simkernel.tracing import Tracer

_US = 1e6
"""Chrome trace-event timestamps are microseconds; the clock is seconds."""


# ---------------------------------------------------------------------------
# span-tree reconstruction
# ---------------------------------------------------------------------------

class SpanNode:
    """One span reconstructed from its ``span.begin``/``span.end`` records."""

    __slots__ = ("id", "parent_id", "name", "actor", "detail", "start", "end",
                 "children")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        actor: str,
        detail: str,
        start: float,
    ) -> None:
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.actor = actor
        self.detail = detail
        self.start = start
        self.end: float | None = None
        self.children: list[SpanNode] = []

    @property
    def closed(self) -> bool:
        """True once the matching ``span.end`` was recorded."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from begin to end; raises on a still-open span."""
        if self.end is None:
            raise AnalysisError(
                f"span {self.name!r} (id {self.id}) is still open"
            )
        return self.end - self.start

    def walk(self) -> typing.Iterator["SpanNode"]:
        """This node and every descendant, depth-first in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanNode(id={self.id}, name={self.name!r}, actor={self.actor!r},"
            f" detail={self.detail!r}, start={self.start!r}, end={self.end!r})"
        )


@dataclasses.dataclass
class SpanTree:
    """All spans of one trace: id index plus forest roots."""

    nodes: dict[int, SpanNode]
    roots: list[SpanNode]

    def find(
        self, name: str, actor: str | None = None
    ) -> list[SpanNode]:
        """All spans with the given registered name (and actor), in start
        order."""
        return [
            node
            for node in sorted(self.nodes.values(), key=lambda n: n.id)
            if node.name == name and (actor is None or node.actor == actor)
        ]


def build_span_tree(trace: "Tracer") -> SpanTree:
    """Reconstruct the span forest from ``span.begin``/``span.end`` records.

    Children are ordered by begin time (ids are allocated in begin order,
    so sorting by id is the same thing and needs no float comparisons).
    """
    nodes: dict[int, SpanNode] = {}
    roots: list[SpanNode] = []
    for record in trace.select("span."):
        if record.kind == "span.begin":
            node = SpanNode(
                record["span"],
                record["parent"],
                record["name"],
                record["actor"],
                record["detail"],
                record.time,
            )
            nodes[node.id] = node
            parent = nodes.get(node.parent_id)
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        else:  # span.end
            span_id = record["span"]
            node = nodes.get(span_id)
            if node is None:
                raise AnalysisError(f"span.end for unknown span id {span_id}")
            if node.end is not None:
                raise AnalysisError(f"span id {span_id} ended twice")
            node.end = record.time
    return SpanTree(nodes, roots)


# ---------------------------------------------------------------------------
# Perfetto / Chrome trace-event export
# ---------------------------------------------------------------------------

def perfetto_trace(
    trace: "Tracer", metrics: MetricsRegistry | None = None
) -> dict[str, typing.Any]:
    """Chrome trace-event JSON for a simulation's spans and metrics.

    Spans become ``"X"`` complete events on one thread track per actor
    (pid 1); counter/gauge sample series become ``"C"`` counter events
    (pid 2).  A span still open at export time is emitted with its
    duration truncated at the last ``span.begin``/``span.end`` time and
    flagged ``args.open``.  The result is strict JSON (no NaN/Infinity)
    and loads directly in https://ui.perfetto.dev.
    """
    tree = build_span_tree(trace)
    events: list[dict[str, typing.Any]] = [
        {
            "ph": "M", "pid": 1, "name": "process_name",
            "args": {"name": "repro-sim spans"},
        },
    ]
    actors = sorted({node.actor for node in tree.nodes.values()})
    tids = {actor: tid for tid, actor in enumerate(actors, start=1)}
    for actor, tid in tids.items():
        events.append(
            {
                "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                "args": {"name": actor},
            }
        )
    horizon = max(
        (n.end if n.end is not None else n.start for n in tree.nodes.values()),
        default=0.0,
    )
    for node in sorted(tree.nodes.values(), key=lambda n: n.id):
        end = node.end if node.end is not None else horizon
        args: dict[str, typing.Any] = {
            "span": node.id,
            "parent": node.parent_id,
            "detail": node.detail,
        }
        if node.end is None:
            args["open"] = True
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids[node.actor],
                "ts": node.start * _US,
                "dur": (end - node.start) * _US,
                "name": f"{node.name}:{node.detail}" if node.detail else node.name,
                "args": args,
            }
        )
    if metrics is not None and metrics.enabled:
        events.append(
            {
                "ph": "M", "pid": 2, "name": "process_name",
                "args": {"name": "repro-sim metrics"},
            }
        )
        for instrument in metrics.instruments():
            if isinstance(instrument, Histogram):
                continue  # no time series; exposed via Prometheus text
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(instrument.labels.items())
            )
            track = (
                f"{instrument.name}{{{label_text}}}"
                if label_text
                else instrument.name
            )
            for t, v in zip(
                instrument.series_times, instrument.series_values
            ):
                events.append(
                    {
                        "ph": "C", "pid": 2, "ts": t * _US,
                        "name": track, "args": {"value": v},
                    }
                )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_perfetto(
    path: "str | pathlib.Path",
    trace: "Tracer",
    metrics: MetricsRegistry | None = None,
) -> pathlib.Path:
    """Serialize :func:`perfetto_trace` to ``path`` (strict JSON)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(perfetto_trace(trace, metrics), fh, allow_nan=False)
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """``disk.queue_depth`` -> ``repro_disk_queue_depth``."""
    return "repro_" + name.replace(".", "_")


def _prom_labels(labels: typing.Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(
            k, str(v).replace("\\", r"\\").replace('"', r"\"")
        )
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_labels(
    labels: typing.Mapping[str, str], extra: typing.Mapping[str, str]
) -> dict[str, str]:
    merged = dict(labels)
    merged.update(extra)
    return merged


def render_prometheus(
    snapshot: typing.Mapping[str, list[dict[str, typing.Any]]]
) -> str:
    """Prometheus text exposition of a registry *snapshot* (the plain-data
    form that travels inside a ScenarioReport).

    Counters get the conventional ``_total`` suffix; histograms expand to
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` with cumulative buckets.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        spec = METRIC_SCHEMA.get(name)
        if spec is None:
            raise AnalysisError(f"snapshot holds unregistered metric {name!r}")
        base = _prom_name(name)
        sample_name = base + ("_total" if spec.kind == "counter" else "")
        lines.append(f"# HELP {base} {spec.help}")
        lines.append(f"# TYPE {base} {spec.kind}")
        for entry in snapshot[name]:
            labels = entry["labels"]
            if spec.kind == "histogram":
                for le, count in entry["buckets"]:
                    le_text = le if le == "+Inf" else repr(float(le))
                    lines.append(
                        f"{base}_bucket"
                        f"{_prom_labels(_merge_labels(labels, {'le': le_text}))}"
                        f" {count}"
                    )
                lines.append(f"{base}_sum{_prom_labels(labels)} {entry['sum']!r}")
                lines.append(f"{base}_count{_prom_labels(labels)} {entry['count']}")
            else:
                lines.append(
                    f"{sample_name}{_prom_labels(labels)} {entry['value']!r}"
                )
    return "\n".join(lines) + "\n"


def prometheus_snapshot(metrics: MetricsRegistry) -> str:
    """Prometheus text exposition of a live registry."""
    return render_prometheus(metrics.snapshot())


def parse_prometheus(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse a text exposition back into ``(name, labels) -> value``.

    Supports exactly what :func:`render_prometheus` emits (one sample per
    line, ``#`` comments); round-trip tests diff this against the
    snapshot the text came from.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise AnalysisError(f"malformed sample on line {lineno}: {line!r}")
        labels: list[tuple[str, str]] = []
        if name_part.endswith("}"):
            name, _, label_text = name_part.partition("{")
            for item in label_text[:-1].split(","):
                key, _, raw = item.partition("=")
                if not raw.startswith('"') or not raw.endswith('"'):
                    raise AnalysisError(
                        f"malformed label on line {lineno}: {item!r}"
                    )
                labels.append(
                    (key, raw[1:-1].replace(r"\"", '"').replace(r"\\", "\\"))
                )
        else:
            name = name_part
        out[(name, tuple(labels))] = float(value_part)
    return out


# ---------------------------------------------------------------------------
# downtime critical path
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CriticalPathEntry:
    """One ``reboot.phase`` child span on a reboot's critical path."""

    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass
class CriticalPath:
    """A reboot span resolved into its ordered phase intervals.

    The strategies run their phases back-to-back in one process, so the
    phase chain *is* the critical path of the rejuvenation: ``total``
    should equal ``phase_sum`` up to float association error, and any
    larger ``gap`` is time the instrumentation failed to attribute.
    """

    span: SpanNode
    entries: list[CriticalPathEntry]

    @property
    def strategy(self) -> str:
        """The reboot strategy (the root span's detail)."""
        return self.span.detail

    @property
    def total(self) -> float:
        """End-to-end reboot duration measured by the root span."""
        return self.span.duration

    @property
    def phase_sum(self) -> float:
        """Sum of the phase durations (the Figure 7 breakdown total)."""
        return sum(entry.duration for entry in self.entries)

    @property
    def gap(self) -> float:
        """Reboot time not attributed to any phase."""
        return self.total - self.phase_sum

    def entry(self, phase: str) -> CriticalPathEntry:
        """The named phase; raises :class:`AnalysisError` if absent."""
        for candidate in self.entries:
            if candidate.phase == phase:
                return candidate
        raise AnalysisError(f"critical path has no phase {phase!r}")


def reboot_critical_path(
    trace: "Tracer",
    host: str | None = None,
    occurrence: int = 0,
) -> CriticalPath:
    """The ``occurrence``-th completed reboot's phase breakdown, from spans.

    ``host`` filters by the rebooting host's actor name when several hosts
    reboot in one simulation (cluster scenarios).
    """
    tree = build_span_tree(trace)
    reboots = [n for n in tree.find("reboot", actor=host) if n.closed]
    if occurrence >= len(reboots):
        raise AnalysisError(
            f"trace holds {len(reboots)} completed reboot span(s)"
            + (f" for host {host!r}" if host else "")
            + f"; occurrence {occurrence} requested"
        )
    span = reboots[occurrence]
    entries = [
        CriticalPathEntry(child.detail, child.start, child.end)
        for child in span.children
        if child.name == "reboot.phase" and child.closed
    ]
    return CriticalPath(span, entries)


def reconcile(
    path: CriticalPath, report: "RebootReport", tolerance: float = 1e-6
) -> float:
    """Check a span critical path against the strategy's own report.

    Both are stamped by the same ``_PhaseClock`` instants, so phase names
    must match in order and every boundary must agree to ``tolerance``
    (sums of float intervals do not telescope exactly).  Returns the
    maximum absolute deviation found; raises :class:`AnalysisError` on a
    structural mismatch or a deviation beyond ``tolerance``.
    """
    if path.strategy != report.strategy.value:
        raise AnalysisError(
            f"span strategy {path.strategy!r} != report "
            f"{report.strategy.value!r}"
        )
    span_phases = [entry.phase for entry in path.entries]
    report_phases = [phase.name for phase in report.phases]
    if span_phases != report_phases:
        raise AnalysisError(
            f"phase mismatch: spans {span_phases} vs report {report_phases}"
        )
    deviations = [
        abs(path.span.start - report.started),
        abs(path.span.end - report.finished),  # type: ignore[operator]
        abs(path.total - report.total),
        abs(path.phase_sum - sum(p.duration for p in report.phases)),
        abs(path.gap),
    ]
    for entry, phase in zip(path.entries, report.phases):
        deviations.append(abs(entry.start - phase.start))
        deviations.append(abs(entry.end - phase.end))
        deviations.append(abs(entry.duration - phase.duration))
    worst = max(deviations)
    if worst > tolerance:
        raise AnalysisError(
            f"span tree and reboot report disagree by {worst:.3g} s "
            f"(tolerance {tolerance:.3g} s)"
        )
    return worst


# ---------------------------------------------------------------------------
# simulator capture (for CLIs that build their stacks deep inside runners)
# ---------------------------------------------------------------------------

@contextlib.contextmanager
def capture_simulators() -> typing.Iterator[list["Simulator"]]:
    """Collect every :class:`Simulator` constructed inside the block.

    The experiment runners build their simulators deep inside testbed
    helpers; ``--trace-out`` needs a handle on them afterwards.  The
    kernel calls construction-time observers, so the captured list is
    populated in construction order.
    """
    captured: list["Simulator"] = []
    handle = captured.append
    _kernel._observers.append(handle)
    try:
        yield captured
    finally:
        _kernel._observers.remove(handle)


# ---------------------------------------------------------------------------
# self-check CLI (the `make obs-check` gate)
# ---------------------------------------------------------------------------

def _self_check(
    trace_out: str | None, prom_out: str | None, vms: int
) -> list[str]:
    """Run a small instrumented scenario and cross-check every exporter.

    Returns a list of failure messages (empty = pass).
    """
    import os

    from repro.experiments.common import build_testbed
    from repro.units import kib
    from repro.workloads.httperf import Httperf

    failures: list[str] = []
    previous = os.environ.get("REPRO_METRICS")
    os.environ["REPRO_METRICS"] = "1"  # the builder owns Simulator creation
    try:
        controller = build_testbed(vms, services=("apache",))
    finally:
        if previous is None:
            del os.environ["REPRO_METRICS"]
        else:
            os.environ["REPRO_METRICS"] = previous
    sim = controller.sim
    guest = controller.guest("vm01")
    paths = guest.filesystem.create_many("/www", 50, kib(512))
    controller.run_process(guest.warm_file_cache(paths))
    client = Httperf(
        sim,
        lambda: controller.host.guest("vm01").service("apache"),
        paths,
        concurrency=2,
        name="obs-check",
    ).start()
    controller.run_for(10.0)
    report = controller.rejuvenate("warm")
    controller.run_for(30.0)
    client.stop()

    # 1. every span must be closed (balanced begin/end)
    open_spans = sim.spans.open_spans()
    if open_spans:
        failures.append(f"unbalanced spans left open: {open_spans}")

    # 2. the span critical path must reconcile with the reboot report
    try:
        path = reboot_critical_path(sim.trace)
        worst = reconcile(path, report)
        print(
            f"critical path: {len(path.entries)} phases, "
            f"total {path.total:.3f} s, worst deviation {worst:.2e} s"
        )
    except AnalysisError as exc:
        failures.append(f"critical-path reconciliation failed: {exc}")

    # 3. the Perfetto export must be strict JSON with both track types
    document = perfetto_trace(sim.trace, sim.metrics)
    try:
        encoded = json.dumps(document, allow_nan=False)
    except ValueError as exc:
        failures.append(f"Perfetto export is not strict JSON: {exc}")
    else:
        spans = sum(1 for e in document["traceEvents"] if e["ph"] == "X")
        counters = sum(1 for e in document["traceEvents"] if e["ph"] == "C")
        print(
            f"perfetto: {spans} span events, {counters} counter events, "
            f"{len(encoded)} bytes"
        )
        if not spans:
            failures.append("Perfetto export contains no span events")
        if not counters:
            failures.append("Perfetto export contains no counter events")

    # 4. the Prometheus text must parse back to the snapshot's values
    snapshot = sim.metrics.snapshot()
    text = render_prometheus(snapshot)
    parsed = parse_prometheus(text)
    plain = [
        (name, entry)
        for name, entries in snapshot.items()
        for entry in entries
        if "value" in entry
    ]
    for name, entry in plain:
        spec = METRIC_SCHEMA[name]
        sample = _prom_name(name) + ("_total" if spec.kind == "counter" else "")
        key = (sample, tuple(sorted(entry["labels"].items())))
        if parsed.get(key) != entry["value"]:
            failures.append(
                f"Prometheus round-trip lost {sample}: "
                f"{parsed.get(key)} != {entry['value']}"
            )
    print(
        f"prometheus: {len(parsed)} samples, "
        f"{len(plain)} counter/gauge values verified"
    )

    if trace_out:
        print(f"wrote {write_perfetto(trace_out, sim.trace, sim.metrics)}")
    if prom_out:
        out = pathlib.Path(prom_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"wrote {out}")
    return failures


def main(argv: typing.Sequence[str] | None = None) -> int:
    """``python -m repro.analysis.obs`` — the observability self-check."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Run a small instrumented rejuvenation scenario and verify the "
            "span/metric exporters against each other."
        ),
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the Perfetto trace JSON here (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--prom-out", metavar="PATH", default=None,
        help="write the Prometheus text snapshot here",
    )
    parser.add_argument(
        "--vms", type=int, default=3,
        help="testbed size for the self-check scenario (default 3)",
    )
    args = parser.parse_args(argv)
    failures = _self_check(args.trace_out, args.prom_out, args.vms)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("obs-check:", "FAIL" if failures else "OK")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
