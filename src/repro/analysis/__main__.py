"""``python -m repro.analysis`` — the observability self-check CLI.

Delegates to :func:`repro.analysis.obs.main`; a package-level entry so
the module is not executed twice (``-m repro.analysis.obs`` would re-run
``obs`` after the package ``__init__`` already imported it).
"""

import sys

from repro.analysis.obs import main

if __name__ == "__main__":
    sys.exit(main())
