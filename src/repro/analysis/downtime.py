"""Service-downtime measurement from trace records.

The paper measures downtime from the client side: "the time from when a
networked service in each VM was down and until it was up again after the
VMM was rebooted" (§5.3).  In the simulation, ``service.down`` /
``service.up`` trace records carry exactly those instants, so downtime
extraction is a pairing pass over the trace — the same measurement, minus
packet-probe quantization.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing

from repro.errors import AnalysisError
from repro.simkernel import Tracer


@dataclasses.dataclass(frozen=True)
class DowntimeInterval:
    """One outage of one service."""

    domain: str
    service: str
    down_at: float
    up_at: float | None
    """None while the outage is still open at trace end."""

    down_reason: str = ""
    up_reason: str = ""

    @property
    def duration(self) -> float:
        if self.up_at is None:
            raise AnalysisError(
                f"outage of {self.service} on {self.domain} never ended"
            )
        return self.up_at - self.down_at

    @property
    def closed(self) -> bool:
        return self.up_at is not None


def extract_downtimes(
    trace: Tracer,
    since: float = float("-inf"),
    until: float = float("inf"),
    domain: str | None = None,
    service: str | None = None,
) -> list[DowntimeInterval]:
    """Pair ``service.down`` with the next ``service.up`` per (domain,
    service); intervals are attributed to their *down* instant."""
    filters: dict[str, typing.Any] = {}
    if domain is not None:
        filters["domain"] = domain
    if service is not None:
        filters["service"] = service
    events = trace.select("service.", since=since, until=until, **filters)
    open_outages: dict[tuple[str, str], typing.Any] = {}
    intervals: list[DowntimeInterval] = []
    for record in events:
        key = (record["domain"], record["service"])
        if record.kind == "service.down":
            # A second 'down' without an 'up' (e.g. killed while already
            # down for suspend) extends the same outage; keep the first.
            open_outages.setdefault(key, record)
        elif record.kind == "service.up":
            started = open_outages.pop(key, None)
            if started is not None:
                intervals.append(
                    DowntimeInterval(
                        domain=key[0],
                        service=key[1],
                        down_at=started.time,
                        up_at=record.time,
                        down_reason=started.get("reason", ""),
                        up_reason=record.get("reason", ""),
                    )
                )
    for key, started in open_outages.items():
        intervals.append(
            DowntimeInterval(
                domain=key[0],
                service=key[1],
                down_at=started.time,
                up_at=None,
                down_reason=started.get("reason", ""),
            )
        )
    intervals.sort(key=lambda i: (i.down_at, i.domain, i.service))
    return intervals


def downtime_by_domain(
    intervals: typing.Iterable[DowntimeInterval],
) -> dict[str, float]:
    """Total closed downtime per domain."""
    totals: dict[str, float] = {}
    for interval in intervals:
        if interval.closed:
            totals[interval.domain] = (
                totals.get(interval.domain, 0.0) + interval.duration
            )
    return totals


@dataclasses.dataclass(frozen=True)
class DowntimeSummary:
    """Aggregate downtime across domains for one reboot event."""

    count: int
    mean: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, intervals: typing.Iterable[DowntimeInterval]) -> "DowntimeSummary":
        durations = [i.duration for i in intervals if i.closed]
        if not durations:
            raise AnalysisError("no closed downtime intervals to summarize")
        return cls(
            count=len(durations),
            mean=statistics.fmean(durations),
            minimum=min(durations),
            maximum=max(durations),
        )


def reboot_downtime_summary(
    trace: Tracer,
    since: float = float("-inf"),
    until: float = float("inf"),
    service: str | None = None,
) -> DowntimeSummary:
    """The paper's Figure 6 quantity: average service downtime over all
    VMs for one VMM reboot."""
    return DowntimeSummary.of(
        extract_downtimes(trace, since=since, until=until, service=service)
    )
