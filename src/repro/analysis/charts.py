"""Text chart rendering: reproduce the paper's figures as terminal art.

The experiment runners already produce the data; these helpers draw it —
grouped bar charts for Figures 4/5/6 and line plots for the throughput
timelines — so ``roothammer-experiments`` output looks like the paper's
evaluation section, not just tables.
"""

from __future__ import annotations

import typing

from repro.errors import AnalysisError

_BAR = "█"
_HALF = "▌"


def bar_chart(
    title: str,
    groups: typing.Sequence[tuple[str, typing.Mapping[str, float]]],
    width: int = 48,
    unit: str = "s",
    log_floor: float | None = None,
) -> str:
    """A grouped horizontal bar chart.

    ``groups`` is ``[(group_label, {series_label: value, ...}), ...]`` —
    e.g. one group per VM count with warm/saved/cold bars, Figure 6 style.
    ``log_floor`` switches to a log scale with the given positive floor,
    which is how the paper plots Figure 4's four-orders-of-magnitude span.
    """
    if width < 8:
        raise AnalysisError("chart width must be >= 8")
    values = [v for _, series in groups for v in series.values()]
    if not values:
        return f"{title}\n(no data)"
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    if log_floor is not None:
        if log_floor <= 0:
            raise AnalysisError("log_floor must be positive")
        import math

        def scale(value: float) -> float:
            clamped = max(value, log_floor)
            return math.log(clamped / log_floor) / math.log(peak / log_floor)

    else:
        def scale(value: float) -> float:
            return value / peak

    label_width = max(
        [len(label) for _, series in groups for label in series]
        + [len(g) for g, _ in groups]
    )
    lines = [title]
    for group_label, series in groups:
        lines.append(f"{group_label}:")
        for label, value in series.items():
            filled = scale(value) * width
            whole = int(filled)
            bar = _BAR * whole + (_HALF if filled - whole >= 0.5 else "")
            lines.append(
                f"  {label:<{label_width}} |{bar:<{width}}| {value:.4g} {unit}"
            )
    return "\n".join(lines)


def line_plot(
    title: str,
    series: typing.Mapping[str, typing.Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 12,
) -> str:
    """A multi-series scatter/line plot on a character grid.

    Each series gets a marker; points are mapped onto a ``width``×``height``
    grid spanning the union of all x/y ranges.  Good enough to *see* the
    Figure 5 slopes diverge.
    """
    if width < 8 or height < 4:
        raise AnalysisError("plot must be at least 8x4")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker}={name}")
        for x, y in pts:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker
    lines = [title]
    for row_index, row in enumerate(grid):
        y_value = y_high - row_index * y_span / (height - 1)
        lines.append(f"{y_value:>10.4g} |{''.join(row)}|")
    lines.append(f"{'':>10}  {x_low:<10.4g}{'':{max(0, width - 20)}}{x_high:>10.4g}")
    lines.append(f"{'':>10}  {'  '.join(legend)}")
    return "\n".join(lines)
