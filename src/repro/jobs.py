"""Pooled, content-address-cached execution of independent work cells.

A :class:`Cell` is one deterministic unit of work — a ``"module:function"``
reference plus plain parameters — whose payload depends only on those
inputs and the package source, never on which process runs it or in what
order.  This module is the tier-independent machinery that exploits that:

* **fan-out** — cells are fanned across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (or run serially
  in-process for ``jobs=1``), so long cells from one plan overlap short
  cells from another;
* **memoisation** — each payload is stored in a content-addressed cache
  keyed on the cell's function, its parameters, the timing-profile
  fingerprint, the ambient kernel configuration and a hash of the package
  source, so re-running a sweep recomputes only cells whose inputs
  actually changed.

It lives at the foundation layer because every execution tier rides on
it: experiment sweeps (:mod:`repro.experiments.parallel`), scenario
sweeps, and fleet shards (:mod:`repro.fleet.runner`).  Nothing here knows
what a cell *computes* — plan construction and payload assembly belong to
the tiers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import typing
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path

import repro
from repro.config import paper_testbed
from repro.errors import ReproError

_CACHE_VERSION = 4
"""Bump to invalidate every cached payload at once.

2: workload mode/sessions/tick entered the scenario spec schema and the
kernel backend/horizon entered the digest material; payloads keyed under
version 1 predate both and must never alias the new cells.

3: scenario reports and fleet shard payloads gained the control-plane
``policy`` block (and specs the ``policy`` table); version-2 payloads
lack the key and must not replay into policy-aware consumers.

4: fleet shard payloads gained the ``telemetry`` blob (and specs the
``slo``/``telemetry`` keys, audit entries their ``span`` join key);
version-3 payloads lack them and must not replay into the telemetry
merge.
"""


@dataclasses.dataclass(frozen=True, eq=False)
class Cell:
    """One independent measurement: a function call on a fresh testbed."""

    experiment_id: str
    key: tuple
    fn: str
    """``"module:function"`` — resolvable in a worker process."""
    params: dict[str, typing.Any]

    def digest(self, full: bool) -> str:
        """Content address of this cell's payload.

        Two cells share a digest only if they would compute the same
        payload: same function, same parameters, same timing profile,
        same package source and the same ambient kernel configuration
        (scheduler backend + horizon — environment knobs a cell's worker
        inherits, so flipping them must never replay a stale payload).
        ``repr`` of the sorted parameter items is stable because cell
        parameters are ints/floats/strs/bools (and, for spec cells,
        canonically ordered dicts of those).
        """
        material = repr(
            (
                _CACHE_VERSION,
                self.fn,
                sorted(self.params.items()),
                bool(full),
                _profile_fingerprint(),
                _env_fingerprint(),
                code_version(),
            )
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _profile_fingerprint() -> str:
    """The default timing profile, as cache-key material.

    ``TimingProfile`` is a frozen dataclass tree of scalars, so its repr
    captures every calibrated constant an experiment can observe.
    """
    return repr(paper_testbed())


def _env_fingerprint() -> str:
    """Ambient kernel knobs worker processes inherit, as cache-key material.

    The scheduler backend contract says results never depend on the
    backend — but the cache must not *assume* the contract holds: a
    payload computed under one backend/horizon must never satisfy a
    lookup made under another, or a contract violation would be masked
    by replay instead of caught by the differential tests.
    """
    return repr(
        (
            os.environ.get("REPRO_KERNEL_BACKEND") or "reference",
            os.environ.get("REPRO_KERNEL_HORIZON") or "",
        )
    )


_code_version: str | None = None


def code_version() -> str:
    """A hash over the ``repro`` package source (cache-key material)."""
    global _code_version
    if _code_version is None:
        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version = h.hexdigest()
    return _code_version


def _execute_cell(fn: str, params: dict[str, typing.Any]) -> typing.Any:
    """Worker-side cell execution (top level, so it pickles)."""
    import importlib

    module_name, _, attr = fn.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)(**params)


# -- the result cache --------------------------------------------------------------


def cache_dir() -> Path:
    """Where payloads live: ``$REPRO_CACHE_DIR`` or a user-cache default."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    return Path(xdg) / "repro-experiments"


def _cache_path(digest: str) -> Path:
    # Shard by the first byte to keep directory listings manageable.
    return cache_dir() / digest[:2] / f"{digest}.pkl"


def _cache_load(digest: str) -> tuple[bool, typing.Any]:
    """(hit, payload); unreadable or corrupt entries are just misses.

    Deliberately catches every Exception: depending on which opcode the
    corruption lands on, unpickling garbage raises UnpicklingError,
    EOFError, ValueError, UnicodeDecodeError, ImportError...  A cache
    read must never be able to fail a sweep.
    """
    try:
        blob = _cache_path(digest).read_bytes()
        return True, pickle.loads(blob)
    except Exception:
        return False, None


def _cache_store(digest: str, payload: typing.Any) -> None:
    """Atomic write (unique temp file + rename): concurrent writers of
    the same digest each land a complete file, last one wins."""
    path = _cache_path(digest)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - cache is best-effort
        pass


def clear_cache() -> int:
    """Delete every cached payload; returns the number removed."""
    removed = 0
    root = cache_dir()
    if root.is_dir():
        for path in root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
    return removed


# -- the runners -------------------------------------------------------------------


@dataclasses.dataclass
class SweepStats:
    """What a pooled sweep actually did (observability + tests)."""

    total_cells: int = 0
    cache_hits: int = 0
    executed: int = 0


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_cells(
    cells: list[Cell],
    full: bool,
    jobs: int | None,
    use_cache: bool,
    stats: SweepStats | None = None,
) -> dict[tuple[str, tuple], typing.Any]:
    """Execute a pooled cell list; returns payloads keyed by
    (experiment id, cell key)."""
    jobs = _resolve_jobs(jobs)
    if stats is None:
        stats = SweepStats()
    stats.total_cells += len(cells)

    payloads: dict[tuple[str, tuple], typing.Any] = {}
    misses: list[tuple[Cell, str]] = []
    for cell in cells:
        digest = cell.digest(full) if use_cache else ""
        if use_cache:
            hit, payload = _cache_load(digest)
            if hit:
                payloads[(cell.experiment_id, cell.key)] = payload
                stats.cache_hits += 1
                continue
        misses.append((cell, digest))

    stats.executed += len(misses)
    if not misses:
        return payloads

    if jobs == 1:
        # In-process serial path: same cells, no pool overhead.
        for cell, digest in misses:
            payload = _execute_cell(cell.fn, cell.params)
            payloads[(cell.experiment_id, cell.key)] = payload
            if use_cache:
                _cache_store(digest, payload)
        return payloads

    # More CPU-bound workers than cores only adds scheduler thrash, and
    # idle workers beyond the miss count only add fork cost.
    workers = min(jobs, len(misses), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: list[tuple[Cell, str, Future]] = [
            (cell, digest, pool.submit(_execute_cell, cell.fn, cell.params))
            for cell, digest in misses
        ]
        for cell, digest, future in futures:
            payload = future.result()
            payloads[(cell.experiment_id, cell.key)] = payload
            if use_cache:
                _cache_store(digest, payload)
    return payloads


def run_cells(
    cells: typing.Sequence[Cell],
    jobs: int | None = None,
    use_cache: bool = True,
    stats: SweepStats | None = None,
) -> dict[tuple[str, tuple], typing.Any]:
    """Public pooled-cell entry point.

    The fleet runner (``repro.fleet``) fans its shard cells through this,
    so shards pool, parallelise and content-address cache exactly like
    experiment and scenario cells; payloads come back keyed by
    ``(experiment id, cell key)``.
    """
    return _run_cells(list(cells), False, jobs, use_cache, stats)
