"""Calibrated configuration profiles for the simulated testbed.

Every timing constant used by the hardware, VMM and guest models lives
here, grouped into small spec dataclasses and aggregated by
:class:`TimingProfile`.  The :func:`paper_testbed` profile is calibrated to
the DSN 2007 testbed (dual Dual-Core Opteron 280, 12 GB PC3200, 15 krpm
U320 SCSI disk, gigabit Ethernet) by back-solving the paper's own
measurements — see DESIGN.md "Calibration anchors" for the derivations.

Nothing outside this module hard-codes a paper number: experiments *run*
on these physical parameters and the paper's results emerge (or fail to).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.units import GiB, KiB, MiB, gib, mib


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value}")


def _non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")


@dataclasses.dataclass(frozen=True)
class CpuSpec:
    """Physical CPU package description."""

    cores: int = 4
    """Total hardware threads usable by guests and dom0."""

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError(f"cores must be >= 1, got {self.cores}")


@dataclasses.dataclass(frozen=True)
class DiskSpec:
    """Rotational-disk service-time model.

    A transfer is split into ``chunk_bytes`` requests served FIFO; a request
    pays ``seek_s`` whenever the head was last positioned for a *different*
    stream (or for the first chunk of a stream).  This makes single-stream
    transfers run at full ``read_bw``/``write_bw`` while interleaved streams
    degrade — the emergent behaviour behind the paper's Figure 5 slopes and
    the 69 % random-read web-server degradation.
    """

    read_bw: float = 88 * MiB
    """Sequential read bandwidth, bytes/second."""

    write_bw: float = 85 * MiB
    """Sequential write bandwidth, bytes/second."""

    seek_s: float = 0.008
    """Average positioning time (seek + rotational latency), seconds."""

    chunk_bytes: int = 2 * MiB
    """Request granularity for long transfers."""

    def __post_init__(self) -> None:
        _positive("read_bw", self.read_bw)
        _positive("write_bw", self.write_bw)
        _non_negative("seek_s", self.seek_s)
        _positive("chunk_bytes", self.chunk_bytes)


@dataclasses.dataclass(frozen=True)
class NicSpec:
    """Network interface: a shared-bandwidth link."""

    bandwidth: float = 117 * MiB
    """Effective gigabit payload bandwidth, bytes/second."""

    latency_s: float = 0.0002
    """One-way propagation + stack latency, seconds."""

    def __post_init__(self) -> None:
        _positive("bandwidth", self.bandwidth)
        _non_negative("latency_s", self.latency_s)


@dataclasses.dataclass(frozen=True)
class RamDiskSpec:
    """An i-RAM-like non-volatile RAM disk (related work, §7).

    DRAM speed internally but attached over SATA, so bandwidth-limited
    and seek-free.  Used only by the ``ramdisk`` save variant.
    """

    bandwidth: float = 150 * MiB
    """SATA-limited transfer rate, bytes/second."""

    access_s: float = 0.0001
    """Per-request access latency (no mechanical seek)."""

    def __post_init__(self) -> None:
        _positive("bandwidth", self.bandwidth)
        _non_negative("access_s", self.access_s)


@dataclasses.dataclass(frozen=True)
class MemorySpec:
    """Machine memory and its bandwidth as seen by file-cache reads."""

    total_bytes: int = 12 * GiB
    cached_read_bw: float = 930 * MiB
    """Throughput of reading file data already in the guest page cache;
    back-solved from the paper's 91 % first-read degradation (§5.5)."""

    def __post_init__(self) -> None:
        _positive("total_bytes", self.total_bytes)
        _positive("cached_read_bw", self.cached_read_bw)


@dataclasses.dataclass(frozen=True)
class BiosSpec:
    """Power-on self-test model: the cost of a hardware reset.

    ``post_base_s + mem_check_s_per_gib * installed_gib + scsi_init_s``
    reproduces the paper's ``reset_hw = 47 s`` for 12 GB (§5.6) and scales
    with installed memory as §2 argues it must.
    """

    post_base_s: float = 8.0
    mem_check_s_per_gib: float = 2.25
    scsi_init_s: float = 12.0

    def __post_init__(self) -> None:
        _non_negative("post_base_s", self.post_base_s)
        _non_negative("mem_check_s_per_gib", self.mem_check_s_per_gib)
        _non_negative("scsi_init_s", self.scsi_init_s)

    def reset_duration(self, installed_bytes: int) -> float:
        """Seconds for a full hardware reset of a machine with this BIOS."""
        return (
            self.post_base_s
            + self.mem_check_s_per_gib * (installed_bytes / GiB)
            + self.scsi_init_s
        )


@dataclasses.dataclass(frozen=True)
class VmmSpec:
    """Hypervisor timing and sizing constants (Xen 3.0.0-alike)."""

    heap_bytes: int = 16 * MiB
    """VMM heap size — 16 MB by default in Xen regardless of RAM (§2)."""

    shutdown_s: float = 0.8
    """Tearing down the VMM itself (after dom0 is down)."""

    boot_fixed_s: float = 4.0
    """VMM initialization excluding free-memory scrubbing."""

    scrub_s_per_gib: float = 0.55
    """Scrubbing/initializing each GiB of *free* machine memory at boot.

    Memory reserved for suspended domains is skipped, which is why the
    paper's ``reboot_vmm(n)`` *decreases* with n (slope −0.55 s/VM·GiB)."""

    image_load_s: float = 0.15
    """xexec hypercall: loading the new VMM+dom0 executable image."""

    reload_jump_s: float = 0.05
    """Quick reload control transfer (copy image, jump to entry point)."""

    state_save_bytes: int = 16 * KiB
    """Per-domain execution-state save area (§4.2: 16 KB)."""

    p2m_bytes_per_gib: int = 2 * MiB
    """P2M table footprint per GiB of pseudo-physical memory (§4.1)."""

    suspend_base_s: float = 0.03
    """Per-domain on-memory suspend fixed cost (suspend handler + hypercall)."""

    suspend_s_per_gib: float = 0.0045
    """Per-GiB component of on-memory suspend (freeze bookkeeping)."""

    resume_create_s: float = 0.25
    """Per-domain toolstack cost to create the resumed domain (serialized
    through dom0's management daemon, like xend)."""

    resume_devices_s: float = 0.10
    """Per-domain device re-attach in the guest resume handler."""

    resume_s_per_gib: float = 0.055
    """Per-GiB on-memory resume cost (walking the preserved P2M table)."""

    create_domain_s: float = 0.43
    """Per-domain toolstack cost to create a *fresh* domain (cold boot path),
    serialized through dom0's management daemon."""

    shutdown_signal_s: float = 0.5
    """Per-domain latency of dom0 signalling a guest to shut down
    (``xm shutdown`` issued serially by the shutdown script), which
    staggers when each VM's services drop during a cold/saved reboot."""

    def __post_init__(self) -> None:
        for field in (
            "shutdown_s",
            "boot_fixed_s",
            "scrub_s_per_gib",
            "image_load_s",
            "reload_jump_s",
            "suspend_base_s",
            "suspend_s_per_gib",
            "resume_create_s",
            "resume_devices_s",
            "resume_s_per_gib",
            "create_domain_s",
        ):
            _non_negative(field, getattr(self, field))
        _positive("heap_bytes", self.heap_bytes)


@dataclasses.dataclass(frozen=True)
class Dom0Spec:
    """The privileged domain (domain 0)."""

    memory_bytes: int = 512 * MiB
    shutdown_s: float = 13.5
    """Stopping dom0's services and kernel (the paper's Figure 7 shows the
    web server running ~14 s past the reboot command before suspend)."""

    boot_s: float = 31.7
    """dom0 kernel boot plus management-daemon start (xend, xenstored)."""

    def __post_init__(self) -> None:
        _positive("memory_bytes", self.memory_bytes)
        _non_negative("shutdown_s", self.shutdown_s)
        _non_negative("boot_s", self.boot_s)


@dataclasses.dataclass(frozen=True)
class GuestSpec:
    """Guest operating-system boot/shutdown cost model."""

    boot_read_bytes: int = 215 * MiB
    """Disk bytes read during kernel + userland boot; under full contention
    this yields the paper's 3.4 s/VM boot slope."""

    boot_cpu_s: float = 2.6
    """CPU work during boot (overlapped with the disk reads)."""

    boot_fixed_s: float = 2.8
    """Non-overlappable boot latency (kernel handoff, device probes)."""

    shutdown_sync_bytes: int = 25 * MiB
    """Dirty data synced to disk on shutdown (0.4 s/VM slope)."""

    shutdown_fixed_s: float = 10.2
    """Service-stop timeouts and unmount waits."""

    shutdown_service_stop_s: float = 3.0
    """How long after shutdown begins the network services drop (the init
    system works through its stop scripts before reaching them)."""

    suspend_handler_s: float = 0.02
    """Guest suspend handler: detach devices, quiesce."""

    resume_handler_s: float = 0.02
    """Guest resume handler: re-establish channels, attach devices."""

    def __post_init__(self) -> None:
        _positive("boot_read_bytes", self.boot_read_bytes)
        for field in (
            "boot_cpu_s",
            "boot_fixed_s",
            "shutdown_fixed_s",
            "shutdown_service_stop_s",
            "suspend_handler_s",
            "resume_handler_s",
        ):
            _non_negative(field, getattr(self, field))


@dataclasses.dataclass(frozen=True)
class ServiceCosts:
    """Start/stop costs for the services used in the paper's evaluation."""

    ssh_read_bytes: int = 5 * MiB
    ssh_cpu_s: float = 0.2
    apache_read_bytes: int = 12 * MiB
    apache_cpu_s: float = 0.5
    jboss_read_bytes: int = 350 * MiB
    """JBoss application server: jar loading from disk at start (§5.3)."""
    jboss_cpu_s: float = 12.5
    """JBoss deploy-time CPU work (class loading, service wiring)."""
    request_cpu_s: float = 0.0002
    """Per-HTTP-request CPU cost in the server."""

    checkpoint_bytes: int = 64 * MiB
    """Process-checkpoint image size (the §7 Randell-style alternative:
    checkpoint processes to disk so an OS reboot can restore rather than
    restart them)."""

    checkpoint_restore_cpu_s: float = 1.0
    """CPU work to rebuild a process from its checkpoint."""

    def __post_init__(self) -> None:
        for field in (
            "ssh_cpu_s",
            "apache_cpu_s",
            "jboss_cpu_s",
            "request_cpu_s",
            "checkpoint_restore_cpu_s",
        ):
            _non_negative(field, getattr(self, field))
        if self.checkpoint_bytes < 0:
            raise ConfigError("checkpoint_bytes must be >= 0")


@dataclasses.dataclass(frozen=True)
class QuirkSpec:
    """Faithfully reproduced implementation artifacts of Xen 3.0.0.

    The paper attributes the 25 s post-resume throughput dip (Fig. 7) to a
    Xen bug where network performance degrades for a while after many VMs
    are created simultaneously.  Modelled here so Figure 7 reproduces; turn
    off to see the idealized warm reboot.
    """

    post_create_network_slump_s: float = 25.0
    post_create_network_factor: float = 0.55
    """Multiplier on NIC bandwidth during the slump."""

    min_vms_for_slump: int = 2
    """The slump needs 'simultaneous' creations; a single VM is unaffected."""

    def __post_init__(self) -> None:
        _non_negative("post_create_network_slump_s", self.post_create_network_slump_s)
        if not 0 < self.post_create_network_factor <= 1:
            raise ConfigError("post_create_network_factor must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class AgingFaults:
    """Which historical Xen defects are active, and how hard they bite.

    §2 grounds the need for VMM rejuvenation in real Xen defects:

    * changeset 9392 — heap memory lost every time a VM is rebooted;
    * changeset 11752 — heap lost on certain error paths;
    * changeset 8640 — xenstored (in domain 0) leaking per transaction.

    This spec switches those defects on in the simulated stack so aging
    experiments can drive the VMM toward exhaustion; all default to off
    (a healthy hypervisor).  It lives here with the other spec dataclasses
    because the VMM and xenstore (platform layer) consult it — the aging
    package layers *above* them and could not be imported from there.
    :mod:`repro.aging.faults` re-exports it as the aging-facing name.
    """

    leak_on_domain_destroy_bytes: int = 0
    """VMM heap bytes leaked each time a domain is destroyed (cs 9392:
    'available heap memory decreased whenever a VM was rebooted')."""

    leak_on_error_path_bytes: int = 0
    """VMM heap bytes leaked when an error path executes (cs 11752)."""

    xenstore_leak_per_txn_bytes: int = 0
    """Bytes leaked by xenstored per transaction (cs 8640)."""

    def __post_init__(self) -> None:
        for field in (
            "leak_on_domain_destroy_bytes",
            "leak_on_error_path_bytes",
            "xenstore_leak_per_txn_bytes",
        ):
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be >= 0")

    @classmethod
    def healthy(cls) -> "AgingFaults":
        """No active defects."""
        return cls()

    @classmethod
    def paper_bugs(cls) -> "AgingFaults":
        """All three cited defects on, at magnitudes that exhaust the 16 MB
        heap after many domain reboots — aggressive enough to observe in
        simulated weeks, faithful in *kind* to the cited changesets."""
        return cls(
            leak_on_domain_destroy_bytes=64 * KiB,
            leak_on_error_path_bytes=16 * KiB,
            xenstore_leak_per_txn_bytes=4 * KiB,
        )


@dataclasses.dataclass(frozen=True)
class TimingProfile:
    """Aggregate machine + software profile for one simulated host."""

    cpu: CpuSpec = dataclasses.field(default_factory=CpuSpec)
    disk: DiskSpec = dataclasses.field(default_factory=DiskSpec)
    ramdisk: RamDiskSpec = dataclasses.field(default_factory=RamDiskSpec)
    nic: NicSpec = dataclasses.field(default_factory=NicSpec)
    memory: MemorySpec = dataclasses.field(default_factory=MemorySpec)
    bios: BiosSpec = dataclasses.field(default_factory=BiosSpec)
    vmm: VmmSpec = dataclasses.field(default_factory=VmmSpec)
    dom0: Dom0Spec = dataclasses.field(default_factory=Dom0Spec)
    guest: GuestSpec = dataclasses.field(default_factory=GuestSpec)
    services: ServiceCosts = dataclasses.field(default_factory=ServiceCosts)
    quirks: QuirkSpec = dataclasses.field(default_factory=QuirkSpec)
    jitter_fraction: float = 0.0
    """Uniform multiplicative noise on modelled durations; 0 = exact."""

    def __post_init__(self) -> None:
        if not 0 <= self.jitter_fraction < 1:
            raise ConfigError("jitter_fraction must be in [0, 1)")
        if self.dom0.memory_bytes >= self.memory.total_bytes:
            raise ConfigError("dom0 memory must be smaller than machine memory")

    def replace(self, **changes: object) -> "TimingProfile":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **changes)


def paper_testbed(**overrides: object) -> TimingProfile:
    """The DSN 2007 server machine: 2×Dual-Core Opteron 280, 12 GB RAM,
    15 krpm U320 SCSI, gigabit Ethernet (§5).

    Keyword overrides replace top-level :class:`TimingProfile` fields,
    e.g. ``paper_testbed(memory=MemorySpec(total_bytes=gib(24)))``.
    """
    return TimingProfile(**overrides)


def small_testbed(**overrides: object) -> TimingProfile:
    """A smaller host (2 cores, 4 GiB) for fast unit tests and examples."""
    defaults: dict[str, object] = {
        "cpu": CpuSpec(cores=2),
        "memory": MemorySpec(total_bytes=gib(4)),
        "dom0": Dom0Spec(memory_bytes=mib(256), shutdown_s=2.0, boot_s=4.0),
    }
    defaults.update(overrides)
    return TimingProfile(**defaults)
