"""Typed actions a placement strategy may emit.

A strategy's output is a :class:`Plan`: an ordered tuple of
:class:`Action` values the executor applies sequentially, plus the
actions it *wanted* but the SLA constraints (migration budget, minimum
hosts up) forced it to defer.  Budget exhaustion degrades to a partial
plan — never an exception — so a starved control loop keeps making
forward progress one epoch at a time.
"""

from __future__ import annotations

import dataclasses
import enum


class ActionKind(enum.Enum):
    """What one control-plane action does."""

    MIGRATE = "migrate"
    REJUVENATE_WARM = "rejuvenate-warm"
    REJUVENATE_COLD = "rejuvenate-cold"
    NO_OP = "no-op"


REJUVENATE_KINDS = frozenset(
    {ActionKind.REJUVENATE_WARM, ActionKind.REJUVENATE_COLD}
)


@dataclasses.dataclass(frozen=True)
class Action:
    """One decision: migrate a VM, rejuvenate a host, or do nothing.

    ``target`` is the host acted on — the migration destination or the
    reboot target; ``vm``/``source`` are set for migrations only.
    ``reason`` carries the detector or constraint that motivated (or
    deferred) the action into the audit log.
    """

    kind: ActionKind
    target: str | None = None
    vm: str | None = None
    source: str | None = None
    reason: str = ""


def migrate(vm: str, source: str, target: str, reason: str = "") -> Action:
    """A live-migration action."""
    return Action(
        ActionKind.MIGRATE, target=target, vm=vm, source=source, reason=reason
    )


def rejuvenate(host: str, strategy: str = "warm", reason: str = "") -> Action:
    """A rejuvenation action (``strategy`` is ``"warm"`` or ``"cold"``)."""
    kind = (
        ActionKind.REJUVENATE_COLD
        if strategy == "cold"
        else ActionKind.REJUVENATE_WARM
    )
    return Action(kind, target=host, reason=reason)


@dataclasses.dataclass(frozen=True)
class Plan:
    """One control cycle's decisions: ordered actions plus deferrals."""

    strategy: str
    actions: tuple[Action, ...] = ()
    deferred: tuple[Action, ...] = ()

    @property
    def migrations(self) -> int:
        return sum(1 for a in self.actions if a.kind is ActionKind.MIGRATE)

    @property
    def rejuvenations(self) -> int:
        return sum(1 for a in self.actions if a.kind in REJUVENATE_KINDS)

    @property
    def is_noop(self) -> bool:
        return not self.actions and not self.deferred
