"""Autonomic control plane: closed-loop consolidation + rejuvenation.

The package splits the loop into three pure-ish parts — **detectors**
(hysteresis gates over live metric signals), a **planner** (pluggable
placement strategies mapping an inert fleet view to typed actions under
SLA constraints), and an **executor** (applies actions through existing
host/migration mechanisms, fully audited) — wired together by
:class:`ControlLoop` on a drift-free sampling grid.

Layering: this package sits *below* the host and cluster layers and
imports only the foundation (``errors``, ``simkernel``).  Live hosts
reach it duck-typed through :func:`view_of_hosts`, and cluster-level
migration is injected as a callable by the scenario layer.
"""

from __future__ import annotations

from repro.control.actions import (
    Action,
    ActionKind,
    Plan,
    migrate,
    rejuvenate,
)
from repro.control.detectors import (
    Detector,
    Hysteresis,
    Trigger,
    cpu_runnable_signal,
    disk_busy_signal,
    heap_utilization_signal,
    next_tick,
    nic_tx_signal,
    windowed_mean,
    windowed_rate,
)
from repro.control.executor import PlanExecutor
from repro.control.loop import ControlConfig, ControlLoop
from repro.control.planner import (
    AgingAwareStrategy,
    ConsolidationStrategy,
    Constraints,
    FirstFitDecreasingStrategy,
    FleetOrderStrategy,
    FleetView,
    HostView,
    PlacementStrategy,
    VMView,
    register_strategy,
    resolve_strategy,
    sla_waves,
    strategy_names,
    view_of_hosts,
)

__all__ = [
    "Action",
    "ActionKind",
    "AgingAwareStrategy",
    "ConsolidationStrategy",
    "Constraints",
    "ControlConfig",
    "ControlLoop",
    "Detector",
    "FirstFitDecreasingStrategy",
    "FleetOrderStrategy",
    "FleetView",
    "HostView",
    "Hysteresis",
    "PlacementStrategy",
    "Plan",
    "PlanExecutor",
    "Trigger",
    "VMView",
    "cpu_runnable_signal",
    "disk_busy_signal",
    "heap_utilization_signal",
    "migrate",
    "next_tick",
    "nic_tx_signal",
    "register_strategy",
    "rejuvenate",
    "resolve_strategy",
    "sla_waves",
    "strategy_names",
    "view_of_hosts",
    "windowed_mean",
    "windowed_rate",
]
