"""Shared detector core: hysteresis triggers on sampled signals.

The control plane's detectors (overload / underload / aging-trend) are
all the same machine: a scalar **signal** sampled on a drift-free
absolute grid, passed through a **hysteresis** gate with a cooldown.
The per-host aging policies (:class:`repro.aging.policy
.ThresholdRejuvenator`) delegate to the same primitives, so "rejuvenate
when the heap crosses a line" is one instance of the general loop rather
than a private reimplementation with its own edge cases.

Two properties are load-bearing and pinned by tests:

* **Single-fire semantics.**  A value sitting exactly *at* the watermark
  fires exactly once; the gate then stays disarmed until the value
  passes back over the re-arm level (default: the watermark itself).
  Without this, a sustained-high signal re-triggers on every sample —
  the duplicate-trigger bug the satellite audit found in the old
  threshold policy under ``dom0-only`` reboots (which never reset the
  VMM heap).
* **Drift-free sampling.**  Sample times are ``origin + k * interval``
  for integer ``k``, regardless of how long handling a trigger took.
  The old policy loop re-anchored its interval at ``sim.now`` after
  every reboot, so one 40 s warm reboot shifted every later check off
  the grid.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from bisect import bisect_left, bisect_right

from repro.errors import ControlError

DIRECTIONS = ("above", "below")
"""Hysteresis polarities: fire when the value rises to the watermark
("above", the overload/aging case) or falls to it ("below", underload)."""


def next_tick(origin: float, interval_s: float, now: float) -> float:
    """The first grid point ``origin + k * interval_s`` strictly after
    ``now`` — the absolute sampling grid every control loop ticks on."""
    if interval_s <= 0:
        raise ControlError(f"interval must be positive, got {interval_s}")
    k = math.floor((now - origin) / interval_s) + 1
    tick = origin + k * interval_s
    while tick <= now:  # float-rounding guard near exact grid points
        k += 1
        tick = origin + k * interval_s
    return tick


class Hysteresis:
    """A single-fire threshold gate with re-arm level and cooldown.

    ``observe(now, value)`` returns ``True`` exactly when the gate fires:
    it is armed, the value has crossed the watermark (inclusive — an
    exact-threshold sample fires), and the cooldown since the previous
    fire has elapsed.  Firing disarms the gate; it re-arms only when the
    value passes back over ``rearm`` (strictly, so a value parked at the
    watermark never re-fires).
    """

    __slots__ = ("threshold", "rearm", "cooldown_s", "direction", "armed",
                 "last_fired")

    def __init__(
        self,
        threshold: float,
        rearm: float | None = None,
        cooldown_s: float = 0.0,
        direction: str = "above",
    ) -> None:
        if direction not in DIRECTIONS:
            raise ControlError(
                f"direction must be one of {', '.join(DIRECTIONS)}, "
                f"got {direction!r}"
            )
        if cooldown_s < 0:
            raise ControlError(f"cooldown must be >= 0, got {cooldown_s}")
        rearm = threshold if rearm is None else rearm
        if direction == "above" and rearm > threshold:
            raise ControlError(
                f"re-arm level {rearm} must be <= threshold {threshold} "
                "for direction 'above'"
            )
        if direction == "below" and rearm < threshold:
            raise ControlError(
                f"re-arm level {rearm} must be >= threshold {threshold} "
                "for direction 'below'"
            )
        self.threshold = threshold
        self.rearm = rearm
        self.cooldown_s = cooldown_s
        self.direction = direction
        self.armed = True
        self.last_fired: float | None = None

    def _crossed(self, value: float) -> bool:
        if self.direction == "above":
            return value >= self.threshold
        return value <= self.threshold

    def _rearmed(self, value: float) -> bool:
        if self.direction == "above":
            return value < self.rearm
        return value > self.rearm

    @property
    def active(self) -> bool:
        """Whether the gate is in its fired (disarmed) state — the
        *level* view of the condition, vs ``observe``'s edge view."""
        return not self.armed

    def observe(self, now: float, value: float) -> bool:
        """Feed one sample; ``True`` iff the gate fires on it."""
        if self.armed:
            if not self._crossed(value):
                return False
            if (
                self.last_fired is not None
                and now - self.last_fired < self.cooldown_s
            ):
                return False  # still cooling down; stays armed
            self.armed = False
            self.last_fired = now
            return True
        if self._rearmed(value):
            self.armed = True
        return False


@dataclasses.dataclass(frozen=True)
class Trigger:
    """One detector firing: who, when, and the offending value."""

    time: float
    detector: str
    host: str
    value: float


class Detector:
    """One named hysteresis gate over a sampled signal for one host.

    ``signal`` is a zero-argument callable returning the current value,
    or ``None`` when the signal is unavailable (VMM down mid-reboot,
    metrics disabled) — unavailable samples leave the gate untouched.
    """

    __slots__ = ("name", "host", "signal", "gate", "value", "triggers")

    def __init__(
        self,
        name: str,
        host: str,
        signal: typing.Callable[[], float | None],
        threshold: float,
        rearm: float | None = None,
        cooldown_s: float = 0.0,
        direction: str = "above",
    ) -> None:
        self.name = name
        self.host = host
        self.signal = signal
        self.gate = Hysteresis(
            threshold, rearm=rearm, cooldown_s=cooldown_s, direction=direction
        )
        self.value: float | None = None
        self.triggers: list[Trigger] = []

    @property
    def active(self) -> bool:
        return self.gate.active

    def observe(self, now: float) -> Trigger | None:
        """Sample the signal once; the trigger if the gate fired."""
        value = self.signal()
        if value is None:
            return None
        self.value = value
        if not self.gate.observe(now, value):
            return None
        trigger = Trigger(now, self.name, self.host, value)
        self.triggers.append(trigger)
        return trigger


# -- per-host signals ------------------------------------------------------------


def heap_utilization_signal(
    host: typing.Any,
) -> typing.Callable[[], float | None]:
    """Live VMM heap utilization for a host; ``None`` while the VMM is
    down (a reboot in flight is not aging)."""

    def signal() -> float | None:
        vmm = getattr(host, "vmm", None)
        if vmm is None:
            return None
        return vmm.heap.utilization

    return signal


def cpu_runnable_signal(
    sim: typing.Any,
    host: typing.Any,
    window_s: float,
) -> typing.Callable[[], float | None]:
    """Windowed time-weighted mean of a host's ``cpu.runnable`` gauge.

    Reads the metric series the host's CPU pool already publishes
    (labelled ``cpu="<host>.cpu"``), integrating the last-write-wins step
    function over ``[now - window_s, now]`` and normalizing by the pool's
    core count — so the value is "mean runnable jobs per core", the
    load signal Watcher-style consolidation scores hosts by.  ``None``
    when the simulator's metrics registry is disabled.
    """
    if window_s <= 0:
        raise ControlError(f"window must be positive, got {window_s}")

    def signal() -> float | None:
        if not sim.metrics.enabled:
            return None
        gauge = sim.metrics.gauge("cpu.runnable", cpu=f"{host.name}.cpu")
        cores = max(getattr(host.machine.cpu.spec, "cores", 1), 1)
        end = sim.now
        start = max(end - window_s, 0.0)
        return windowed_mean(
            gauge.series_times, gauge.series_values, start, end
        ) / cores

    return signal


def nic_tx_signal(
    sim: typing.Any,
    host: typing.Any,
    window_s: float,
) -> typing.Callable[[], float | None]:
    """Windowed transmit rate of a host's NIC, in bytes per second.

    Reads the cumulative ``nic.tx_bytes`` counter the hardware layer
    already publishes (labelled ``nic="<host>.nic"``) and differences it
    over ``[now - window_s, now]``.  ``None`` when metrics are disabled.
    """
    if window_s <= 0:
        raise ControlError(f"window must be positive, got {window_s}")

    def signal() -> float | None:
        if not sim.metrics.enabled:
            return None
        counter = sim.metrics.counter("nic.tx_bytes", nic=f"{host.name}.nic")
        end = sim.now
        start = max(end - window_s, 0.0)
        return windowed_rate(
            counter.series_times, counter.series_values, start, end
        )

    return signal


def disk_busy_signal(
    sim: typing.Any,
    host: typing.Any,
    window_s: float,
) -> typing.Callable[[], float | None]:
    """Windowed utilization of a host's disk, as a busy fraction in [0, 1].

    Differences the cumulative ``disk.busy_seconds`` counter (labelled
    ``disk="<host>.disk"``) over ``[now - window_s, now]``: the increase
    is seconds the disk spent servicing transfers, so dividing by the
    window length is exactly iostat's ``%util``.  ``None`` when metrics
    are disabled.
    """
    if window_s <= 0:
        raise ControlError(f"window must be positive, got {window_s}")

    def signal() -> float | None:
        if not sim.metrics.enabled:
            return None
        counter = sim.metrics.counter(
            "disk.busy_seconds", disk=f"{host.name}.disk"
        )
        end = sim.now
        start = max(end - window_s, 0.0)
        return windowed_rate(
            counter.series_times, counter.series_values, start, end
        )

    return signal


def _series_level(
    times: typing.Sequence[float],
    values: typing.Sequence[float],
    at: float,
) -> float:
    """The last-write-wins level of a sample series at time ``at``
    (0 before the first sample)."""
    i = bisect_right(times, at)
    return float(values[i - 1]) if i > 0 else 0.0


def windowed_rate(
    times: typing.Sequence[float],
    values: typing.Sequence[float],
    start: float,
    end: float,
) -> float:
    """Mean increase rate of a cumulative counter over ``[start, end]``.

    The series is monotone samples of a counter's running total; the rate
    is ``(level(end) - level(start)) / (end - start)``, with the level
    before the first sample taken as 0.  A zero-length window returns 0
    (no time has passed, so no rate is attributable).
    """
    if end < start:
        raise ControlError(f"window end {end} before start {start}")
    if end == start:
        return 0.0
    return (
        _series_level(times, values, end) - _series_level(times, values, start)
    ) / (end - start)


def windowed_mean(
    times: typing.Sequence[float],
    values: typing.Sequence[float],
    start: float,
    end: float,
) -> float:
    """Time-weighted mean of a step function over ``[start, end]``.

    The series is last-write-wins samples ``(times[i], values[i])``; the
    value before the first sample is 0.  A zero-length window returns the
    level at ``end``.
    """
    if end < start:
        raise ControlError(f"window end {end} before start {start}")
    lo = bisect_right(times, start)
    carried = values[lo - 1] if lo > 0 else 0.0
    if end == start:
        return float(carried)
    hi = bisect_left(times, end, lo)
    total = 0.0
    level = carried
    cursor = start
    for i in range(lo, hi):
        total += level * (times[i] - cursor)
        cursor = times[i]
        level = values[i]
    total += level * (end - cursor)
    return total / (end - start)
