"""The closed loop: detect -> plan -> execute, on a fixed grid.

:class:`ControlLoop` is a simulation process.  Every ``interval_s``
seconds (on the drift-free grid from :func:`~repro.control.detectors
.next_tick`) it samples three detectors per host — CPU overload, CPU
underload, heap aging — snapshots the fleet into an inert
:class:`~repro.control.planner.FleetView`, asks the configured
:class:`~repro.control.planner.PlacementStrategy` for a
:class:`~repro.control.actions.Plan`, and applies it through the
:class:`~repro.control.executor.PlanExecutor`.

Determinism: the cycle grid is absolute (action durations never shift
later cycles), detectors and strategies are pure over their inputs, and
the only state consulted is the simulation's own — so the loop produces
identical decisions under ``REPRO_SANITIZE=1`` on every scheduler
backend.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.detectors import (
    Detector,
    cpu_runnable_signal,
    disk_busy_signal,
    heap_utilization_signal,
    next_tick,
    nic_tx_signal,
)
from repro.control.executor import MigrateFn, PlanExecutor
from repro.control.planner import (
    Constraints,
    PlacementStrategy,
    resolve_strategy,
    view_of_hosts,
)
from repro.errors import ControlError


@dataclasses.dataclass(frozen=True)
class ControlConfig:
    """All knobs of one control loop, TOML-shaped.

    Thresholds: ``overload``/``underload`` are mean runnable jobs per
    core over the trailing ``window_s`` (the CPU gauge the hardware
    layer already publishes); ``aging_threshold``/``aging_rearm`` are
    VMM heap utilization.  ``cooldown_s`` applies to every detector.
    """

    strategy: str = "fleet-order"
    interval_s: float = 60.0
    window_s: float = 60.0
    overload: float = 4.0
    underload: float = 0.05
    aging_threshold: float = 0.8
    aging_rearm: float = 0.4
    cooldown_s: float = 300.0
    migration_budget: int = 4
    min_hosts_up: int = 1
    rejuvenate: str = "warm"
    net_overload_bps: float = 0.0
    """NIC transmit rate (bytes/s over the trailing window) above which a
    host counts as overloaded; 0 disables the network detector."""
    disk_overload: float = 0.0
    """Disk busy fraction (iostat %util over the trailing window, in
    [0, 1]) above which a host counts as overloaded; 0 disables the
    disk detector."""

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ControlError(
                f"control interval must be positive, got {self.interval_s}"
            )
        if self.window_s <= 0:
            raise ControlError(
                f"detector window must be positive, got {self.window_s}"
            )
        if self.underload < 0 or self.overload <= self.underload:
            raise ControlError(
                "need 0 <= underload < overload, got "
                f"underload={self.underload} overload={self.overload}"
            )
        if not 0 < self.aging_threshold <= 1:
            raise ControlError(
                f"aging_threshold must be in (0, 1], got {self.aging_threshold}"
            )
        if not 0 <= self.aging_rearm <= self.aging_threshold:
            raise ControlError(
                "aging_rearm must be in [0, aging_threshold], got "
                f"{self.aging_rearm}"
            )
        if self.cooldown_s < 0:
            raise ControlError(
                f"cooldown must be >= 0, got {self.cooldown_s}"
            )
        if self.net_overload_bps < 0:
            raise ControlError(
                f"net_overload_bps must be >= 0, got {self.net_overload_bps}"
            )
        if not 0 <= self.disk_overload <= 1:
            raise ControlError(
                f"disk_overload must be in [0, 1], got {self.disk_overload}"
            )

    def constraints(self) -> Constraints:
        """The SLA envelope strategies plan inside."""
        return Constraints(
            migration_budget=self.migration_budget,
            min_hosts_up=self.min_hosts_up,
            rejuvenate=self.rejuvenate,
        )


class ControlLoop:
    """One autonomic controller over a fixed set of hosts."""

    def __init__(
        self,
        sim: typing.Any,
        hosts: typing.Sequence[typing.Any],
        config: ControlConfig | None = None,
        migrate: MigrateFn | None = None,
        strategy: PlacementStrategy | None = None,
    ) -> None:
        self.sim = sim
        self.config = config or ControlConfig()
        self.strategy = strategy or resolve_strategy(self.config.strategy)
        self.constraints = self.config.constraints()
        self._hosts = list(hosts)
        self.executor = PlanExecutor(
            sim, {host.name: host for host in self._hosts}, migrate=migrate
        )
        self._detectors: dict[str, list[Detector]] = {}
        for host in self._hosts:
            cpu = cpu_runnable_signal(sim, host, self.config.window_s)
            detectors = [
                Detector(
                    "overload", host.name, cpu,
                    threshold=self.config.overload,
                    cooldown_s=self.config.cooldown_s,
                    direction="above",
                ),
                Detector(
                    "underload", host.name, cpu,
                    threshold=self.config.underload,
                    cooldown_s=self.config.cooldown_s,
                    direction="below",
                ),
                Detector(
                    "aging", host.name, heap_utilization_signal(host),
                    threshold=self.config.aging_threshold,
                    rearm=self.config.aging_rearm,
                    cooldown_s=self.config.cooldown_s,
                    direction="above",
                ),
            ]
            if self.config.net_overload_bps > 0:
                detectors.append(
                    Detector(
                        "net", host.name,
                        nic_tx_signal(sim, host, self.config.window_s),
                        threshold=self.config.net_overload_bps,
                        cooldown_s=self.config.cooldown_s,
                        direction="above",
                    )
                )
            if self.config.disk_overload > 0:
                detectors.append(
                    Detector(
                        "disk", host.name,
                        disk_busy_signal(sim, host, self.config.window_s),
                        threshold=self.config.disk_overload,
                        cooldown_s=self.config.cooldown_s,
                        direction="above",
                    )
                )
            self._detectors[host.name] = detectors
        self.plans: list = []
        self.cycles = 0

    def run(self, until: float) -> typing.Iterator[typing.Any]:
        """The loop process: tick on the grid until the horizon."""
        sim = self.sim
        origin = sim.now
        while True:
            tick = next_tick(origin, self.config.interval_s, sim.now)
            if tick > until:
                if until > sim.now:
                    yield sim.timeout(until - sim.now)
                return
            yield sim.timeout(tick - sim.now)
            yield from self._cycle(tick)

    def _cycle(self, now: float) -> typing.Iterator[typing.Any]:
        overloaded: set[str] = set()
        underloaded: set[str] = set()
        aging: set[str] = set()
        loads: dict[str, float] = {}
        for name, detectors in self._detectors.items():
            for detector in detectors:
                detector.observe(now)
                if detector.name == "overload" and detector.value is not None:
                    loads[name] = detector.value
                if not detector.active:
                    continue
                if detector.name == "underload":
                    underloaded.add(name)
                elif detector.name == "aging":
                    aging.add(name)
                else:  # overload / net / disk: all pressure signals
                    overloaded.add(name)
        view = view_of_hosts(
            self._hosts,
            loads=loads,
            overloaded=overloaded,
            underloaded=underloaded,
            aging=aging,
        )
        plan = self.strategy.plan(view, self.constraints)
        with self.sim.spans.span(
            "control.cycle", actor="control", detail=self.strategy.name
        ):
            yield from self.executor.apply(plan, cycle=self.cycles)
        self.plans.append(plan)
        self.cycles += 1

    def trigger_log(self) -> list[dict]:
        """Every detector firing as plain data, in (time, host, name) order.

        The per-firing complement of :meth:`summary`'s count table — the
        decision-timeline reconstruction in :mod:`repro.obs` joins these
        against the audit's action records to recover each decision's
        originating signal sample.
        """
        log = [
            {
                "time": trigger.time,
                "detector": trigger.detector,
                "host": trigger.host,
                "value": trigger.value,
            }
            for detectors in self._detectors.values()
            for detector in detectors
            for trigger in detector.triggers
        ]
        log.sort(key=lambda t: (t["time"], t["host"], t["detector"]))
        return log

    def summary(self) -> dict:
        """Plain-data account of the loop's run, for reports."""
        triggers: dict[str, int] = {}
        for detectors in self._detectors.values():
            for detector in detectors:
                triggers[detector.name] = (
                    triggers.get(detector.name, 0) + len(detector.triggers)
                )
        return {
            "strategy": self.strategy.name,
            "cycles": self.cycles,
            "migrations": self.executor.migrations,
            "rejuvenations": self.executor.rejuvenations,
            "skipped": self.executor.skipped,
            "failed": self.executor.failed,
            "deferred": sum(len(plan.deferred) for plan in self.plans),
            "triggers": triggers,
            "trigger_log": self.trigger_log(),
            "audit": list(self.executor.audit),
        }
