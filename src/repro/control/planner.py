"""Pluggable placement strategies over an inert fleet view.

The planner side of the control plane is pure: a
:class:`PlacementStrategy` maps a :class:`FleetView` (plain frozen data
snapshotted from live hosts by :func:`view_of_hosts`) and SLA
:class:`Constraints` to a :class:`~repro.control.actions.Plan`.  No
strategy touches simulation state, draws randomness, or iterates a set —
given the same view they emit the same plan, which is what makes the
closed loop deterministic across seeds, backends and shardings.

Four strategies ship:

=====================  ========================================================
name                   policy
=====================  ========================================================
fleet-order            no migrations; rejuvenate aging hosts in fleet order —
                       bit-identical to the pre-control-plane
                       ``cluster/planner.py`` + ``rolling.py`` ordering
first-fit-decreasing   classic bin-packing: evacuate underloaded hosts,
                       largest VM first, first host it fits on; rejuvenate
                       hosts emptied by the packing
consolidation          migration-count-minimizing (à la OpenStack Watcher's
                       BasicConsolidation): evacuate the fewest-VM donors
                       first, whole hosts atomically, onto the most-loaded
                       receivers
aging-aware            rejuvenation ordered most-aged-first; migrations
                       steered onto the least-aged hosts (they will not be
                       disturbed by rejuvenation soon)
=====================  ========================================================

Constraint violations degrade, never raise: actions past the migration
budget or the minimum-hosts-up floor land in ``plan.deferred`` with the
constraint named in ``reason``, and the next control cycle replans from
the fresher view.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.actions import (
    Action,
    ActionKind,
    Plan,
    migrate,
    rejuvenate,
)
from repro.errors import ControlError


@dataclasses.dataclass(frozen=True)
class VMView:
    """One VM as the planner sees it."""

    name: str
    host: str
    memory_bytes: int


@dataclasses.dataclass(frozen=True)
class HostView:
    """One host as the planner sees it: inventory plus detector levels."""

    name: str
    capacity_bytes: int
    vms: tuple[VMView, ...] = ()
    load: float = 0.0
    heap_utilization: float = 0.0
    overloaded: bool = False
    underloaded: bool = False
    aging: bool = False

    @property
    def used_bytes(self) -> int:
        return sum(vm.memory_bytes for vm in self.vms)

    @property
    def free_bytes(self) -> int:
        return max(self.capacity_bytes - self.used_bytes, 0)


@dataclasses.dataclass(frozen=True)
class FleetView:
    """The whole fleet, in fleet (build) order."""

    hosts: tuple[HostView, ...] = ()

    @property
    def size(self) -> int:
        return len(self.hosts)

    def index_of(self, host_name: str) -> int:
        for index, host in enumerate(self.hosts):
            if host.name == host_name:
                return index
        raise ControlError(f"no host named {host_name!r} in the fleet view")


@dataclasses.dataclass(frozen=True)
class Constraints:
    """The SLA envelope a plan must stay inside."""

    migration_budget: int = 4
    min_hosts_up: int = 1
    rejuvenate: str = "warm"

    def __post_init__(self) -> None:
        if self.migration_budget < 0:
            raise ControlError(
                f"migration_budget must be >= 0, got {self.migration_budget}"
            )
        if self.min_hosts_up < 0:
            raise ControlError(
                f"min_hosts_up must be >= 0, got {self.min_hosts_up}"
            )
        if self.rejuvenate not in ("warm", "cold"):
            raise ControlError(
                f"rejuvenate must be 'warm' or 'cold', got {self.rejuvenate!r}"
            )


def view_of_hosts(
    hosts: typing.Iterable[typing.Any],
    loads: typing.Mapping[str, float] | None = None,
    overloaded: typing.Container[str] = (),
    underloaded: typing.Container[str] = (),
    aging: typing.Container[str] = (),
) -> FleetView:
    """Snapshot live host objects (duck-typed) into an inert view.

    Works on anything exposing ``name``, ``vm_specs`` (name -> spec with
    ``memory_bytes``) and optionally ``vmm``/``machine`` — the real
    :class:`~repro.core.host.Host` or a test double.  Detector levels
    arrive as membership containers so the loop can stamp its gate state
    onto the view without the view layer knowing about detectors.
    """
    loads = loads if loads is not None else {}
    views = []
    for host in hosts:
        vms = tuple(
            VMView(vm_name, host.name, int(spec.memory_bytes))
            for vm_name, spec in host.vm_specs.items()
        )
        vmm = getattr(host, "vmm", None)
        heap = float(vmm.heap.utilization) if vmm is not None else 0.0
        machine = getattr(host, "machine", None)
        capacity = (
            int(machine.memory.total_bytes)
            if machine is not None
            else sum(vm.memory_bytes for vm in vms)
        )
        views.append(
            HostView(
                name=host.name,
                capacity_bytes=capacity,
                vms=vms,
                load=float(loads.get(host.name, 0.0)),
                heap_utilization=heap,
                overloaded=host.name in overloaded,
                underloaded=host.name in underloaded,
                aging=host.name in aging,
            )
        )
    return FleetView(tuple(views))


def sla_waves(
    names: typing.Sequence[str], concurrency: int
) -> tuple[tuple[str, ...], ...]:
    """Chunk a rejuvenation order into SLA-sized concurrent waves.

    Exactly the wave shape :class:`~repro.cluster.planner
    .MaintenancePlanner` has always produced: consecutive chunks of
    ``concurrency`` hosts, last wave short.
    """
    if concurrency <= 0:
        raise ControlError(
            f"wave concurrency must be >= 1, got {concurrency}"
        )
    names = list(names)
    return tuple(
        tuple(names[i : i + concurrency])
        for i in range(0, len(names), concurrency)
    )


# -- the strategy interface -------------------------------------------------------


class PlacementStrategy:
    """Base class: a pure (view, constraints) -> plan function pair."""

    name: typing.ClassVar[str] = ""

    def plan(self, view: FleetView, constraints: Constraints) -> Plan:
        """The actions this strategy wants this cycle."""
        raise NotImplementedError

    def rejuvenation_order(self, view: FleetView) -> tuple[str, ...]:
        """Host order for a full-fleet rejuvenation campaign."""
        return tuple(host.name for host in view.hosts)

    # -- shared planning helpers ---------------------------------------------------

    def _pack(
        self,
        view: FleetView,
        constraints: Constraints,
        donors: typing.Sequence[HostView],
        receivers: typing.Sequence[HostView],
        reason: str,
    ) -> tuple[list[Action], list[Action], list[str]]:
        """First-fit VMs off ``donors`` onto ``receivers``, largest first.

        Returns ``(actions, deferred, evacuated donor names)``.  Budget
        overruns and unplaceable VMs defer; ties break on the donor's
        fleet index then the VM name, so packing is deterministic.
        """
        free = {r.name: r.free_bytes for r in receivers}
        vms = sorted(
            (vm for donor in donors for vm in donor.vms),
            key=lambda vm: (-vm.memory_bytes, view.index_of(vm.host), vm.name),
        )
        budget = constraints.migration_budget
        actions: list[Action] = []
        deferred: list[Action] = []
        moved = {donor.name: 0 for donor in donors}
        for vm in vms:
            destination = None
            for receiver in receivers:
                if vm.memory_bytes <= free[receiver.name]:
                    destination = receiver.name
                    break
            if destination is None:
                deferred.append(
                    Action(
                        ActionKind.MIGRATE,
                        vm=vm.name,
                        source=vm.host,
                        reason="no host has capacity for this VM",
                    )
                )
                continue
            if budget <= 0:
                deferred.append(
                    migrate(
                        vm.name, vm.host, destination,
                        reason="migration budget exhausted",
                    )
                )
                continue
            free[destination] -= vm.memory_bytes
            budget -= 1
            moved[vm.host] += 1
            actions.append(migrate(vm.name, vm.host, destination, reason=reason))
        evacuated = [
            donor.name
            for donor in donors
            if donor.vms and moved[donor.name] == len(donor.vms)
        ]
        return actions, deferred, evacuated

    def _rejuvenations(
        self,
        view: FleetView,
        constraints: Constraints,
        candidates: typing.Sequence[tuple[str, str]],
    ) -> tuple[list[Action], list[Action]]:
        """Rejuvenate ``(host, reason)`` candidates under min-hosts-up.

        At most ``size - min_hosts_up`` hosts may be taken down per
        cycle; the overflow defers (the next cycle replans them).
        """
        allowed = max(view.size - constraints.min_hosts_up, 0)
        actions: list[Action] = []
        deferred: list[Action] = []
        for host_name, reason in candidates:
            action = rejuvenate(host_name, constraints.rejuvenate, reason=reason)
            if len(actions) < allowed:
                actions.append(action)
            else:
                deferred.append(
                    dataclasses.replace(
                        action,
                        reason=f"min_hosts_up={constraints.min_hosts_up} "
                        "forbids taking another host down",
                    )
                )
        return actions, deferred

    def _consolidate(
        self,
        view: FleetView,
        constraints: Constraints,
        receivers: typing.Sequence[HostView],
        move_reason: str,
    ) -> Plan:
        """The shared consolidate-then-rejuvenate-emptied-hosts shape."""
        donors = [h for h in view.hosts if h.underloaded and h.vms]
        receiver_names = {r.name for r in receivers}
        donors = [d for d in donors if d.name not in receiver_names]
        moves, deferred, evacuated = self._pack(
            view, constraints, donors, receivers, move_reason
        )
        candidates = [(name, "evacuated underloaded host") for name in evacuated]
        evacuated_set = set(evacuated)
        candidates.extend(
            (h.name, "heap aging past threshold")
            for h in self._aging_order(view)
            if h.name not in evacuated_set
        )
        rejuvs, over = self._rejuvenations(view, constraints, candidates)
        return Plan(
            strategy=self.name,
            actions=tuple(moves) + tuple(rejuvs),
            deferred=tuple(deferred) + tuple(over),
        )

    def _aging_order(self, view: FleetView) -> list[HostView]:
        """Aging hosts in the order this strategy rejuvenates them."""
        return [h for h in view.hosts if h.aging]


STRATEGY_REGISTRY: dict[str, type[PlacementStrategy]] = {}


def register_strategy(
    cls: type[PlacementStrategy],
) -> type[PlacementStrategy]:
    """Class decorator adding a strategy to the named registry."""
    if not cls.name:
        raise ControlError(f"{cls.__name__} declares no strategy name")
    STRATEGY_REGISTRY[cls.name] = cls
    return cls


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(STRATEGY_REGISTRY))


def resolve_strategy(name: str) -> PlacementStrategy:
    """A fresh instance of the named strategy."""
    cls = STRATEGY_REGISTRY.get(name)
    if cls is None:
        raise ControlError(
            f"unknown placement strategy {name!r}; "
            f"known: {', '.join(strategy_names())}"
        )
    return cls()


@register_strategy
class FleetOrderStrategy(PlacementStrategy):
    """The bit-identical default: fleet order, no migrations.

    ``rejuvenation_order`` reproduces exactly what
    ``cluster/planner.py`` and ``cluster/rolling.py`` did before the
    strategy interface existed — hosts in build order — and ``plan``
    limits itself to rejuvenating hosts the aging detector flagged.
    """

    name = "fleet-order"

    def plan(self, view: FleetView, constraints: Constraints) -> Plan:
        candidates = [
            (h.name, "heap aging past threshold") for h in view.hosts if h.aging
        ]
        actions, deferred = self._rejuvenations(view, constraints, candidates)
        return Plan(
            strategy=self.name, actions=tuple(actions), deferred=tuple(deferred)
        )


@register_strategy
class FirstFitDecreasingStrategy(PlacementStrategy):
    """Bin-pack underloaded hosts empty: largest VM first, first fit."""

    name = "first-fit-decreasing"

    def plan(self, view: FleetView, constraints: Constraints) -> Plan:
        receivers = self._receivers(view, constraints)
        return self._consolidate(
            view, constraints, receivers, "consolidate onto loaded host"
        )

    def _receivers(
        self, view: FleetView, constraints: Constraints
    ) -> list[HostView]:
        receivers = [h for h in view.hosts if not h.underloaded]
        if not receivers:
            # A fully idle fleet still keeps the SLA floor serving.
            keep = max(constraints.min_hosts_up, 1)
            receivers = list(view.hosts[:keep])
        return receivers


@register_strategy
class ConsolidationStrategy(FirstFitDecreasingStrategy):
    """Migration-count-minimizing consolidation (Watcher-shaped).

    Donors are evacuated whole or not at all, fewest-VM donors first —
    each completed evacuation buys one rejuvenable host for the minimum
    number of migrations — and land on the most-loaded receivers first,
    concentrating the fleet on the fewest hosts.
    """

    name = "consolidation"

    def plan(self, view: FleetView, constraints: Constraints) -> Plan:
        receivers = sorted(
            self._receivers(view, constraints),
            key=lambda h: (-h.load, view.index_of(h.name)),
        )
        receiver_names = {r.name for r in receivers}
        donors = sorted(
            (
                h for h in view.hosts
                if h.underloaded and h.vms and h.name not in receiver_names
            ),
            key=lambda h: (len(h.vms), view.index_of(h.name)),
        )
        free = {r.name: r.free_bytes for r in receivers}
        budget = constraints.migration_budget
        moves: list[Action] = []
        deferred: list[Action] = []
        evacuated: list[str] = []
        for donor in donors:
            placed = self._place_whole(donor, receivers, free)
            if placed is None:
                deferred.extend(
                    Action(
                        ActionKind.MIGRATE,
                        vm=vm.name,
                        source=vm.host,
                        reason="no receiver fits this donor's VMs",
                    )
                    for vm in donor.vms
                )
                continue
            if len(donor.vms) > budget:
                deferred.extend(
                    migrate(
                        vm.name, donor.name, destination,
                        reason="migration budget exhausted",
                    )
                    for vm, destination in placed
                )
                continue
            for vm, destination in placed:
                free[destination] -= vm.memory_bytes
                moves.append(
                    migrate(
                        vm.name, donor.name, destination,
                        reason="consolidate donor emptied atomically",
                    )
                )
            budget -= len(donor.vms)
            evacuated.append(donor.name)
        candidates = [(name, "evacuated underloaded host") for name in evacuated]
        evacuated_set = set(evacuated)
        candidates.extend(
            (h.name, "heap aging past threshold")
            for h in self._aging_order(view)
            if h.name not in evacuated_set
        )
        rejuvs, over = self._rejuvenations(view, constraints, candidates)
        return Plan(
            strategy=self.name,
            actions=tuple(moves) + tuple(rejuvs),
            deferred=tuple(deferred) + tuple(over),
        )

    def _place_whole(
        self,
        donor: HostView,
        receivers: typing.Sequence[HostView],
        free: dict[str, int],
    ) -> list[tuple[VMView, str]] | None:
        """A full placement of the donor's VMs, or ``None`` if any fails."""
        trial = dict(free)
        placed: list[tuple[VMView, str]] = []
        for vm in sorted(
            donor.vms, key=lambda v: (-v.memory_bytes, v.name)
        ):
            destination = None
            for receiver in receivers:
                if vm.memory_bytes <= trial[receiver.name]:
                    destination = receiver.name
                    break
            if destination is None:
                return None
            trial[destination] -= vm.memory_bytes
            placed.append((vm, destination))
        return placed


@register_strategy
class AgingAwareStrategy(FirstFitDecreasingStrategy):
    """Placement that minds the rejuvenation schedule.

    Campaign order is most-aged-first (heap utilization descending,
    fleet order breaking ties), and migrations land on the *least*-aged
    receivers: a long-lived VM placed there will not be disturbed by a
    rejuvenation again soon.  (The Watcher-style refinement of steering
    short-lived VMs *toward* soon-to-rejuvenate hosts needs lifetime
    forecasts the simulation does not model.)
    """

    name = "aging-aware"

    def rejuvenation_order(self, view: FleetView) -> tuple[str, ...]:
        ordered = sorted(
            view.hosts,
            key=lambda h: (-h.heap_utilization, view.index_of(h.name)),
        )
        return tuple(host.name for host in ordered)

    def plan(self, view: FleetView, constraints: Constraints) -> Plan:
        receivers = sorted(
            self._receivers(view, constraints),
            key=lambda h: (h.heap_utilization, view.index_of(h.name)),
        )
        return self._consolidate(
            view, constraints, receivers, "steer VM onto least-aged host"
        )

    def _aging_order(self, view: FleetView) -> list[HostView]:
        return sorted(
            (h for h in view.hosts if h.aging),
            key=lambda h: (-h.heap_utilization, view.index_of(h.name)),
        )
