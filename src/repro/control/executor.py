"""Plan executor: applies typed actions to live hosts, audited.

The executor is the only part of the control plane that touches
simulation state, and it does so exclusively through mechanisms that
already exist — ``host.reboot(strategy)`` for rejuvenation and an
injected ``migrate(source, target, vm)`` coroutine for live migration
(wired by the scenario layer from :mod:`repro.cluster.migration`; the
control layer sits *below* cluster and never imports it).  Every action
lands one ``control.decision`` trace record and one audit dict whether
it succeeded, failed, was skipped, or was deferred by the planner, so a
report replays exactly why the fleet looks the way it does.
"""

from __future__ import annotations

import typing

from repro.control.actions import Action, ActionKind, Plan, REJUVENATE_KINDS
from repro.errors import ControlError, ReproError

MigrateFn = typing.Callable[[str, str, str], typing.Iterator[typing.Any]]
"""Injected migration mechanism: ``migrate(source, target, vm)`` is a
simulation coroutine performing one live migration."""


class PlanExecutor:
    """Applies :class:`Plan` actions sequentially inside the simulation."""

    def __init__(
        self,
        sim: typing.Any,
        hosts: typing.Mapping[str, typing.Any],
        migrate: MigrateFn | None = None,
    ) -> None:
        self.sim = sim
        self.hosts = dict(hosts)
        self.migrate = migrate
        self.audit: list[dict] = []
        self.migrations = 0
        self.rejuvenations = 0
        self.skipped = 0
        self.failed = 0

    def apply(self, plan: Plan, cycle: int) -> typing.Iterator[typing.Any]:
        """Apply one plan's actions in order; record its deferrals."""
        for action in plan.actions:
            yield from self._apply_one(action, cycle)
        for action in plan.deferred:
            self._record(cycle, action, "deferred")

    # -- one action ----------------------------------------------------------------

    def _apply_one(
        self, action: Action, cycle: int
    ) -> typing.Iterator[typing.Any]:
        with self.sim.spans.span(
            "control.action", actor="control", detail=action.kind.value
        ):
            if action.kind is ActionKind.NO_OP:
                self._record(cycle, action, "noop")
            elif action.kind is ActionKind.MIGRATE:
                yield from self._apply_migration(action, cycle)
            elif action.kind in REJUVENATE_KINDS:
                yield from self._apply_rejuvenation(action, cycle)
            else:  # pragma: no cover - enum is closed
                raise ControlError(f"unknown action kind {action.kind!r}")

    def _apply_migration(
        self, action: Action, cycle: int
    ) -> typing.Iterator[typing.Any]:
        if (
            self.migrate is None
            or action.vm is None
            or action.source is None
            or action.target is None
        ):
            self.skipped += 1
            self._record(cycle, action, "skipped")
            return
        try:
            yield from self.migrate(action.source, action.target, action.vm)
        except ReproError:
            self.failed += 1
            self._record(cycle, action, "failed")
            return
        self.migrations += 1
        self._record(cycle, action, "applied")

    def _apply_rejuvenation(
        self, action: Action, cycle: int
    ) -> typing.Iterator[typing.Any]:
        host = self.hosts.get(action.target or "")
        if host is None:
            self.skipped += 1
            self._record(cycle, action, "skipped")
            return
        strategy = (
            "cold" if action.kind is ActionKind.REJUVENATE_COLD else "warm"
        )
        try:
            yield from host.reboot(strategy)
        except ReproError:
            self.failed += 1
            self._record(cycle, action, "failed")
            return
        self.rejuvenations += 1
        self._record(cycle, action, "applied")

    # -- the audit trail -----------------------------------------------------------

    def _record(self, cycle: int, action: Action, outcome: str) -> None:
        # The innermost open control-actor span is the control.action span
        # while _apply_one is on the stack, and the enclosing control.cycle
        # span for deferred actions (recorded outside any action span) —
        # either way it is the join key that lets repro.obs reconstruct
        # this decision's causal chain from the trace alone.
        span_id = self.sim.spans.current("control")
        entry = {
            "time": self.sim.now,
            "cycle": cycle,
            "action": action.kind.value,
            "target": action.target or "",
            "outcome": outcome,
            "span": span_id,
        }
        extras = {}
        if action.vm is not None:
            extras["vm"] = action.vm
        if action.source is not None:
            extras["source"] = action.source
        if action.reason:
            extras["reason"] = action.reason
        entry.update(extras)
        self.audit.append(entry)
        self.sim.trace.record(
            "control.decision",
            cycle=cycle,
            action=action.kind.value,
            target=action.target or "",
            outcome=outcome,
            span=span_id,
            **extras,
        )
