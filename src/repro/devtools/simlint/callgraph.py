"""The cross-module call graph and the SL013 reachability checker.

SL013 turns SL001/SL002 from per-module policy lists into flow-derived
facts: a wall-clock or unseeded-RNG call is a determinism bug *because*
the simulation can reach it, so the rule walks the call graph from the
simulation entry points —

* ``repro.simkernel.kernel.Simulator.run`` (the event loop), and
* every coroutine handed to ``sim.spawn(...)`` anywhere in the project
  (process roots)

— and reports each sink it can reach, with the full call chain from
entry point to sink in the finding message so the report explains
*why* the code is simulation-reachable, not just that it is.

Edge resolution is confident-only (see :mod:`.index`): direct names,
imported functions, ``self``/``cls`` methods (following declared base
classes), and methods on receivers whose class is pinned by an
annotation or a constructor assignment.  Unresolvable dynamic dispatch
is dropped, so SL013 under-approximates; the local SL001/SL002 rules
remain the per-call-site net.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.simlint.index import ProjectIndex

ENTRY_POINTS = ("repro.simkernel.kernel.Simulator.run",)
"""Call-graph roots besides spawned process coroutines."""


class SinkFinding(typing.NamedTuple):
    """One SL013 violation, located at the sink call."""

    path: str
    line: int
    col: int
    message: str


class CallGraph:
    """Resolved edges over every indexed function."""

    def __init__(self, project: "ProjectIndex") -> None:
        self.project = project
        self.functions = project.function_table()
        self.classes = project.class_table()
        self.edges: dict[str, list[str]] = {}
        for name in self.functions:
            self.edges[name] = self._resolve_edges(name)

    # -- resolution --------------------------------------------------------

    def _method_lookup(self, class_ref: str, method: str) -> str | None:
        """Find ``method`` on ``class_ref`` or its declared bases."""
        seen: set[str] = set()
        queue = [class_ref]
        while queue:
            ref = queue.pop(0)
            if ref in seen:
                continue
            seen.add(ref)
            candidate = f"{ref}.{method}"
            if candidate in self.functions:
                return candidate
            fact = self.classes.get(ref)
            if fact:
                queue.extend(fact["bases"])
        return None

    def resolve_ref(self, fact: dict) -> str | None:
        """A call fact's target function qualname, if resolvable."""
        ref = fact["ref"]
        via = fact["via"]
        if via == "direct":
            if ref in self.functions:
                return ref
            if ref in self.classes:  # constructor call
                return self._method_lookup(ref, "__init__")
            return None
        if via in ("method", "call"):
            owner, _, attr = ref.rpartition(".")
            if via == "call":  # calling a typed variable: its __call__
                return self._method_lookup(ref, "__call__")
            if owner:
                return self._method_lookup(owner, attr)
        return None

    def _resolve_edges(self, name: str) -> list[str]:
        _, _, fact = self.functions[name]
        out = []
        for call in fact["calls"]:
            target = self.resolve_ref(call)
            if target is not None and target != name:
                out.append(target)
        return sorted(set(out))

    # -- entry points ------------------------------------------------------

    def entry_points(self) -> list[str]:
        entries = [e for e in ENTRY_POINTS if e in self.functions]
        for index in sorted(
            self.project.modules.values(), key=lambda m: m.path
        ):
            for spawn in index.spawns:
                target = self.resolve_ref(spawn)
                if target is not None:
                    entries.append(target)
        return sorted(set(entries))

    # -- reachability ------------------------------------------------------

    def reachable(self, entries: typing.Sequence[str]) -> dict[str, str | None]:
        """BFS parent map over the edge set: function -> caller (None for
        an entry point).  BFS from sorted entries gives each function its
        shortest, deterministically-chosen witness chain."""
        parent: dict[str, str | None] = {}
        queue: list[str] = []
        for entry in entries:
            if entry not in parent:
                parent[entry] = None
                queue.append(entry)
        while queue:
            node = queue.pop(0)
            for target in self.edges.get(node, ()):
                if target not in parent:
                    parent[target] = node
                    queue.append(target)
        return parent

    def chain(self, parent: dict[str, str | None], node: str) -> list[str]:
        path = [node]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])  # type: ignore[arg-type]
        return list(reversed(path))


def check_reachability(
    project: "ProjectIndex",
    sink_files: typing.AbstractSet[str],
) -> list[SinkFinding]:
    """All SL013 findings.

    ``sink_files`` restricts which files' sinks count (strict-profile
    files; relaxed test/benchmark code may touch clocks freely, and the
    rng module/devtools never register sinks at index time).
    """
    graph = CallGraph(project)
    entries = graph.entry_points()
    if not entries:
        return []
    parent = graph.reachable(entries)

    findings: list[SinkFinding] = []
    seen: set[tuple[str, int, int]] = set()
    for name in sorted(parent):
        index, _, fact = graph.functions[name]
        if index.path not in sink_files:
            continue
        for sink in fact["sinks"]:
            site = (index.path, sink["line"], sink["col"])
            if site in seen:
                continue
            seen.add(site)
            chain = " -> ".join(graph.chain(parent, name))
            findings.append(
                SinkFinding(
                    index.path,
                    sink["line"],
                    sink["col"],
                    f"{sink['qual']}() is reachable from the simulation "
                    f"({'wall clock' if sink['kind'] == 'wallclock' else 'unseeded RNG'}); "
                    f"call chain: {chain} -> {sink['qual']}",
                )
            )
    return findings
