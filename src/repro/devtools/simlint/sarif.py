"""SARIF 2.1.0 rendering for CI code-scanning upload.

Hand-rolled against the published schema shape (no dependency on a
validator): one run, one driver, one ``reportingDescriptor`` per registered
rule, one ``result`` per finding with a physical location.  Regions use
SARIF's 1-based ``startColumn``; simlint columns are 0-based AST offsets,
converted here (the text renderer in :mod:`.analyzer` does the same).
"""

from __future__ import annotations

import json
import typing

from repro.devtools.simlint.rules import RULES

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.simlint.analyzer import Finding, LintError

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _tool_component() -> dict:
    return {
        "name": "simlint",
        "informationUri": "https://example.invalid/repro/simlint",
        "rules": [
            {
                "id": rule,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": "error"},
            }
            for rule, summary in sorted(RULES.items())
        ],
    }


def _result(finding: "Finding") -> dict:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def _notification(error: "LintError") -> dict:
    return {
        "level": "error",
        "message": {"text": error.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": error.path},
                }
            }
        ],
    }


def to_sarif(
    findings: typing.Sequence["Finding"],
    errors: typing.Sequence["LintError"] = (),
) -> dict:
    """The findings as a SARIF 2.1.0 log object (JSON-serializable)."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": _tool_component()},
                "results": [_result(f) for f in findings],
                "invocations": [
                    {
                        "executionSuccessful": not errors,
                        "toolExecutionNotifications": [
                            _notification(e) for e in errors
                        ],
                    }
                ],
            }
        ],
    }


def render_sarif(
    findings: typing.Sequence["Finding"],
    errors: typing.Sequence["LintError"] = (),
) -> str:
    """The SARIF log as an indented JSON string."""
    return json.dumps(to_sarif(findings, errors), indent=2, sort_keys=True)
