"""The two-phase analysis engine: file layer, phase-2 rules, reporting.

Phase 1 handles each file independently — parse, run the local rules
(:mod:`.rules`), extract a :class:`~repro.devtools.simlint.index.ModuleIndex`,
parse suppression comments.  Because phase 1 is per-file and pure, it is
what the incremental cache (:mod:`.cache`) memoizes by content hash.

Phase 2 merges the indices into a :class:`~repro.devtools.simlint.index.ProjectIndex`
and runs the cross-module rules: SL011 layering/cycles (:mod:`.layers`),
SL012 frozen-spec mutation, SL013 call-graph reachability
(:mod:`.callgraph`), SL014 symbol-table privacy, and SL015 stale
suppressions.  Phase 2 always recomputes — it is cheap graph work — so a
cache-warmed run reports exactly what a cold run would.

Suppression grammar (comments only — string literals never suppress):

* ``# simlint: skip`` — suppress every finding on this line;
* ``# simlint: skip=SL001,SL003`` — suppress just those rules here;
* ``# simlint: skip-file`` / ``# simlint: skip-file=SL005`` — same, for
  the whole file (put it near the top by convention, any line works).

Suppressed findings are dropped from the report but *counted*, and a
directive that suppresses nothing is itself an SL015 finding.  SL015
cannot be suppressed — a suppression that hides the report of its own
uselessness would never be cleaned up.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import os
import tokenize
import typing

from repro.devtools.simlint.callgraph import check_reachability
from repro.devtools.simlint.index import (
    ModuleIndex,
    ProjectIndex,
    build_module_index,
    package_of,
    sha256_text,
)
from repro.devtools.simlint.layers import check_layers
from repro.devtools.simlint.rules import (
    ModulePolicy,
    RuleVisitor,
    privacy_code,
    privacy_message,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.simlint.cache import ResultCache


@dataclasses.dataclass(frozen=True)
class Finding:
    """One reported rule violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class LintError:
    """A file simlint could not analyze (syntax error, unreadable)."""

    path: str
    message: str


_DIRECTIVE = "simlint:"


@dataclasses.dataclass(frozen=True)
class Directive:
    """One parsed ``# simlint:`` suppression comment."""

    line: int
    keyword: str  # "skip" or "skip-file"
    rules: tuple[str, ...]  # empty = every rule

    def matches(self, rule: str, line: int) -> bool:
        if self.rules and rule not in self.rules:
            return False
        return self.keyword == "skip-file" or line == self.line

    def render(self) -> str:
        suffix = f"={','.join(self.rules)}" if self.rules else ""
        return f"# simlint: {self.keyword}{suffix}"

    def to_dict(self) -> dict:
        return {"line": self.line, "keyword": self.keyword, "rules": list(self.rules)}

    @classmethod
    def from_dict(cls, data: dict) -> "Directive":
        return cls(data["line"], data["keyword"], tuple(data["rules"]))


class _Suppressions:
    """One file's suppression directives, tracking which ones fired."""

    def __init__(self, directives: typing.Iterable[Directive] = ()) -> None:
        self.directives = list(directives)
        self.used: set[int] = set()

    @property
    def count(self) -> int:
        return len(self.directives)

    def suppresses(self, rule: str, line: int) -> bool:
        if rule == "SL015":
            return False  # see module docstring: SL015 is unsuppressable
        hit = False
        for i, directive in enumerate(self.directives):
            if directive.matches(rule, line):
                self.used.add(i)
                hit = True
        return hit

    def stale(self) -> list[Directive]:
        """Directives that suppressed nothing this run (SL015 material)."""
        return [
            d for i, d in enumerate(self.directives) if i not in self.used
        ]

    @classmethod
    def parse(cls, source: str) -> "_Suppressions":
        sup = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenizeError:
            return sup  # the AST parse will report the real problem
        for line, comment in comments:
            body = comment.lstrip("#").strip()
            if not body.startswith(_DIRECTIVE):
                continue
            directive = body[len(_DIRECTIVE):].strip()
            keyword, _, rules_part = directive.partition("=")
            keyword = keyword.strip()
            if keyword not in ("skip", "skip-file"):
                continue
            rules = tuple(
                sorted(
                    r.strip().upper() for r in rules_part.split(",") if r.strip()
                )
            )
            sup.directives.append(Directive(line, keyword, rules))
        return sup


def _trace_schema() -> typing.Mapping[str, typing.Any]:
    from repro.simkernel.tracing import TRACE_SCHEMA

    return TRACE_SCHEMA


def _span_names() -> typing.AbstractSet[str]:
    from repro.simkernel.spans import SPAN_NAMES

    return SPAN_NAMES


def _metric_schema() -> typing.Mapping[str, typing.Any]:
    from repro.simkernel.metrics import METRIC_SCHEMA

    return METRIC_SCHEMA


# --------------------------------------------------------------------------
# phase 1: per-file records


@dataclasses.dataclass
class _FileRecord:
    """One file's phase-1 output (computed or cache-loaded)."""

    path: str
    policy: ModulePolicy
    raw: list  # local findings as [rule, line, col, message] rows
    suppressions: _Suppressions
    index: ModuleIndex


def _analyze_source(
    source: str, path: str, policy: ModulePolicy
) -> _FileRecord:
    """Parse one file and run everything per-file (may raise SyntaxError)."""
    tree = ast.parse(source, filename=path)
    raw = [
        [f.rule, f.line, f.col, f.message]
        for f in RuleVisitor(
            policy,
            _trace_schema(),
            span_names=_span_names(),
            metric_schema=_metric_schema(),
        ).check(tree)
    ]
    return _FileRecord(
        path=path,
        policy=policy,
        raw=raw,
        suppressions=_Suppressions.parse(source),
        index=build_module_index(tree, path, source),
    )


# --------------------------------------------------------------------------
# phase 2: cross-module rules over the merged index


def _frozen_anywhere(class_table: dict, ref: str) -> bool:
    """Is ``ref`` (or any declared base) a frozen dataclass?"""
    seen: set[str] = set()
    queue = [ref]
    while queue:
        current = queue.pop(0)
        if current in seen:
            continue
        seen.add(current)
        fact = class_table.get(current)
        if fact is None:
            continue
        if fact["frozen"]:
            return True
        queue.extend(fact["bases"])
    return False


def _phase2_findings(
    project: ProjectIndex, records: typing.Sequence[_FileRecord]
) -> dict[str, list[Finding]]:
    """All cross-module findings, grouped by file path."""
    by_path: dict[str, list[Finding]] = {r.path: [] for r in records}
    policies = {r.path: r.policy for r in records}

    # SL011 — layering, unmapped packages, import cycles.
    for item in check_layers(project):
        policy = policies.get(item.path)
        if policy is not None and policy.enabled("SL011"):
            by_path[item.path].append(
                Finding("SL011", item.path, item.line, item.col, item.message)
            )

    # SL013 — sinks reachable from the simulation, in strict library code
    # only (devtools and the rng module are not simulation code).
    sink_files = {
        r.path
        for r in records
        if r.policy.enabled("SL013")
        and not r.policy.is_devtools
        and not r.policy.is_rng_module
    }
    for item in check_reachability(project, sink_files):
        by_path[item.path].append(
            Finding("SL013", item.path, item.line, item.col, item.message)
        )

    class_table = project.class_table()
    for record in records:
        # SL012 — frozen-spec mutation outside __post_init__.
        if record.policy.enabled("SL012"):
            for cand in record.index.frozen_candidates:
                if cand["guarded"]:
                    continue  # inside `with pytest.raises(...)`: never lands
                if not _frozen_anywhere(class_table, cand["class_ref"]):
                    continue
                if cand["kind"] == "setattr":
                    message = (
                        f"object.__setattr__ on frozen spec "
                        f"{cand['class_ref']} outside __post_init__; frozen "
                        "specs are immutable once built — use "
                        "dataclasses.replace() to derive a new instance"
                    )
                else:
                    message = (
                        f"assignment to {cand['attr']!r} mutates frozen spec "
                        f"{cand['class_ref']}; frozen specs are immutable "
                        "once built — use dataclasses.replace() to derive a "
                        "new instance"
                    )
                by_path[record.path].append(
                    Finding(
                        "SL012", record.path, cand["line"], cand["col"], message
                    )
                )

        # SL014 (SL009/SL010 by alias) — cross-package private access on a
        # symbol-table-resolved receiver.
        if record.policy.enabled("SL014"):
            accessor_pkg = record.index.package
            for cand in record.index.private_candidates:
                owner = class_table.get(cand["class_ref"])
                if owner is None or not owner["module"]:
                    continue
                owner_pkg = package_of(owner["module"])
                if owner_pkg is None or owner_pkg == accessor_pkg:
                    continue
                code = privacy_code(owner_pkg)
                if not record.policy.enabled(code):
                    continue
                by_path[record.path].append(
                    Finding(
                        code,
                        record.path,
                        cand["line"],
                        cand["col"],
                        privacy_message(owner_pkg, cand["attr"]),
                    )
                )
    return by_path


# --------------------------------------------------------------------------
# assembly: suppressions, SL015, stats


@dataclasses.dataclass
class Report:
    """A full lint run: findings, failures, and suppression-debt stats."""

    findings: list[Finding]
    errors: list[LintError]
    suppressed: int
    stats: dict[str, typing.Any]


def _assemble_report(
    records: typing.Sequence[_FileRecord],
    errors: list[LintError],
    cache: "ResultCache | None",
) -> Report:
    project = ProjectIndex()
    for record in records:
        project.add(record.index)
    phase2 = _phase2_findings(project, records)

    findings: list[Finding] = []
    suppressed_total = 0
    suppressed_by_rule: dict[str, int] = {}
    by_file: dict[str, dict[str, int]] = {}
    stale_count = 0

    for record in records:
        items = [
            Finding(row[0], record.path, row[1], row[2], row[3])
            for row in record.raw
        ] + phase2.get(record.path, [])
        # The alias half (SL009/SL010 in the local pass) and the symbol-
        # table half of the privacy rule can hit the same site: dedup.
        items = sorted(set(items), key=lambda f: (f.line, f.col, f.rule))
        file_suppressed = 0
        for finding in items:
            if record.suppressions.suppresses(finding.rule, finding.line):
                file_suppressed += 1
                suppressed_by_rule[finding.rule] = (
                    suppressed_by_rule.get(finding.rule, 0) + 1
                )
            else:
                findings.append(finding)
        suppressed_total += file_suppressed
        if record.policy.enabled("SL015"):
            for directive in record.suppressions.stale():
                stale_count += 1
                findings.append(
                    Finding(
                        "SL015",
                        record.path,
                        directive.line,
                        0,
                        f"stale suppression {directive.render()!r} masks no "
                        "finding; remove it (suppression debt is tracked by "
                        "--stats)",
                    )
                )
        if record.suppressions.count:
            by_file[record.path] = {
                "directives": record.suppressions.count,
                "suppressed": file_suppressed,
            }

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    import_kinds = {"typing": 0, "lazy": 0}
    for record in records:
        for fact in record.index.imports:
            if fact["kind"] in import_kinds:
                import_kinds[fact["kind"]] += 1

    stats: dict[str, typing.Any] = {
        "files": len(records),
        "findings": len(findings),
        "suppressed": suppressed_total,
        "suppressed_by_rule": dict(sorted(suppressed_by_rule.items())),
        "directives": sum(r.suppressions.count for r in records),
        "stale_directives": stale_count,
        "by_file": dict(sorted(by_file.items())),
        "exempt_imports": import_kinds,
    }
    if cache is not None:
        stats["cache"] = {"hits": cache.hits, "misses": cache.misses}
    return Report(findings, errors, suppressed_total, stats)


# --------------------------------------------------------------------------
# entry points


_EXCLUDED_DIRS = frozenset(
    {"__pycache__", "fixtures", "build", ".git", ".pytest_cache"}
)


def iter_python_files(paths: typing.Iterable[str]) -> typing.Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths.

    Directory walks skip ``fixtures`` trees (they hold deliberately-broken
    planted code) — passing a fixture file explicitly still lints it.
    """
    for target in paths:
        if os.path.isdir(target):
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in _EXCLUDED_DIRS and not d.endswith(".egg-info")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield target


def lint_project(
    paths: typing.Iterable[str],
    profile: str | None = None,
    cache: "ResultCache | None" = None,
) -> Report:
    """Lint every python file under ``paths`` with both phases.

    ``profile`` forces ``"strict"``/``"relaxed"`` for every file (default:
    derive per path — ``tests/``/``benchmarks/`` relax).  With ``cache``,
    unchanged files load their phase-1 results instead of re-parsing; the
    caller is responsible for :meth:`ResultCache.store` afterwards.
    """
    records: list[_FileRecord] = []
    errors: list[LintError] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            errors.append(LintError(path, "no such file"))
            continue
        except UnicodeDecodeError:
            errors.append(LintError(path, "not utf-8 text"))
            continue
        policy = ModulePolicy.for_path(path, profile=profile)
        # The cache token folds in the profile: the local rules gate on it
        # at emission time, so findings cached under one profile are not
        # valid under the other.
        token = f"{sha256_text(source)}:{policy.profile}"
        if cache is not None:
            entry = cache.get(path, token)
            if entry is not None:
                records.append(
                    _FileRecord(
                        path=path,
                        policy=policy,
                        raw=entry["findings"],
                        suppressions=_Suppressions(
                            Directive.from_dict(d) for d in entry["directives"]
                        ),
                        index=ModuleIndex.from_dict(entry["index"]),
                    )
                )
                continue
        try:
            record = _analyze_source(source, path, policy)
        except SyntaxError as exc:
            errors.append(
                LintError(path, f"syntax error: {exc.msg} (line {exc.lineno})")
            )
            continue
        except UnicodeDecodeError:
            errors.append(LintError(path, "not utf-8 text"))
            continue
        records.append(record)
        if cache is not None:
            cache.put(
                path,
                {
                    "sha256": token,
                    "findings": record.raw,
                    "directives": [
                        d.to_dict() for d in record.suppressions.directives
                    ],
                    "index": record.index.to_dict(),
                },
            )
    return _assemble_report(records, errors, cache)


def lint_paths(
    paths: typing.Iterable[str],
) -> tuple[list[Finding], list[LintError], int]:
    """Lint every python file under ``paths`` (no cache).

    Returns ``(findings, errors, suppressed_count)`` with findings ordered
    by (path, line, col, rule) for stable output.
    """
    report = lint_project(paths)
    return report.findings, report.errors, report.suppressed


def lint_source(
    source: str,
    path: str,
    policy: ModulePolicy | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source text (both phases, single-file project).

    Cross-module rules see only this file, so they under-approximate:
    SL012/SL014 resolve only against classes defined here, SL013 only
    against entry points defined here.  Returns
    ``(findings, suppressed_count)``; raises :class:`SyntaxError` if the
    source does not parse.
    """
    if policy is None:
        policy = ModulePolicy.for_path(path)
    record = _analyze_source(source, path, policy)
    report = _assemble_report([record], [], None)
    return report.findings, report.suppressed


def lint_file(path: str) -> tuple[list[Finding], int]:
    """Lint one file in isolation; see :func:`lint_source`."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)
