"""simlint's file layer: parsing, suppression comments, path walking.

Suppression grammar (comments only — string literals never suppress):

* ``# simlint: skip`` — suppress every finding on this line;
* ``# simlint: skip=SL001,SL003`` — suppress just those rules here;
* ``# simlint: skip-file`` / ``# simlint: skip-file=SL005`` — same, for
  the whole file (put it near the top by convention, any line works).

Suppressed findings are dropped from the report but *counted*, so the CLI
summary still shows how many hazards a file is waving through.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import os
import tokenize
import typing

from repro.devtools.simlint.rules import ModulePolicy, RuleVisitor


@dataclasses.dataclass(frozen=True)
class Finding:
    """One reported rule violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class LintError:
    """A file simlint could not analyze (syntax error, unreadable)."""

    path: str
    message: str


_DIRECTIVE = "simlint:"


class _Suppressions:
    """Parsed suppression directives for one file."""

    def __init__(self) -> None:
        self.file_all = False
        self.file_rules: set[str] = set()
        self.line_all: set[int] = set()
        self.line_rules: dict[int, set[str]] = {}
        self.count = 0  # directives seen, for the CLI summary

    def suppresses(self, rule: str, line: int) -> bool:
        if self.file_all or rule in self.file_rules:
            return True
        if line in self.line_all:
            return True
        return rule in self.line_rules.get(line, ())

    @classmethod
    def parse(cls, source: str) -> "_Suppressions":
        sup = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenizeError:
            return sup  # the AST parse will report the real problem
        for line, comment in comments:
            body = comment.lstrip("#").strip()
            if not body.startswith(_DIRECTIVE):
                continue
            directive = body[len(_DIRECTIVE):].strip()
            keyword, _, rules_part = directive.partition("=")
            keyword = keyword.strip()
            rules = {
                r.strip().upper() for r in rules_part.split(",") if r.strip()
            }
            if keyword == "skip-file":
                sup.count += 1
                if rules:
                    sup.file_rules |= rules
                else:
                    sup.file_all = True
            elif keyword == "skip":
                sup.count += 1
                if rules:
                    sup.line_rules.setdefault(line, set()).update(rules)
                else:
                    sup.line_all.add(line)
        return sup


def _trace_schema() -> typing.Mapping[str, typing.Any]:
    from repro.simkernel.tracing import TRACE_SCHEMA

    return TRACE_SCHEMA


def _span_names() -> typing.AbstractSet[str]:
    from repro.simkernel.spans import SPAN_NAMES

    return SPAN_NAMES


def _metric_schema() -> typing.Mapping[str, typing.Any]:
    from repro.simkernel.metrics import METRIC_SCHEMA

    return METRIC_SCHEMA


def lint_source(
    source: str,
    path: str,
    policy: ModulePolicy | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source text.

    Returns ``(findings, suppressed_count)``; raises :class:`SyntaxError`
    if the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    raw = RuleVisitor(
        policy if policy is not None else ModulePolicy.for_path(path),
        _trace_schema(),
        span_names=_span_names(),
        metric_schema=_metric_schema(),
    ).check(tree)
    suppressions = _Suppressions.parse(source)
    findings: list[Finding] = []
    suppressed = 0
    for item in raw:
        if suppressions.suppresses(item.rule, item.line):
            suppressed += 1
            continue
        findings.append(Finding(item.rule, path, item.line, item.col, item.message))
    return findings, suppressed


def lint_file(path: str) -> tuple[list[Finding], int]:
    """Lint one file; see :func:`lint_source`."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def iter_python_files(paths: typing.Iterable[str]) -> typing.Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for target in paths:
        if os.path.isdir(target):
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__",)
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield target


def lint_paths(
    paths: typing.Iterable[str],
) -> tuple[list[Finding], list[LintError], int]:
    """Lint every python file under ``paths``.

    Returns ``(findings, errors, suppressed_count)`` with findings ordered
    by (path, line, col, rule) for stable output.
    """
    findings: list[Finding] = []
    errors: list[LintError] = []
    suppressed = 0
    for path in iter_python_files(paths):
        if not os.path.exists(path):
            errors.append(LintError(path, "no such file"))
            continue
        try:
            file_findings, file_suppressed = lint_file(path)
        except SyntaxError as exc:
            errors.append(LintError(path, f"syntax error: {exc.msg} (line {exc.lineno})"))
            continue
        except UnicodeDecodeError:
            errors.append(LintError(path, "not utf-8 text"))
            continue
        findings.extend(file_findings)
        suppressed += file_suppressed
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, errors, suppressed
