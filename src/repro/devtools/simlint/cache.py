"""The incremental result cache behind ``--changed`` / ``make lint``.

One JSON document maps each file path to its content hash, its raw local
findings, its suppression directives and its serialized
:class:`~repro.devtools.simlint.index.ModuleIndex` — everything phase 2
needs, so an unchanged file is never re-read or re-parsed.  The whole
document is keyed by :func:`ruleset_key`, a fingerprint over the simlint
package's own source *and* the declared schemas the rules consult
(``TRACE_SCHEMA``, ``SPAN_NAMES``, ``METRIC_SCHEMA``): editing any rule,
the layer map, or a registry invalidates every entry at once, so cached
findings can never outlive the rule set that produced them.

Phase 2 (layering, call-graph reachability, privacy/frozen resolution,
stale suppressions) is recomputed on every run from the assembled index —
it is graph work over a few hundred small fact tables, costs milliseconds,
and recomputing it is what guarantees a warmed run reports findings
identical to a cold one.
"""

from __future__ import annotations

import hashlib
import json
import os
import typing

RULESET_VERSION = 2
"""Bump on semantic rule changes a source hash cannot capture (none yet:
the source fingerprint below covers the code; this is a manual escape)."""

DEFAULT_CACHE_PATH = os.path.join("build", "simlint-cache.json")

_ruleset_key: str | None = None


def ruleset_key() -> str:
    """Fingerprint of the rule set: simlint sources + consulted schemas."""
    global _ruleset_key
    if _ruleset_key is None:
        h = hashlib.sha256()
        h.update(str(RULESET_VERSION).encode())
        package_dir = os.path.dirname(os.path.abspath(__file__))
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            h.update(name.encode())
            with open(os.path.join(package_dir, name), "rb") as handle:
                h.update(handle.read())
        for chunk in _schema_material():
            h.update(chunk.encode("utf-8"))
        _ruleset_key = h.hexdigest()
    return _ruleset_key


def _schema_material() -> typing.Iterator[str]:
    """Stable renderings of the declared registries the rules consult."""
    from repro.simkernel.metrics import METRIC_SCHEMA
    from repro.simkernel.spans import SPAN_NAMES
    from repro.simkernel.tracing import TRACE_SCHEMA

    for kind in sorted(TRACE_SCHEMA):
        spec = TRACE_SCHEMA[kind]
        yield f"trace:{kind}:{sorted(spec.required)}:{sorted(spec.allowed)}"
    for name in sorted(SPAN_NAMES):
        yield f"span:{name}"
    for name in sorted(METRIC_SCHEMA):
        yield f"metric:{name}:{METRIC_SCHEMA[name].kind}"


class ResultCache:
    """Load-mutate-store wrapper over the cache document."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._loaded_key: str | None = None

    @classmethod
    def load(cls, path: str) -> "ResultCache":
        cache = cls(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return cache
        if document.get("ruleset") != ruleset_key():
            return cache  # rule set changed: every entry is stale
        entries = document.get("files")
        if isinstance(entries, dict):
            cache.entries = entries
            cache._loaded_key = document["ruleset"]
        return cache

    def get(self, path: str, sha256: str) -> dict | None:
        entry = self.entries.get(path)
        if entry is not None and entry.get("sha256") == sha256:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, path: str, entry: dict) -> None:
        self.entries[path] = entry

    def store(self, linted_paths: typing.Iterable[str]) -> None:
        """Atomically persist entries for the paths this run touched.

        Entries for files outside this run's path set are kept, so
        linting a subtree does not evict the rest of the tree's cache.
        """
        document = {
            "ruleset": ruleset_key(),
            "files": dict(sorted(self.entries.items())),
        }
        directory = os.path.dirname(self.path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            tmp = f"{self.path}.{os.getpid()}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(document, handle, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - cache is best-effort
            pass

    def prune(self, live_paths: typing.AbstractSet[str]) -> None:
        """Drop entries for files that no longer exist on disk."""
        for path in list(self.entries):
            if path not in live_paths and not os.path.exists(path):
                del self.entries[path]
