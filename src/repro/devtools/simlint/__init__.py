"""simlint — determinism, architecture & simulation-safety analysis.

The whole reproduction rests on one invariant: a fixed seed reproduces
every experiment row bit-identically, because equal-timestamp events are
ordered by ``(priority, sequence)`` and all randomness flows through named
:class:`~repro.simkernel.rng.RandomStreams`.  Nothing in Python enforces
that — a single ``time.time()``, an unseeded ``random.random()``, a
``for`` over a ``set``, or a raw ``heapq.heappush`` onto the simulator's
heap silently breaks repeatability.  simlint is the codebase-specific net,
run in two phases: per-file local rules, then cross-module rules over a
whole-program index (symbol table, import DAG, call graph).

Local rules (phase 1):

======  ==============================================================
SL001   wall-clock call in simulation code (``time.time``,
        ``datetime.now``, ``perf_counter``, ...); driver modules may
        use monotonic clocks for elapsed-time display
SL002   randomness outside :mod:`repro.simkernel.rng` (module-level
        ``random`` functions, ``numpy.random``, unseeded generators)
SL003   iteration over a ``set`` or an ``id()``-keyed dict
        (nondeterministic order under hash randomization)
SL004   direct ``heapq``/list operation on scheduler-backend storage
        (``_heap``/``_run``/``_far``) outside ``simkernel/kernel.py``,
        ``events.py`` or ``backends.py`` (bypasses the sequence
        tiebreaker that pins same-instant ordering)
SL005   bare ``assert`` in library code (vanishes under ``python -O``)
SL006   ``record()`` payload keys that do not match the typed columns
        declared in :data:`repro.simkernel.tracing.TRACE_SCHEMA`
SL007   ad-hoc stack construction in an experiment module (bypasses
        the declarative scenario layer the bit-identical-rows
        contract is pinned to)
SL008   observability naming: span names outside
        :data:`repro.simkernel.spans.SPAN_NAMES`, metric names or
        kinds not matching
        :data:`repro.simkernel.metrics.METRIC_SCHEMA`, or
        hand-written ``span.*`` trace records outside
        ``simkernel/spans.py`` (unbalanced begin/end)
======  ==============================================================

Cross-module rules (phase 2, over the project index):

======  ==============================================================
SL009   scheduler-backend internals accessed outside
        ``repro/simkernel/`` — the privacy rule
        (:func:`~repro.devtools.simlint.rules.privacy_code`) with the
        historical code kept for this boundary
SL010   fleet/shard internals accessed outside ``repro/fleet/`` —
        same rule, same historical code
SL011   import that violates the declared layer map
        (:data:`~repro.devtools.simlint.layers.DEFAULT_LAYER_MAP`),
        an unmapped ``repro`` subpackage, or a module-level import
        cycle; ``TYPE_CHECKING`` and function-level lazy imports are
        exempt (counted by ``--stats``)
SL012   frozen spec dataclass mutated outside ``__post_init__``
        (direct assignment or an ``object.__setattr__`` escape)
SL013   wall-clock/unseeded-RNG sink reachable on the call graph from
        ``Simulator.run`` or a spawned process coroutine; the finding
        carries the full call chain
SL014   cross-package private-attribute access on a symbol-table-
        resolved receiver (the general form of SL009/SL010)
SL015   stale ``# simlint: skip`` suppression that masks no finding
        (cannot itself be suppressed)
======  ==============================================================

Run it as ``python -m repro.devtools.simlint src/`` (``--format=json`` or
``--format=sarif`` for machine-readable output, ``--changed`` for the
content-hash incremental cache, ``--stats`` for the suppression-debt
report).  Suppress a finding with a trailing ``# simlint: skip`` or
``# simlint: skip=SL003`` comment on the flagged line, or a
``# simlint: skip-file[=RULES]`` comment anywhere in the file; CI treats
suppressions in ``src/`` as a review flag, not a free pass, and ``--stats``
totals them as suppression debt.
"""

from repro.devtools.simlint.analyzer import (
    Finding,
    LintError,
    Report,
    lint_file,
    lint_paths,
    lint_project,
)
from repro.devtools.simlint.cli import main
from repro.devtools.simlint.rules import RULES

__all__ = [
    "Finding",
    "LintError",
    "RULES",
    "Report",
    "lint_file",
    "lint_paths",
    "lint_project",
    "main",
]
