"""simlint — determinism & simulation-safety static analysis.

The whole reproduction rests on one invariant: a fixed seed reproduces
every experiment row bit-identically, because equal-timestamp events are
ordered by ``(priority, sequence)`` and all randomness flows through named
:class:`~repro.simkernel.rng.RandomStreams`.  Nothing in Python enforces
that — a single ``time.time()``, an unseeded ``random.random()``, a
``for`` over a ``set``, or a raw ``heapq.heappush`` onto the simulator's
heap silently breaks repeatability.  simlint is the codebase-specific net:

======  ==============================================================
SL001   wall-clock call in simulation code (``time.time``,
        ``datetime.now``, ``perf_counter``, ...); driver modules may
        use monotonic clocks for elapsed-time display
SL002   randomness outside :mod:`repro.simkernel.rng` (module-level
        ``random`` functions, ``numpy.random``, unseeded generators)
SL003   iteration over a ``set`` or an ``id()``-keyed dict
        (nondeterministic order under hash randomization)
SL004   direct ``heapq``/list operation on scheduler-backend storage
        (``_heap``/``_run``/``_far``) outside ``simkernel/kernel.py``,
        ``events.py`` or ``backends.py`` (bypasses the sequence
        tiebreaker that pins same-instant ordering)
SL005   bare ``assert`` in library code (vanishes under ``python -O``)
SL006   ``record()`` payload keys that do not match the typed columns
        declared in :data:`repro.simkernel.tracing.TRACE_SCHEMA`
SL007   ad-hoc stack construction in an experiment module (bypasses
        the declarative scenario layer the bit-identical-rows
        contract is pinned to)
SL008   observability naming: span names outside
        :data:`repro.simkernel.spans.SPAN_NAMES`, metric names or
        kinds not matching
        :data:`repro.simkernel.metrics.METRIC_SCHEMA`, or
        hand-written ``span.*`` trace records outside
        ``simkernel/spans.py`` (unbalanced begin/end)
SL009   scheduler-backend internals (private attributes reached via a
        ``backend``/``_backend`` receiver) accessed outside
        ``repro/simkernel/`` — layout differs per backend; use the
        :class:`~repro.simkernel.backends.SchedulerBackend` interface
======  ==============================================================

Run it as ``python -m repro.devtools.simlint src/`` (``--format=json``
for machine-readable output).  Suppress a finding with a trailing
``# simlint: skip`` or ``# simlint: skip=SL003`` comment on the flagged
line, or a ``# simlint: skip-file[=RULES]`` comment anywhere in the file;
CI treats suppressions in ``src/`` as a review flag, not a free pass.
"""

from repro.devtools.simlint.analyzer import (
    Finding,
    LintError,
    lint_file,
    lint_paths,
)
from repro.devtools.simlint.cli import main
from repro.devtools.simlint.rules import RULES

__all__ = [
    "Finding",
    "LintError",
    "RULES",
    "lint_file",
    "lint_paths",
    "main",
]
