"""The declared layer map and the SL011 layering/cycle checker.

:data:`DEFAULT_LAYER_MAP` is the architecture contract for the ``repro``
package, derived from (and now enforcing) the measured import structure:

======  =============  ====================================================
level   layer          packages
======  =============  ====================================================
0       foundation     ``repro`` root, ``_version``, ``errors``, ``units``,
                       ``config``, ``jobs``, ``simkernel``, ``memory``
1       hardware       ``hardware``
2       platform       ``vmm``, ``guest``
3       policy         ``control``
4       host           ``core``, ``workloads``, ``aging``, ``analysis``,
                       ``obs``
5       cluster        ``cluster``
6       orchestration  ``scenario``, ``fleet``
7       application    ``experiments``
8       devtools       ``devtools``
======  =============  ====================================================

The ``policy`` layer (the autonomic control plane) sits deliberately
*below* host: its detectors may read ``simkernel.metrics`` and its
planner sees hosts only as inert views, so "the planner must not import
workloads (or hosts, or the cluster)" is the ordinary upward-import rule
rather than a special case.  Live wiring flows downward: the scenario
layer snapshots hosts into views and injects migration as a callable.

A module may import (at module level) from its own layer or any layer
*below* it; an import that points upward is an SL011 finding, as is a
``repro`` subpackage missing from the map entirely (new packages must
declare their layer here) and any module-level import cycle.  Two escape
hatches are exempt by design and visible in ``--stats`` instead:

* ``if TYPE_CHECKING:`` imports — no runtime edge, no cycle, annotations
  only;
* function-level lazy imports — they cannot create an import cycle and
  mark a deliberate, reviewed boundary crossing (e.g. the analysis
  self-check driver building a testbed).  SL013's call graph still sees
  through them for determinism sinks.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.simlint.index import ProjectIndex


@dataclasses.dataclass(frozen=True)
class LayerMap:
    """Ordered layers (lowest first), each naming its packages."""

    layers: tuple[tuple[str, frozenset[str]], ...]

    @classmethod
    def from_pairs(
        cls, pairs: typing.Sequence[tuple[str, typing.Iterable[str]]]
    ) -> "LayerMap":
        return cls(tuple((name, frozenset(pkgs)) for name, pkgs in pairs))

    def level_of(self, package: str) -> int | None:
        for level, (_, packages) in enumerate(self.layers):
            if package in packages:
                return level
        return None

    def layer_name(self, package: str) -> str | None:
        for name, packages in self.layers:
            if package in packages:
                return name
        return None


DEFAULT_LAYER_MAP = LayerMap.from_pairs(
    [
        (
            "foundation",
            [
                "",
                "_version",
                "errors",
                "units",
                "config",
                "jobs",
                "simkernel",
                "memory",
            ],
        ),
        ("hardware", ["hardware"]),
        ("platform", ["vmm", "guest"]),
        ("policy", ["control"]),
        ("host", ["core", "workloads", "aging", "analysis", "obs"]),
        ("cluster", ["cluster"]),
        ("orchestration", ["scenario", "fleet"]),
        ("application", ["experiments"]),
        ("devtools", ["devtools"]),
    ]
)


class LayerFinding(typing.NamedTuple):
    """One SL011 violation, located at an import statement."""

    path: str
    line: int
    col: int
    message: str


def check_layers(
    project: "ProjectIndex", layer_map: LayerMap = DEFAULT_LAYER_MAP
) -> list[LayerFinding]:
    """All SL011 findings for a project: upward imports, unmapped
    packages, and module-level import cycles."""
    from repro.devtools.simlint.index import package_of

    findings: list[LayerFinding] = []
    modules = project.by_module()

    for index in sorted(project.modules.values(), key=lambda m: m.path):
        package = index.package
        if package is None:
            continue  # outside the repro namespace: unmapped by design
        level = layer_map.level_of(package)
        if level is None:
            findings.append(
                LayerFinding(
                    index.path,
                    1,
                    0,
                    f"package 'repro.{package}' is not declared in the "
                    "layer map (repro.devtools.simlint.layers); new "
                    "packages must declare their layer",
                )
            )
            continue
        for fact in index.imports:
            if fact["kind"] != "top":
                continue
            target_pkg = package_of(fact["module"])
            if target_pkg is None or target_pkg == package:
                continue
            target_level = layer_map.level_of(target_pkg)
            if target_level is None:
                continue  # reported once at the defining module
            if target_level > level:
                findings.append(
                    LayerFinding(
                        index.path,
                        fact["line"],
                        0,
                        f"layering violation: '{layer_map.layer_name(package)}' "
                        f"module imports 'repro.{target_pkg}' from the higher "
                        f"'{layer_map.layer_name(target_pkg)}' layer; invert "
                        "the dependency or move the shared code down "
                        "(TYPE_CHECKING/lazy imports are exempt)",
                    )
                )

    findings.extend(_check_cycles(project, modules))
    return findings


def _check_cycles(
    project: "ProjectIndex", modules: dict
) -> list[LayerFinding]:
    """Module-level import cycles (Tarjan over the top-level import graph).

    Working code rarely has them — Python would fail at import time —
    but partially-lazy cycles regrow silently, and a cycle makes layer
    assignment meaningless, so any strongly-connected component bigger
    than one module is an error.
    """
    graph: dict[str, list[str]] = {}
    lines: dict[tuple[str, str], int] = {}
    for name, index in modules.items():
        edges = []
        for fact in index.imports:
            if fact["kind"] != "top":
                continue
            for target in project.resolve_import_module(fact):
                if target in modules and target != name:
                    edges.append(target)
                    lines.setdefault((name, target), fact["line"])
        graph[name] = sorted(set(edges))

    findings: list[LayerFinding] = []
    for component in _strongly_connected(graph):
        if len(component) < 2:
            continue
        cycle = sorted(component)
        first = modules[cycle[0]]
        nxt = next(t for t in graph[cycle[0]] if t in component)
        findings.append(
            LayerFinding(
                first.path,
                lines.get((cycle[0], nxt), 1),
                0,
                "module-level import cycle: " + " <-> ".join(cycle),
            )
        )
    return findings


def _strongly_connected(graph: dict[str, list[str]]) -> list[list[str]]:
    """Iterative Tarjan SCC over a sorted adjacency mapping."""
    index_counter = [0]
    stack: list[str] = []
    on_stack: dict[str, bool] = {}
    indices: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    result: list[list[str]] = []

    for root in sorted(graph):
        if root in indices:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                indices[node] = lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            recurse = False
            children = graph.get(node, [])
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in indices:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    recurse = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], indices[child])
            if recurse:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result
