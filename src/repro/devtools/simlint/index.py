"""Phase 1 of the whole-program analyzer: the project index.

One :class:`ModuleIndex` is extracted per file — imports (classified as
module-level, lazy or typing-only), class facts (bases, frozen-dataclass
flag), per-function call/sink facts for the call graph, and the candidate
sites the cross-module rules resolve in phase 2 (frozen-spec mutations,
cross-package private-attribute accesses, spawned coroutines).  Every
fact is a plain dict/str/int so an index round-trips through JSON for the
incremental cache: a file whose content hash is unchanged is never
re-parsed, its index is loaded instead.

Resolution here is deliberately *local and confident*: a call/receiver is
given a dotted ref only when this module's own imports, defs, parameter
annotations or constructor assignments pin it down.  Unresolvable names
are dropped rather than guessed, so the phase-2 rules under-approximate
instead of flooding the report with speculative findings.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import os
import typing

from repro.devtools.simlint.rules import sink_kind

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def sha256_text(source: str) -> str:
    """Content hash used as the per-file cache key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: str) -> str:
    """Dotted module name, derived by walking up ``__init__.py`` chains.

    Files outside any package (no ``__init__.py`` beside them) get their
    bare stem, which maps to no layer and no symbol-table package — they
    are still linted locally but skip the package-level rules.
    """
    norm = os.path.abspath(path)
    directory, filename = os.path.split(norm)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: list[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
    return ".".join(reversed(parts))


def package_of(module: str) -> str | None:
    """Top-level ``repro`` subpackage a module belongs to.

    ``"repro.cluster.planner"`` → ``"cluster"``; ``"repro.config"`` →
    ``"config"``; ``"repro"`` itself → ``""`` (the foundation root);
    anything outside the ``repro`` namespace → ``None`` (unmapped).
    """
    if module == "repro":
        return ""
    if module.startswith("repro."):
        return module.split(".")[1]
    return None


@dataclasses.dataclass
class ModuleIndex:
    """Everything phase 2 needs to know about one file."""

    path: str
    module: str
    sha256: str
    imports: list[dict] = dataclasses.field(default_factory=list)
    classes: dict[str, dict] = dataclasses.field(default_factory=dict)
    functions: dict[str, dict] = dataclasses.field(default_factory=dict)
    spawns: list[dict] = dataclasses.field(default_factory=list)
    frozen_candidates: list[dict] = dataclasses.field(default_factory=list)
    private_candidates: list[dict] = dataclasses.field(default_factory=list)

    @property
    def package(self) -> str | None:
        return package_of(self.module)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleIndex":
        return cls(**data)


def build_module_index(tree: ast.AST, path: str, source: str) -> ModuleIndex:
    """Extract one file's index from its parsed AST."""
    index = ModuleIndex(
        path=path, module=module_name_for(path), sha256=sha256_text(source)
    )
    _IndexVisitor(index).visit(tree)
    return index


class _Scope:
    """One function scope: local defs and locally-typed variables."""

    def __init__(self, qualname: str) -> None:
        self.qualname = qualname
        self.local_defs: dict[str, str] = {}  # name -> function qualname
        self.var_types: dict[str, str] = {}  # name -> class ref


class _IndexVisitor(ast.NodeVisitor):
    """Single walk collecting the :class:`ModuleIndex` facts."""

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        self.module = index.module
        self.imports: dict[str, str] = {}  # local name -> dotted target
        self._class_stack: list[str] = []
        self._scopes: list[_Scope] = [_Scope("<module>")]
        self._typing_depth = 0
        self._raises_depth = 0
        self._func_depth = 0
        self.index.functions["<module>"] = {"line": 0, "calls": [], "sinks": []}

    # -- naming ------------------------------------------------------------

    def _local_qual(self, name: str) -> str:
        """Module-local qualname (no module prefix) for the class/function
        tables, e.g. ``"AgingMonitor.sample_once"``."""
        inner = [s.qualname for s in self._scopes[1:]]
        return ".".join(self._class_stack + inner + [name])

    def _current_function(self) -> dict:
        if len(self._scopes) == 1:
            return self.index.functions["<module>"]
        key = ".".join(
            self._class_stack + [s.qualname for s in self._scopes[1:]]
        )
        return self.index.functions[key]

    # -- imports -----------------------------------------------------------

    def _import_kind(self) -> str:
        if self._typing_depth:
            return "typing"
        if self._func_depth:
            return "lazy"
        return "top"

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            self.index.imports.append(
                {
                    "module": alias.name,
                    "names": [],
                    "line": node.lineno,
                    "kind": self._import_kind(),
                }
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = node.module or ""
        if node.level:
            # Resolve ``from .spec import X`` against this module's package.
            base = self.module.split(".")
            if not self.index.path.endswith("__init__.py"):
                base = base[:-1]
            base = base[: len(base) - (node.level - 1)]
            target = ".".join(base + ([target] if target else []))
        if target:
            for alias in node.names:
                self.imports[alias.asname or alias.name] = (
                    f"{target}.{alias.name}"
                )
            self.index.imports.append(
                {
                    "module": target,
                    "names": [a.name for a in node.names],
                    "line": node.lineno,
                    "kind": self._import_kind(),
                }
            )
        self.generic_visit(node)

    def visit_If(self, node: ast.If) -> None:
        # ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` bodies hold
        # typing-only imports: no runtime edge, exempt from layering.
        test = node.test
        is_typing = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_typing:
            self._typing_depth += 1
            for child in node.body:
                self.visit(child)
            self._typing_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    # -- classes and functions ---------------------------------------------

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name != "dataclass":
                continue
            for kw in decorator.keywords:
                if (
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
        return False

    def _resolve_base(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Subscript):  # Generic[...] bases
            node = node.value
        return self._resolve_ref(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        local = self._local_qual(node.name)
        bases = [b for b in map(self._resolve_base, node.bases) if b]
        self.index.classes[local] = {
            "line": node.lineno,
            "bases": bases,
            "frozen": self._is_frozen_dataclass(node),
        }
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.AST) -> None:
        local = self._local_qual(node.name)
        self.index.functions.setdefault(
            local, {"line": node.lineno, "calls": [], "sinks": []}
        )
        scope = _Scope(node.name)
        for arg in [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]:
            if arg.annotation is not None:
                ref = self._annotation_ref(arg.annotation)
                if ref:
                    scope.var_types[arg.arg] = ref
        # Register this def as a callable local name in the enclosing
        # scope — unless that scope is a class body, where the def is a
        # method (not callable bare) and registering it would let an
        # unrelated module-level name resolve to it.
        if len(self._scopes) > 1 or not self._class_stack:
            self._scopes[-1].local_defs[node.name] = local
        self._scopes.append(scope)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _annotation_ref(self, annotation: ast.expr) -> str | None:
        """Class ref from an annotation, unwrapping strings, Optional
        unions and subscripts down to a resolvable dotted name."""
        node: ast.expr | None = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self._annotation_ref(node.left)
            if left:
                return left
            return self._annotation_ref(node.right)
        if isinstance(node, ast.Subscript):
            node = node.value
        return self._resolve_ref(node) if node is not None else None

    # -- reference resolution ----------------------------------------------

    def _resolve_name(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            if name in scope.local_defs:
                qual = scope.local_defs[name]
                return f"{self.module}.{qual}" if self.module else qual
        if name in self.index.classes or name in self.index.functions:
            return f"{self.module}.{name}" if self.module else name
        return self.imports.get(name)

    def _resolve_ref(self, node: ast.expr | None) -> str | None:
        """Best-effort dotted ref for a Name/Attribute chain."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._resolve_name(node.id)
        if root is None:
            return None
        return ".".join([root, *reversed(parts)])

    def _var_type(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            if name in scope.var_types:
                return scope.var_types[name]
        return None

    def _callee_fact(self, func: ast.expr, line: int) -> dict | None:
        """Resolve one call's target into a (ref, via) fact, or None."""
        if isinstance(func, ast.Name):
            ref = self._resolve_name(func.id)
            if ref is None:
                var = self._var_type(func.id)
                return None if var is None else {"ref": var, "via": "call", "line": line}
            return {"ref": ref, "via": "direct", "line": line}
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id in ("self", "cls") and self._class_stack:
                    owner = ".".join(
                        ([self.module] if self.module else [])
                        + self._class_stack
                    )
                    return {
                        "ref": f"{owner}.{func.attr}",
                        "via": "method",
                        "line": line,
                    }
                typed = self._var_type(value.id)
                if typed is not None:
                    return {
                        "ref": f"{typed}.{func.attr}",
                        "via": "method",
                        "line": line,
                    }
            ref = self._resolve_ref(func)
            if ref is not None:
                return {"ref": ref, "via": "direct", "line": line}
        return None

    # -- statements feeding the candidate tables ---------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        # ``x = SomeClass(...)`` types x for receiver resolution.
        if (
            isinstance(node.value, ast.Call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            ref = self._resolve_ref(node.value.func)
            if ref is not None:
                self._scopes[-1].var_types[node.targets[0].id] = ref
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                self._note_attribute_write(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            ref = self._annotation_ref(node.annotation)
            if ref:
                self._scopes[-1].var_types[node.target.id] = ref
        if isinstance(node.target, ast.Attribute):
            self._note_attribute_write(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            self._note_attribute_write(node.target)
        self.generic_visit(node)

    def _receiver_class(self, value: ast.expr) -> str | None:
        """Class ref of an attribute access' receiver, when locally known.

        ``self`` receivers are excluded: a method touching its own
        instance is intra-class by definition, and attribute *ownership*
        across an inheritance chain is not statically attributable.
        """
        if isinstance(value, ast.Name) and value.id not in ("self", "cls"):
            return self._var_type(value.id)
        return None

    def _in_post_init(self) -> bool:
        return bool(
            self._class_stack
            and self._scopes[-1].qualname == "__post_init__"
            and len(self._scopes) == 2
        )

    def _enclosing_frozen_class(self) -> str | None:
        """The enclosing class ref when we are inside a method body."""
        if not self._class_stack or len(self._scopes) < 2:
            return None
        owner = ".".join(
            ([self.module] if self.module else []) + self._class_stack
        )
        return owner

    def _note_attribute_write(self, target: ast.Attribute) -> None:
        """Candidate SL012 site: ``receiver.attr = ...``."""
        receiver = target.value
        class_ref = None
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            class_ref = self._enclosing_frozen_class()
            if self._in_post_init():
                return  # __post_init__ self-assignment is the sanctioned escape
        else:
            class_ref = self._receiver_class(receiver)
        if class_ref is None:
            return
        self.index.frozen_candidates.append(
            {
                "line": target.lineno,
                "col": target.col_offset,
                "class_ref": class_ref,
                "attr": target.attr,
                "kind": "assign",
                "guarded": self._raises_depth > 0,
            }
        )

    def visit_With(self, node: ast.With) -> None:
        # ``with pytest.raises(...):`` bodies assert that the mutation
        # fails — the write never lands, so SL012 stays quiet there.
        raises = any(
            isinstance(item.context_expr, ast.Call)
            and isinstance(item.context_expr.func, ast.Attribute)
            and item.context_expr.func.attr == "raises"
            for item in node.items
        )
        if raises:
            self._raises_depth += 1
            self.generic_visit(node)
            self._raises_depth -= 1
        else:
            self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Candidate SL014 site: typed receiver, private attribute read.
        if (
            node.attr.startswith("_")
            and not node.attr.startswith("__")
            and not isinstance(node.ctx, ast.Store)
        ):
            class_ref = self._receiver_class(node.value)
            if class_ref is not None:
                self.index.private_candidates.append(
                    {
                        "line": node.lineno,
                        "col": node.col_offset,
                        "attr": node.attr,
                        "class_ref": class_ref,
                    }
                )
        self.generic_visit(node)

    # -- calls: edges, sinks, spawns, setattr escapes ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        fact = self._callee_fact(node.func, node.lineno)
        function = self._current_function()
        if fact is not None:
            function["calls"].append(fact)
        qual = self._resolve_ref(node.func)
        if qual is not None:
            kind = sink_kind(qual, bool(node.args or node.keywords))
            if kind is not None:
                function["sinks"].append(
                    {
                        "qual": qual,
                        "kind": kind,
                        "line": node.lineno,
                        "col": node.col_offset,
                    }
                )
        if isinstance(node.func, ast.Attribute) and node.func.attr == "spawn":
            self._note_spawn(node)
        # ``object`` is a builtin, so name resolution never sees it —
        # match the escape hatch syntactically instead.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
            and node.args
        ):
            self._note_setattr_escape(node)
        self.generic_visit(node)

    def _note_spawn(self, node: ast.Call) -> None:
        """``sim.spawn(coroutine(...))`` marks the coroutine a process
        root for SL013 reachability."""
        if not node.args:
            return
        arg = node.args[0]
        if not isinstance(arg, ast.Call):
            return
        fact = self._callee_fact(arg.func, node.lineno)
        if fact is not None:
            self.index.spawns.append(fact)

    def _note_setattr_escape(self, node: ast.Call) -> None:
        """``object.__setattr__(x, "field", v)`` bypasses frozen-ness."""
        target = node.args[0]
        class_ref = None
        if isinstance(target, ast.Name) and target.id == "self":
            if self._in_post_init():
                return
            class_ref = self._enclosing_frozen_class()
        else:
            class_ref = self._receiver_class(target)
        if class_ref is None:
            return
        attr = ""
        if (
            len(node.args) > 1
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            attr = node.args[1].value
        self.index.frozen_candidates.append(
            {
                "line": node.lineno,
                "col": node.col_offset,
                "class_ref": class_ref,
                "attr": attr,
                "kind": "setattr",
                "guarded": self._raises_depth > 0,
            }
        )


@dataclasses.dataclass
class ProjectIndex:
    """The merged phase-1 output: every module's index plus lookups."""

    modules: dict[str, ModuleIndex] = dataclasses.field(default_factory=dict)

    def add(self, index: ModuleIndex) -> None:
        self.modules[index.path] = index

    # -- lookups built lazily after all modules are added ------------------

    def by_module(self) -> dict[str, ModuleIndex]:
        return {m.module: m for m in self.modules.values() if m.module}

    def class_table(self) -> dict[str, dict]:
        """Dotted class ref -> {"module", "frozen", "bases", "methods"}."""
        table: dict[str, dict] = {}
        for index in self.modules.values():
            prefix = f"{index.module}." if index.module else ""
            for local, fact in index.classes.items():
                methods = sorted(
                    name[len(local) + 1 :]
                    for name in index.functions
                    if name.startswith(f"{local}.")
                    and "." not in name[len(local) + 1 :]
                )
                table[f"{prefix}{local}"] = {
                    "module": index.module,
                    "frozen": fact["frozen"],
                    "bases": fact["bases"],
                    "methods": methods,
                }
        return table

    def function_table(self) -> dict[str, tuple[ModuleIndex, str, dict]]:
        """Dotted function ref -> (owning index, local name, fact)."""
        table: dict[str, tuple[ModuleIndex, str, dict]] = {}
        for index in self.modules.values():
            prefix = f"{index.module}." if index.module else ""
            for local, fact in index.functions.items():
                if local == "<module>":
                    continue
                table[f"{prefix}{local}"] = (index, local, fact)
        return table

    def resolve_import_module(self, fact: dict) -> list[str]:
        """Module-granularity targets of one import fact.

        ``from repro.x import y`` targets ``repro.x.y`` when that is a
        project module (it was a submodule import), else ``repro.x``.
        """
        modules = self.by_module()
        base = fact["module"]
        targets = []
        names = fact.get("names") or []
        for name in names:
            dotted = f"{base}.{name}"
            if dotted in modules:
                targets.append(dotted)
        if not names or len(targets) < len(names):
            targets.append(base)
        return targets
