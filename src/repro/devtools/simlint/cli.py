"""simlint command line: ``python -m repro.devtools.simlint src/``.

Exit codes: 0 clean, 1 findings reported, 2 operational errors (bad
arguments, unreadable or unparseable files).

Incremental mode (``--changed``) loads the content-hash cache at
``--cache-path`` (default ``build/simlint-cache.json``), re-analyzes only
files whose hash or rule-set fingerprint changed, and writes the cache
back.  Findings are always identical to a cold run: only phase 1 is
cached; the cross-module phase recomputes every time.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import typing

from repro.devtools.simlint.analyzer import Report, lint_project
from repro.devtools.simlint.cache import DEFAULT_CACHE_PATH, ResultCache
from repro.devtools.simlint.rules import RULES
from repro.devtools.simlint.sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Determinism & architecture static analysis for the "
            "RootHammer reproduction (rules SL001-SL015)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        metavar="SL00X[,SL00Y]",
        help="only report these rules (default: all)",
    )
    parser.add_argument(
        "--profile",
        choices=("auto", "strict", "relaxed"),
        default="auto",
        help=(
            "rule profile: auto derives it per path (tests/ and "
            "benchmarks/ relax), strict/relaxed force one everywhere"
        ),
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="incremental mode: reuse cached results for unchanged files",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the cache (overrides --changed)",
    )
    parser.add_argument(
        "--cache-path",
        default=DEFAULT_CACHE_PATH,
        metavar="FILE",
        help=f"cache location (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the suppression-debt / cache report after linting",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )
    return parser


def _print_stats(report: Report, elapsed: float, out: typing.TextIO) -> None:
    stats = report.stats
    print("-- simlint stats " + "-" * 43, file=out)
    print(
        f"files analyzed        {stats['files']}"
        f"  ({elapsed:.2f}s)",
        file=out,
    )
    cache = stats.get("cache")
    if cache is not None:
        print(
            f"cache                 {cache['hits']} hit(s), "
            f"{cache['misses']} miss(es)",
            file=out,
        )
    print(f"findings              {stats['findings']}", file=out)
    print(
        f"suppressed findings   {stats['suppressed']}"
        + (
            "  ("
            + ", ".join(
                f"{rule}: {n}"
                for rule, n in stats["suppressed_by_rule"].items()
            )
            + ")"
            if stats["suppressed_by_rule"]
            else ""
        ),
        file=out,
    )
    print(
        f"suppression comments  {stats['directives']}"
        f"  ({stats['stale_directives']} stale)",
        file=out,
    )
    exempt = stats["exempt_imports"]
    print(
        "layering exemptions   "
        f"{exempt['typing']} TYPE_CHECKING import(s), "
        f"{exempt['lazy']} lazy import(s)",
        file=out,
    )
    if stats["by_file"]:
        print("suppression debt by file:", file=out)
        for path, row in stats["by_file"].items():
            print(
                f"  {path}: {row['directives']} comment(s), "
                f"{row['suppressed']} finding(s) suppressed",
                file=out,
            )


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    if not args.paths:
        parser.error("the following arguments are required: PATH")

    selected = None
    if args.rules:
        selected = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        unknown = selected - RULES.keys()
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")

    cache = None
    if args.changed and not args.no_cache:
        cache = ResultCache.load(args.cache_path)

    profile = None if args.profile == "auto" else args.profile
    started = time.perf_counter()
    report = lint_project(args.paths, profile=profile, cache=cache)
    elapsed = time.perf_counter() - started
    if cache is not None:
        cache.prune(set())
        cache.store(args.paths)

    findings = report.findings
    if selected is not None:
        findings = [f for f in findings if f.rule in selected]
    errors = report.errors

    out = sys.stdout
    if args.output:
        out = open(args.output, "w", encoding="utf-8")
    try:
        if args.format == "json":
            print(
                json.dumps(
                    {
                        "findings": [f.as_dict() for f in findings],
                        "errors": [
                            {"path": e.path, "message": e.message}
                            for e in errors
                        ],
                        "suppressed": report.suppressed,
                        "stats": report.stats,
                    },
                    indent=2,
                ),
                file=out,
            )
        elif args.format == "sarif":
            print(render_sarif(findings, errors), file=out)
        else:
            for finding in findings:
                print(finding.render(), file=out)
            for error in errors:
                print(f"{error.path}: error: {error.message}", file=sys.stderr)
            summary = f"{len(findings)} finding(s)"
            if report.suppressed:
                summary += (
                    f", {report.suppressed} suppression comment(s) in effect"
                )
            if errors:
                summary += f", {len(errors)} file error(s)"
            print(summary, file=out)
    finally:
        if args.output:
            out.close()

    if args.stats:
        # Keep machine-readable stdout clean: stats go to stderr unless the
        # report itself went to a file.
        stats_out = sys.stdout if args.output else sys.stderr
        if args.format == "text" and not args.output:
            stats_out = sys.stdout
        _print_stats(report, elapsed, stats_out)

    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
