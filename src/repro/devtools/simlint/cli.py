"""simlint command line: ``python -m repro.devtools.simlint src/``.

Exit codes: 0 clean, 1 findings reported, 2 operational errors (bad
arguments, unreadable or unparseable files).
"""

from __future__ import annotations

import argparse
import json
import sys
import typing

from repro.devtools.simlint.analyzer import lint_paths
from repro.devtools.simlint.rules import RULES


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Determinism & simulation-safety static analysis for the "
            "RootHammer reproduction (rules SL001-SL006)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="SL00X[,SL00Y]",
        help="only report these rules (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    if not args.paths:
        parser.error("the following arguments are required: PATH")

    selected = None
    if args.rules:
        selected = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        unknown = selected - RULES.keys()
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")

    findings, errors, suppressed = lint_paths(args.paths)
    if selected is not None:
        findings = [f for f in findings if f.rule in selected]

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in findings],
                    "errors": [
                        {"path": e.path, "message": e.message} for e in errors
                    ],
                    "suppressed": suppressed,
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        for error in errors:
            print(f"{error.path}: error: {error.message}", file=sys.stderr)
        summary = f"{len(findings)} finding(s)"
        if suppressed:
            summary += f", {suppressed} suppression comment(s) in effect"
        if errors:
            summary += f", {len(errors)} file error(s)"
        print(summary)

    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
